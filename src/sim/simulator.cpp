#include "sim/simulator.hpp"

namespace slices::sim {

EventId Simulator::schedule_at(SimTime t, Callback cb) {
  if (t < now_) t = now_;  // never schedule in the past
  const QueueKey key{t, next_seq_++};
  queue_.emplace(key, std::move(cb));
  event_index_.emplace(key.seq, key);
  return EventId{key.seq};
}

bool Simulator::cancel(EventId id) {
  const auto it = event_index_.find(id.value);
  if (it == event_index_.end()) return false;
  queue_.erase(it->second);
  event_index_.erase(it);
  return true;
}

PeriodicId Simulator::add_periodic(Duration period, PeriodicCallback cb, Duration offset) {
  assert(period > Duration::zero());
  const std::uint64_t key = next_periodic_++;
  periodics_.emplace(key, PeriodicTask{period, std::move(cb)});
  schedule_periodic_firing(key, now_ + offset);
  return PeriodicId{key};
}

void Simulator::schedule_periodic_firing(std::uint64_t periodic_key, SimTime at) {
  schedule_at(at, [this, periodic_key, at] {
    const auto it = periodics_.find(periodic_key);
    if (it == periodics_.end()) return;  // stopped meanwhile
    // Reschedule before running so the callback can remove_periodic(self).
    schedule_periodic_firing(periodic_key, at + it->second.period);
    it->second.callback(at);
  });
}

bool Simulator::remove_periodic(PeriodicId id) { return periodics_.erase(id.value) > 0; }

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto it = queue_.begin();
  const QueueKey key = it->first;
  Callback cb = std::move(it->second);
  queue_.erase(it);
  event_index_.erase(key.seq);
  now_ = key.time;
  ++executed_;
  cb();
  return true;
}

std::size_t Simulator::run_until(SimTime t) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.begin()->first.time <= t) {
    step();
    ++executed;
  }
  if (now_ < t) now_ = t;
  return executed;
}

}  // namespace slices::sim
