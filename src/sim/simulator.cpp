#include "sim/simulator.hpp"

#include <algorithm>

namespace slices::sim {

namespace {
/// Below this size the compaction heuristic never kicks in — a tiny
/// heap costs nothing to scan and rebuilds would dominate.
constexpr std::size_t kCompactionFloor = 64;
}  // namespace

EventId Simulator::schedule_at(SimTime t, Callback cb) {
  if (t < now_) t = now_;  // never schedule in the past
  const QueueKey key{t, next_seq_++};
  heap_.push_back(HeapEntry{key, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), heap_after);
  live_.insert(key.seq);
  return EventId{key.seq};
}

bool Simulator::cancel(EventId id) {
  if (live_.erase(id.value) == 0) return false;
  maybe_compact();
  return true;
}

void Simulator::prune_cancelled() {
  while (!heap_.empty() && !live_.contains(heap_.front().key.seq)) {
    std::pop_heap(heap_.begin(), heap_.end(), heap_after);
    heap_.pop_back();
  }
}

void Simulator::maybe_compact() {
  if (heap_.size() < kCompactionFloor || heap_.size() <= 2 * live_.size()) return;
  std::erase_if(heap_, [this](const HeapEntry& e) { return !live_.contains(e.key.seq); });
  std::make_heap(heap_.begin(), heap_.end(), heap_after);
}

PeriodicId Simulator::add_periodic(Duration period, PeriodicCallback cb, Duration offset) {
  assert(period > Duration::zero());
  const std::uint64_t key = next_periodic_++;
  periodics_.emplace(key, PeriodicTask{period, std::move(cb)});
  schedule_periodic_firing(key, now_ + offset);
  return PeriodicId{key};
}

void Simulator::schedule_periodic_firing(std::uint64_t periodic_key, SimTime at) {
  schedule_at(at, [this, periodic_key, at] {
    const auto it = periodics_.find(periodic_key);
    if (it == periodics_.end()) return;  // stopped meanwhile
    // Reschedule before running so the callback can remove_periodic(self).
    schedule_periodic_firing(periodic_key, at + it->second.period);
    it->second.callback(at);
  });
}

bool Simulator::remove_periodic(PeriodicId id) { return periodics_.erase(id.value) > 0; }

bool Simulator::step() {
  prune_cancelled();
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), heap_after);
  const QueueKey key = heap_.back().key;
  Callback cb = std::move(heap_.back().callback);
  heap_.pop_back();
  live_.erase(key.seq);
  now_ = key.time;
  ++executed_;
  cb();
  return true;
}

std::size_t Simulator::run_until(SimTime t) {
  std::size_t executed = 0;
  while (true) {
    prune_cancelled();
    if (heap_.empty() || heap_.front().key.time > t) break;
    step();
    ++executed;
  }
  if (now_ < t) now_ = t;
  return executed;
}

}  // namespace slices::sim
