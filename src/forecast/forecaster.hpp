#pragma once
// Online traffic forecasters.
//
// The paper's orchestrator "monitors past slices traffic behaviors [and]
// forecasts future traffic demands" (citing Sciancalepore et al.,
// INFOCOM'17, which builds on Holt–Winters-style exponential smoothing).
// This module provides a family of online forecasters sharing one
// interface: observe one sample per monitoring period, predict h periods
// ahead. All models are O(1) state and O(1) per update so the
// orchestrator can run one instance per slice per domain.

#include <cassert>
#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

namespace slices::forecast {

/// Interface of an online, single-series point forecaster.
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Ingest the next observation (one fixed monitoring period later than
  /// the previous one).
  virtual void observe(double value) = 0;

  /// Point forecast `steps_ahead` periods into the future (>= 1).
  /// Precondition: ready().
  [[nodiscard]] virtual double predict(std::size_t steps_ahead) const = 0;

  /// True once enough history has been seen to produce forecasts.
  [[nodiscard]] virtual bool ready() const noexcept = 0;

  /// Stable model name for reports and dashboards.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Fresh copy with identical hyper-parameters and empty state
  /// (used by the backtester and the per-slice model factory).
  [[nodiscard]] virtual std::unique_ptr<Forecaster> make_empty() const = 0;
};

/// Predicts the last observed value for every horizon (persistence
/// model). The weakest sensible baseline; also the fallback before
/// richer models warm up.
class NaiveForecaster final : public Forecaster {
 public:
  void observe(double value) override {
    last_ = value;
    seen_ = true;
  }
  [[nodiscard]] double predict(std::size_t) const override {
    assert(seen_);
    return last_;
  }
  [[nodiscard]] bool ready() const noexcept override { return seen_; }
  [[nodiscard]] std::string_view name() const noexcept override { return "naive"; }
  [[nodiscard]] std::unique_ptr<Forecaster> make_empty() const override {
    return std::make_unique<NaiveForecaster>();
  }

 private:
  double last_ = 0.0;
  bool seen_ = false;
};

/// Simple moving average over the most recent `window` samples.
class MovingAverageForecaster final : public Forecaster {
 public:
  explicit MovingAverageForecaster(std::size_t window) : window_(window) {
    assert(window > 0);
  }

  void observe(double value) override {
    values_.push_back(value);
    sum_ += value;
    if (values_.size() > window_) {
      sum_ -= values_[values_.size() - window_ - 1];
    }
  }
  [[nodiscard]] double predict(std::size_t) const override {
    assert(ready());
    const std::size_t n = values_.size() < window_ ? values_.size() : window_;
    return sum_ / static_cast<double>(n);
  }
  [[nodiscard]] bool ready() const noexcept override { return !values_.empty(); }
  [[nodiscard]] std::string_view name() const noexcept override { return "sma"; }
  [[nodiscard]] std::unique_ptr<Forecaster> make_empty() const override {
    return std::make_unique<MovingAverageForecaster>(window_);
  }

 private:
  std::size_t window_;
  double sum_ = 0.0;
  std::vector<double> values_;  // grows; only the trailing window matters
};

/// Exponentially weighted moving average (simple exponential smoothing).
class EwmaForecaster final : public Forecaster {
 public:
  explicit EwmaForecaster(double alpha) : alpha_(alpha) {
    assert(alpha > 0.0 && alpha <= 1.0);
  }

  void observe(double value) override {
    level_ = seen_ ? alpha_ * value + (1.0 - alpha_) * level_ : value;
    seen_ = true;
  }
  [[nodiscard]] double predict(std::size_t) const override {
    assert(seen_);
    return level_;
  }
  [[nodiscard]] bool ready() const noexcept override { return seen_; }
  [[nodiscard]] std::string_view name() const noexcept override { return "ewma"; }
  [[nodiscard]] std::unique_ptr<Forecaster> make_empty() const override {
    return std::make_unique<EwmaForecaster>(alpha_);
  }

 private:
  double alpha_;
  double level_ = 0.0;
  bool seen_ = false;
};

/// Holt's linear method: level + trend double exponential smoothing.
class HoltForecaster final : public Forecaster {
 public:
  HoltForecaster(double alpha, double beta) : alpha_(alpha), beta_(beta) {
    assert(alpha > 0.0 && alpha <= 1.0);
    assert(beta > 0.0 && beta <= 1.0);
  }

  void observe(double value) override {
    if (count_ == 0) {
      level_ = value;
    } else if (count_ == 1) {
      trend_ = value - level_;
      level_ = value;
    } else {
      const double prev_level = level_;
      level_ = alpha_ * value + (1.0 - alpha_) * (level_ + trend_);
      trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
    }
    ++count_;
  }
  [[nodiscard]] double predict(std::size_t steps_ahead) const override {
    assert(ready());
    return level_ + static_cast<double>(steps_ahead) * trend_;
  }
  [[nodiscard]] bool ready() const noexcept override { return count_ >= 2; }
  [[nodiscard]] std::string_view name() const noexcept override { return "holt"; }
  [[nodiscard]] std::unique_ptr<Forecaster> make_empty() const override {
    return std::make_unique<HoltForecaster>(alpha_, beta_);
  }

 private:
  double alpha_;
  double beta_;
  double level_ = 0.0;
  double trend_ = 0.0;
  std::size_t count_ = 0;
};

/// Seasonal-naive: predicts the value observed exactly one season ago.
/// The standard sanity baseline for seasonal series — any seasonal
/// model worth running must beat it.
class SeasonalNaiveForecaster final : public Forecaster {
 public:
  explicit SeasonalNaiveForecaster(std::size_t season_length)
      : season_length_(season_length) {
    assert(season_length >= 1);
    history_.reserve(season_length);
  }

  void observe(double value) override {
    if (history_.size() < season_length_) {
      history_.push_back(value);
    } else {
      history_[cursor_] = value;
      cursor_ = (cursor_ + 1) % season_length_;
    }
  }

  [[nodiscard]] double predict(std::size_t steps_ahead) const override {
    assert(ready());
    // The value at the same phase `steps_ahead` periods from now.
    const std::size_t idx = (cursor_ + (steps_ahead - 1)) % season_length_;
    return history_[idx];
  }

  [[nodiscard]] bool ready() const noexcept override {
    return history_.size() == season_length_;
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "seasonal_naive"; }
  [[nodiscard]] std::unique_ptr<Forecaster> make_empty() const override {
    return std::make_unique<SeasonalNaiveForecaster>(season_length_);
  }

 private:
  std::size_t season_length_;
  std::vector<double> history_;  // ring buffer once full
  std::size_t cursor_ = 0;       // index of the sample one season old
};

/// Additive Holt–Winters triple exponential smoothing — the model class
/// behind the paper's forecasting reference. Captures the diurnal
/// seasonality of vertical traffic that makes overbooking profitable.
class HoltWintersForecaster final : public Forecaster {
 public:
  /// `season_length` is the number of monitoring periods per season
  /// (e.g. 24 for hourly samples with daily seasonality).
  HoltWintersForecaster(double alpha, double beta, double gamma, std::size_t season_length)
      : alpha_(alpha), beta_(beta), gamma_(gamma), season_length_(season_length) {
    assert(alpha > 0.0 && alpha <= 1.0);
    assert(beta > 0.0 && beta <= 1.0);
    assert(gamma > 0.0 && gamma <= 1.0);
    assert(season_length >= 2);
    seasonal_.assign(season_length, 0.0);
  }

  void observe(double value) override {
    if (warmup_.size() < season_length_) {
      // First full season: buffer, then initialize level/seasonals.
      warmup_.push_back(value);
      if (warmup_.size() == season_length_) initialize_from_warmup();
      return;
    }
    const std::size_t idx = phase_ % season_length_;
    const double prev_level = level_;
    level_ = alpha_ * (value - seasonal_[idx]) + (1.0 - alpha_) * (level_ + trend_);
    trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
    seasonal_[idx] = gamma_ * (value - level_) + (1.0 - gamma_) * seasonal_[idx];
    ++phase_;
  }

  [[nodiscard]] double predict(std::size_t steps_ahead) const override {
    assert(ready());
    const std::size_t idx = (phase_ + steps_ahead - 1) % season_length_;
    return level_ + static_cast<double>(steps_ahead) * trend_ + seasonal_[idx];
  }

  [[nodiscard]] bool ready() const noexcept override {
    return warmup_.size() == season_length_;
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "holt_winters"; }
  [[nodiscard]] std::unique_ptr<Forecaster> make_empty() const override {
    return std::make_unique<HoltWintersForecaster>(alpha_, beta_, gamma_, season_length_);
  }

  [[nodiscard]] std::size_t season_length() const noexcept { return season_length_; }

 private:
  void initialize_from_warmup() {
    double sum = 0.0;
    for (const double v : warmup_) sum += v;
    level_ = sum / static_cast<double>(season_length_);
    trend_ = 0.0;
    for (std::size_t i = 0; i < season_length_; ++i) seasonal_[i] = warmup_[i] - level_;
    phase_ = 0;
  }

  double alpha_;
  double beta_;
  double gamma_;
  std::size_t season_length_;
  double level_ = 0.0;
  double trend_ = 0.0;
  std::vector<double> seasonal_;
  std::vector<double> warmup_;
  std::size_t phase_ = 0;
};

}  // namespace slices::forecast
