#pragma once
// Rolling-origin backtesting of forecasters, plus model selection.
//
// Used in two places: offline, by bench_d5_forecasting to compare model
// families on synthetic vertical traffic; online, by the orchestrator's
// AdaptiveForecaster to pick the best model per slice from its own
// recent history (the "data analysis and feature extraction" box in
// Fig. 1 of the paper).

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "forecast/forecaster.hpp"

namespace slices::forecast {

/// Accuracy metrics of one backtest run.
struct BacktestReport {
  std::string model;
  std::size_t evaluated = 0;   ///< number of (prediction, actual) pairs scored
  double mae = 0.0;            ///< mean absolute error
  double rmse = 0.0;           ///< root mean squared error
  double bias = 0.0;           ///< mean(actual − predicted); >0 = underforecast
  /// Fraction of actuals that exceeded forecast + margin(q): the
  /// realized violation rate of the upper-bound estimator.
  double upper_bound_violation_rate = 0.0;
};

/// Replay `series` through a fresh clone of `prototype`: at each step
/// predict one period ahead, then reveal the actual. Steps where the
/// model is not yet ready are skipped (warm-up). `safety_quantile`
/// configures the residual margin used for the violation-rate metric.
/// Takes a span so callers with reusable buffers never copy history.
[[nodiscard]] BacktestReport backtest(const Forecaster& prototype,
                                      std::span<const double> series,
                                      double safety_quantile = 0.95,
                                      std::size_t residual_window = 256);

/// Backtest every candidate and return reports sorted by ascending RMSE
/// (best first). Candidates that never became ready rank last.
[[nodiscard]] std::vector<BacktestReport> compare_models(
    const std::vector<std::unique_ptr<Forecaster>>& candidates,
    std::span<const double> series, double safety_quantile = 0.95);

/// Standard candidate set used across the codebase: naive, SMA, EWMA,
/// Holt, Holt–Winters(season_length).
[[nodiscard]] std::vector<std::unique_ptr<Forecaster>> default_candidates(
    std::size_t season_length);

}  // namespace slices::forecast
