#include "forecast/backtest.hpp"

#include <algorithm>
#include <cmath>

#include "forecast/residual.hpp"

namespace slices::forecast {

BacktestReport backtest(const Forecaster& prototype, std::span<const double> series,
                        double safety_quantile, std::size_t residual_window) {
  std::unique_ptr<Forecaster> model = prototype.make_empty();
  ResidualTracker residuals(residual_window);

  BacktestReport report;
  report.model = std::string(prototype.name());

  double abs_sum = 0.0;
  double sq_sum = 0.0;
  double bias_sum = 0.0;
  std::size_t violations = 0;

  for (const double actual : series) {
    if (model->ready()) {
      const double predicted = model->predict(1);
      const double upper = predicted + residuals.safety_margin(safety_quantile);
      const double err = actual - predicted;
      abs_sum += std::abs(err);
      sq_sum += err * err;
      bias_sum += err;
      if (actual > upper) ++violations;
      residuals.record(err);
      ++report.evaluated;
    }
    model->observe(actual);
  }

  if (report.evaluated > 0) {
    const auto n = static_cast<double>(report.evaluated);
    report.mae = abs_sum / n;
    report.rmse = std::sqrt(sq_sum / n);
    report.bias = bias_sum / n;
    report.upper_bound_violation_rate = static_cast<double>(violations) / n;
  }
  return report;
}

std::vector<BacktestReport> compare_models(
    const std::vector<std::unique_ptr<Forecaster>>& candidates,
    std::span<const double> series, double safety_quantile) {
  std::vector<BacktestReport> reports;
  reports.reserve(candidates.size());
  for (const auto& candidate : candidates) {
    reports.push_back(backtest(*candidate, series, safety_quantile));
  }
  std::stable_sort(reports.begin(), reports.end(),
                   [](const BacktestReport& a, const BacktestReport& b) {
                     if ((a.evaluated == 0) != (b.evaluated == 0)) return b.evaluated == 0;
                     return a.rmse < b.rmse;
                   });
  return reports;
}

std::vector<std::unique_ptr<Forecaster>> default_candidates(std::size_t season_length) {
  std::vector<std::unique_ptr<Forecaster>> out;
  out.push_back(std::make_unique<NaiveForecaster>());
  out.push_back(std::make_unique<MovingAverageForecaster>(8));
  out.push_back(std::make_unique<EwmaForecaster>(0.3));
  out.push_back(std::make_unique<HoltForecaster>(0.4, 0.1));
  out.push_back(std::make_unique<HoltWintersForecaster>(0.4, 0.05, 0.3, season_length));
  return out;
}

}  // namespace slices::forecast
