#pragma once
// Online autoregressive forecaster fit by recursive least squares.
//
// Models x_t ≈ c + Σ_{i=1..p} a_i · x_{t−i} with exponential forgetting,
// so coefficients track slow drift in the demand process. Complements
// the exponential-smoothing family: AR captures short-range correlation
// structure (e.g. session churn) that level/trend/seasonal smoothing
// misses. O(p²) per update with p ≤ 8 in practice.

#include <cassert>
#include <cstddef>
#include <deque>
#include <vector>

#include "forecast/forecaster.hpp"

namespace slices::forecast {

class ArForecaster final : public Forecaster {
 public:
  /// `order` = number of lags p (>= 1); `forgetting` in (0, 1]: 1 is
  /// ordinary least squares, lower forgets faster.
  explicit ArForecaster(std::size_t order, double forgetting = 0.995)
      : order_(order), forgetting_(forgetting), dim_(order + 1) {
    assert(order >= 1);
    assert(forgetting > 0.0 && forgetting <= 1.0);
    theta_.assign(dim_, 0.0);
    // P = δ·I with large δ (uninformative prior).
    p_matrix_.assign(dim_ * dim_, 0.0);
    for (std::size_t i = 0; i < dim_; ++i) p_matrix_[i * dim_ + i] = 1e4;
  }

  void observe(double value) override {
    if (lags_.size() == order_) {
      rls_update(value);
      ++updates_;
    }
    lags_.push_front(value);
    if (lags_.size() > order_) lags_.pop_back();
  }

  [[nodiscard]] double predict(std::size_t steps_ahead) const override {
    assert(ready());
    // Roll the model forward, feeding forecasts back in as lags.
    std::deque<double> lags = lags_;
    double forecast = 0.0;
    for (std::size_t step = 0; step < steps_ahead; ++step) {
      forecast = theta_[0];
      for (std::size_t i = 0; i < order_; ++i) forecast += theta_[i + 1] * lags[i];
      lags.push_front(forecast);
      lags.pop_back();
    }
    return forecast;
  }

  /// Needs a full lag window plus enough updates for the RLS estimate
  /// to mean anything.
  [[nodiscard]] bool ready() const noexcept override {
    return lags_.size() == order_ && updates_ >= 2 * dim_;
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "ar_rls"; }
  [[nodiscard]] std::unique_ptr<Forecaster> make_empty() const override {
    return std::make_unique<ArForecaster>(order_, forgetting_);
  }

  /// Fitted coefficients [c, a_1, ..., a_p] (exposed for tests).
  [[nodiscard]] const std::vector<double>& coefficients() const noexcept { return theta_; }

 private:
  void rls_update(double target) {
    // phi = [1, x_{t-1}, ..., x_{t-p}]
    std::vector<double> phi(dim_);
    phi[0] = 1.0;
    for (std::size_t i = 0; i < order_; ++i) phi[i + 1] = lags_[i];

    // u = P · phi
    std::vector<double> u(dim_, 0.0);
    for (std::size_t r = 0; r < dim_; ++r) {
      for (std::size_t c = 0; c < dim_; ++c) u[r] += p_matrix_[r * dim_ + c] * phi[c];
    }
    double denom = forgetting_;
    for (std::size_t i = 0; i < dim_; ++i) denom += phi[i] * u[i];

    // gain k = u / denom; innovation e = y − thetaᵀ phi
    double prediction = 0.0;
    for (std::size_t i = 0; i < dim_; ++i) prediction += theta_[i] * phi[i];
    const double innovation = target - prediction;
    for (std::size_t i = 0; i < dim_; ++i) theta_[i] += (u[i] / denom) * innovation;

    // P = (P − k · uᵀ) / λ  (u = P phi, k = u/denom)
    for (std::size_t r = 0; r < dim_; ++r) {
      for (std::size_t c = 0; c < dim_; ++c) {
        p_matrix_[r * dim_ + c] =
            (p_matrix_[r * dim_ + c] - (u[r] / denom) * u[c]) / forgetting_;
      }
    }
  }

  std::size_t order_;
  double forgetting_;
  std::size_t dim_;
  std::vector<double> theta_;
  std::vector<double> p_matrix_;  // row-major (p+1)x(p+1)
  std::deque<double> lags_;       // most recent first
  std::size_t updates_ = 0;
};

}  // namespace slices::forecast
