#include "forecast/demand_estimator.hpp"

#include <cassert>
#include <span>
#include <vector>

#include "forecast/backtest.hpp"

namespace slices::forecast {

DemandEstimator::DemandEstimator(std::unique_ptr<Forecaster> model, EstimatorConfig config)
    : config_(config), model_(std::move(model)), residuals_(config.residual_window) {
  assert(model_ != nullptr);
}

DemandEstimator DemandEstimator::adaptive(std::size_t season_length) {
  EstimatorConfig config;
  config.season_length = season_length;
  config.reselect_every = season_length;  // re-evaluate once per season
  config.history_capacity = 8 * season_length;
  // Start with a fast-warmup level model so overbooking can begin after
  // a handful of observations; reselection upgrades to the seasonal
  // model once at least two full seasons of history exist.
  return DemandEstimator(std::make_unique<EwmaForecaster>(0.3), config);
}

void DemandEstimator::observe(double demand) {
  if (model_->ready()) {
    residuals_.record(demand - model_->predict(1));
  }
  model_->observe(demand);
  last_ = demand;
  ++observations_;

  if (config_.reselect_every > 0) {
    history_.push_back(demand);
    if (history_.size() > config_.history_capacity) history_.pop_front();
    if (observations_ % config_.reselect_every == 0) maybe_reselect();
  }
}

double DemandEstimator::upper_bound(double q, std::size_t horizon) const {
  assert(ready());
  assert(horizon >= 1);
  double peak = model_->predict(1);
  for (std::size_t h = 2; h <= horizon; ++h) {
    const double p = model_->predict(h);
    if (p > peak) peak = p;
  }
  const double bound = peak + residuals_.safety_margin(q);
  return bound > 0.0 ? bound : 0.0;
}

void DemandEstimator::maybe_reselect() {
  // Need at least two seasons of history before judging seasonal models.
  if (history_.size() < 2 * config_.season_length) return;
  // Linearize the deque into the reusable scratch buffer; assign()
  // reuses its capacity across reselections.
  scratch_.assign(history_.begin(), history_.end());
  const std::span<const double> series(scratch_);
  const auto candidates = default_candidates(config_.season_length);
  const std::vector<BacktestReport> reports = compare_models(candidates, series);
  if (reports.empty() || reports.front().evaluated == 0) return;

  if (reports.front().model == model_->name()) return;  // already best

  for (const auto& candidate : candidates) {
    if (candidate->name() != reports.front().model) continue;
    // Swap models and replay history so the new model starts warm. The
    // residual window is kept: residuals of the old model still bound
    // recent realized errors conservatively until fresh ones accrue.
    std::unique_ptr<Forecaster> fresh = candidate->make_empty();
    for (const double v : series) fresh->observe(v);
    model_ = std::move(fresh);
    ++reselections_;
    return;
  }
}

}  // namespace slices::forecast
