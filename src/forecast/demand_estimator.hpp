#pragma once
// Per-slice demand estimation: point forecaster + residual safety margin
// + optional periodic model reselection. One DemandEstimator per
// (slice, domain metric) is the unit the overbooking engine consumes.

#include <cstddef>
#include <deque>
#include <memory>
#include <string_view>
#include <vector>

#include "forecast/forecaster.hpp"
#include "forecast/residual.hpp"

namespace slices::forecast {

/// Tuning for a DemandEstimator.
struct EstimatorConfig {
  std::size_t residual_window = 256;  ///< residuals kept for the margin quantile
  /// Re-run model selection over recent history every N observations;
  /// 0 disables reselection (fixed model).
  std::size_t reselect_every = 0;
  std::size_t history_capacity = 1024;  ///< history kept for reselection
  std::size_t season_length = 24;       ///< season hint for candidate models
};

/// Tracks one demand series and answers "how much capacity must stay
/// reserved to cover this slice with confidence q over the next
/// `horizon` periods?"
class DemandEstimator {
 public:
  DemandEstimator(std::unique_ptr<Forecaster> model, EstimatorConfig config = {});

  /// Factory with the library default model (Holt–Winters) and adaptive
  /// reselection enabled.
  [[nodiscard]] static DemandEstimator adaptive(std::size_t season_length);

  /// Ingest the next demand sample (records the residual of the
  /// previous one-step forecast first, then updates the model).
  void observe(double demand);

  [[nodiscard]] bool ready() const noexcept { return model_->ready(); }

  /// Point forecast h periods ahead. Precondition: ready().
  [[nodiscard]] double predict(std::size_t steps_ahead) const {
    return model_->predict(steps_ahead);
  }

  /// Upper demand bound over the next `horizon` periods at confidence
  /// `q`: max_h forecast(h), plus the residual q-quantile margin,
  /// clamped non-negative. Precondition: ready(), horizon >= 1.
  [[nodiscard]] double upper_bound(double q, std::size_t horizon) const;

  /// Most recent observation (0 before any).
  [[nodiscard]] double last_observation() const noexcept { return last_; }

  [[nodiscard]] std::string_view model_name() const noexcept { return model_->name(); }
  [[nodiscard]] std::size_t observations() const noexcept { return observations_; }
  [[nodiscard]] std::size_t reselections() const noexcept { return reselections_; }

 private:
  void maybe_reselect();

  EstimatorConfig config_;
  std::unique_ptr<Forecaster> model_;
  ResidualTracker residuals_;
  std::deque<double> history_;
  /// Reselection scratch: history is linearized here and handed to
  /// compare_models as a span, so the periodic reselection reuses one
  /// buffer instead of allocating a fresh vector every season.
  std::vector<double> scratch_;
  double last_ = 0.0;
  std::size_t observations_ = 0;
  std::size_t reselections_ = 0;
};

}  // namespace slices::forecast
