#pragma once
// Residual tracking: turns a point forecaster into an upper-bound
// estimator.
//
// Overbooking needs more than a point forecast — reclaiming reserved
// capacity down to the *expected* demand would violate SLAs roughly half
// the time. The orchestrator therefore tracks one-step-ahead residuals
// (actual − predicted) and adds the empirical q-quantile of recent
// residuals as a safety margin. The quantile q is the orchestrator's
// "risk budget" knob: higher q ⇒ safer ⇒ less reclaimable capacity —
// exactly the multiplexing-gain vs. SLA-penalty trade-off the demo
// dashboard displays.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <deque>
#include <vector>

namespace slices::forecast {

/// Sliding-window store of forecast residuals with quantile queries.
class ResidualTracker {
 public:
  explicit ResidualTracker(std::size_t window = 256) : window_(window) {
    assert(window > 0);
  }

  /// Record a realized residual (actual − predicted).
  void record(double residual) {
    residuals_.push_back(residual);
    if (residuals_.size() > window_) residuals_.pop_front();
  }

  [[nodiscard]] std::size_t size() const noexcept { return residuals_.size(); }
  [[nodiscard]] bool empty() const noexcept { return residuals_.empty(); }

  /// Empirical q-quantile of stored residuals (q in [0,1]).
  /// Precondition: !empty().
  [[nodiscard]] double quantile(double q) const {
    assert(!empty());
    assert(q >= 0.0 && q <= 1.0);
    std::vector<double> sorted(residuals_.begin(), residuals_.end());
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1) return sorted.front();
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = lo + 1 < sorted.size() ? lo + 1 : lo;
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  /// Safety margin for confidence q: the q-quantile clamped to >= 0
  /// (a negative margin would *shrink* the forecast, which is never
  /// safe for an upper bound).
  [[nodiscard]] double safety_margin(double q) const {
    if (empty()) return 0.0;
    const double m = quantile(q);
    return m > 0.0 ? m : 0.0;
  }

 private:
  std::size_t window_;
  std::deque<double> residuals_;
};

}  // namespace slices::forecast
