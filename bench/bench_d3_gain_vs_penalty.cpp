// Experiment D3 — the dashboard's "gains vs. penalties" panel: the
// machine-learning engine "trades off between multiplexing gain and SLA
// violations". Sweeps the overbooking risk quantile (the safety knob of
// the forecast upper bound) and reports gain, violations, penalties and
// net revenue. The paper's claim implies penalties grow as the broker
// gets more aggressive while gains grow too — with the economic optimum
// strictly inside the range.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hpp"
#include "forecast/residual.hpp"

namespace {

using namespace slices;
using namespace slices::bench;

void print_experiment() {
  std::printf("\nD3: multiplexing gain vs SLA penalties across the risk budget (7 days)\n");
  rule();
  std::printf("%-14s %10s %12s %12s %12s %12s %12s\n", "risk quantile", "admitted",
              "mean gain", "violations", "earned", "penalties", "net rev");
  rule();
  for (const double q : {0.0, 0.5, 0.8, 0.9, 0.95, 0.99}) {
    ScenarioConfig config;
    config.risk_quantile = q;
    config.arrivals_per_hour = 0.5;
    config.seed = 99;
    const ScenarioOutcome outcome = run_scenario(config);
    std::printf("%-14.2f %10llu %12.3f %12llu %12.2f %12.2f %12.2f\n", q,
                static_cast<unsigned long long>(outcome.summary.admitted_total),
                outcome.mean_multiplexing_gain,
                static_cast<unsigned long long>(outcome.summary.violation_epochs),
                outcome.summary.earned.as_units(), outcome.summary.penalties.as_units(),
                outcome.summary.net.as_units());
  }
  rule();
  std::printf("expected shape: lower quantile -> higher gain but more violation epochs and\n"
              "penalties; higher quantile -> safer but less multiplexing. Net revenue peaks\n"
              "at an interior risk level (the trade-off the demo dashboard displays).\n\n");
}

/// The kernel this experiment stresses: residual-quantile queries.
void BM_ResidualQuantile(benchmark::State& state) {
  forecast::ResidualTracker tracker(static_cast<std::size_t>(state.range(0)));
  Rng rng(3);
  for (int i = 0; i < state.range(0); ++i) tracker.record(rng.normal(0.0, 4.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.safety_margin(0.95));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResidualQuantile)->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
