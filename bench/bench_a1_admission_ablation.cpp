// Ablation A1 — admission-policy quality in isolation: on random
// request batches, how much of the optimal (exact knapsack) batch
// revenue do FCFS and greedy-density capture? Complements D1, which
// measures the same policies embedded in the full closed loop.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common.hpp"
#include "core/admission.hpp"
#include "telemetry/stats.hpp"

namespace {

using namespace slices;
using namespace slices::bench;

double batch_value(const std::vector<RequestId>& admitted,
                   const std::vector<core::CandidateRequest>& batch) {
  double value = 0.0;
  for (const RequestId id : admitted) {
    for (const core::CandidateRequest& c : batch) {
      if (c.id == id) value += c.spec.gross_revenue().as_units();
    }
  }
  return value;
}

/// Runtime (not assert, so Release bench builds keep it) self-check of
/// the flat take-matrix DP: on random small batches the knapsack
/// selection must match the exhaustive subset optimum under the same
/// Mb/s discretization, and respect capacity. Aborts loudly on any
/// mismatch so a DP regression can never hide in the timing tables.
void verify_knapsack_unchanged() {
  const core::KnapsackRevenuePolicy policy;
  Rng rng(1213);
  constexpr int kBatches = 200;
  for (int trial = 0; trial < kBatches; ++trial) {
    core::RequestGenerator generator({}, rng.fork());
    std::vector<core::CandidateRequest> batch;
    const std::size_t size = 2 + static_cast<std::size_t>(rng.uniform_int(0, 10));
    for (std::size_t i = 0; i < size; ++i) {
      batch.push_back(core::CandidateRequest{RequestId{i + 1}, generator.next_request().spec});
    }
    const int cap = static_cast<int>(rng.uniform_int(20, 120));
    const DataRate capacity = DataRate::mbps(static_cast<double>(cap));

    std::vector<int> weight(size);
    std::vector<std::int64_t> value(size);
    for (std::size_t i = 0; i < size; ++i) {
      weight[i] = static_cast<int>(std::ceil(batch[i].spec.expected_throughput.as_mbps()));
      value[i] = batch[i].spec.gross_revenue().as_cents();
    }

    // Exhaustive optimum over all subsets (size <= 12).
    std::int64_t optimum = 0;
    for (std::uint32_t mask = 0; mask < (1u << size); ++mask) {
      int w = 0;
      std::int64_t v = 0;
      for (std::size_t i = 0; i < size; ++i) {
        if ((mask >> i) & 1u) {
          w += weight[i];
          v += value[i] > 0 ? value[i] : 0;
        }
      }
      if (w <= cap && v > optimum) optimum = v;
    }

    const std::vector<RequestId> admitted = policy.select(batch, capacity);
    int w = 0;
    std::int64_t v = 0;
    for (const RequestId id : admitted) {
      const std::size_t i = id.value() - 1;
      w += weight[i];
      v += value[i];
    }
    if (w > cap || v != optimum) {
      std::fprintf(stderr,
                   "FATAL: knapsack self-check failed on batch %d: picked %lld cents "
                   "(weight %d/%d), exhaustive optimum %lld cents\n",
                   trial, static_cast<long long>(v), w, cap,
                   static_cast<long long>(optimum));
      std::abort();
    }
  }
  std::printf("knapsack self-check: flat take-matrix DP matches the exhaustive optimum "
              "on %d random batches\n", kBatches);
}

void print_experiment() {
  std::printf("\nA1: admission-policy ablation — fraction of optimal batch revenue captured\n");
  std::printf("(500 random batches per cell; batch = Poisson mix of all verticals)\n");
  rule(88);
  std::printf("%-12s %-12s %14s %14s %14s\n", "batch size", "capacity", "fcfs/opt",
              "greedy/opt", "knapsack/opt");
  rule(88);

  const core::FcfsPolicy fcfs;
  const core::GreedyRevenuePolicy greedy;
  const core::KnapsackRevenuePolicy knapsack;

  Rng rng(404);
  for (const std::size_t batch_size : {4u, 8u, 16u}) {
    for (const double capacity_mbps : {40.0, 80.0}) {
      telemetry::RunningStats fcfs_ratio, greedy_ratio, knap_ratio;
      for (int trial = 0; trial < 500; ++trial) {
        core::RequestGenerator generator({}, rng.fork());
        std::vector<core::CandidateRequest> batch;
        for (std::size_t i = 0; i < batch_size; ++i) {
          batch.push_back(
              core::CandidateRequest{RequestId{i + 1}, generator.next_request().spec});
        }
        const DataRate capacity = DataRate::mbps(capacity_mbps);
        const double opt = batch_value(knapsack.select(batch, capacity), batch);
        if (opt <= 0.0) continue;
        fcfs_ratio.add(batch_value(fcfs.select(batch, capacity), batch) / opt);
        greedy_ratio.add(batch_value(greedy.select(batch, capacity), batch) / opt);
        knap_ratio.add(1.0);
      }
      std::printf("%-12zu %-12.0f %13.1f%% %13.1f%% %13.1f%%\n", batch_size, capacity_mbps,
                  100.0 * fcfs_ratio.mean(), 100.0 * greedy_ratio.mean(),
                  100.0 * knap_ratio.mean());
    }
  }
  rule(88);
  std::printf("expected shape: knapsack = 100%% by construction; greedy lands within a few\n"
              "percent of optimal; FCFS leaves substantial revenue on the table, and the gap\n"
              "widens as capacity tightens relative to the batch.\n\n");
}

void BM_KnapsackLargeBatch(benchmark::State& state) {
  Rng rng(7);
  core::RequestGenerator generator({}, rng.fork());
  std::vector<core::CandidateRequest> batch;
  for (std::size_t i = 0; i < 512; ++i) {
    batch.push_back(core::CandidateRequest{RequestId{i + 1}, generator.next_request().spec});
  }
  const core::KnapsackRevenuePolicy policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.select(batch, DataRate::mbps(500.0)));
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_KnapsackLargeBatch)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  verify_knapsack_unchanged();
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
