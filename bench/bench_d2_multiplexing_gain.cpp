// Experiment D2 — the paper's headline claim: forecast-driven
// overbooking multiplexes more slices onto the same infrastructure than
// reservation-at-peak, with multiplexing gain > 1.
//
// Reproduces the dashboard quantities of demo §3 ("the achieved
// multiplexing gain through overbooking") as a table comparing the
// no-overbooking baseline against the overbooking broker across arrival
// rates, plus google-benchmark timings of the reconfiguration kernel.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hpp"
#include "core/overbooking.hpp"

namespace {

using namespace slices;
using namespace slices::bench;

void print_experiment() {
  std::printf("\nD2: multiplexing gain through overbooking (7 simulated days, Fig. 2 testbed)\n");
  rule();
  std::printf("%-10s %-12s %9s %9s %10s %12s %14s %12s\n", "arrivals/h", "mode",
              "admitted", "rejected", "accept%", "mean gain", "reserved Mb/s", "net rev");
  rule();
  for (const double arrivals : {0.125, 0.25, 0.5}) {
    for (const bool overbooking : {false, true}) {
      ScenarioConfig config;
      config.arrivals_per_hour = arrivals;
      config.overbooking = overbooking;
      config.seed = 2024;
      const ScenarioOutcome outcome = run_scenario(config);
      std::printf("%-10.3f %-12s %9llu %9llu %9.1f%% %12.3f %14.1f %12.2f\n", arrivals,
                  overbooking ? "overbooking" : "peak-resv",
                  static_cast<unsigned long long>(outcome.summary.admitted_total),
                  static_cast<unsigned long long>(outcome.summary.rejected_total),
                  100.0 * outcome.acceptance_ratio, outcome.mean_multiplexing_gain,
                  outcome.mean_ran_reserved_mbps, outcome.summary.net.as_units());
    }
  }
  rule();
  std::printf("expected shape: overbooking admits more slices (higher accept%%), mean gain\n"
              "well above 1 for diurnal verticals, and higher net revenue at equal load.\n\n");
}

/// Hot kernel behind D2: one full monitoring/reconfiguration epoch.
void BM_OrchestrationEpoch(benchmark::State& state) {
  core::OrchestratorConfig orch;
  orch.overbooking.warmup_observations = 4;
  auto tb = core::make_testbed(7, orch);
  for (const traffic::Vertical v :
       {traffic::Vertical::embb_video, traffic::Vertical::automotive,
        traffic::Vertical::iot_metering}) {
    (void)tb->orchestrator->submit(
        core::SliceSpec::from_profile(traffic::profile_for(v), Duration::hours(600.0)),
        traffic::make_traffic(v, Rng(3)));
    tb->simulator.run_for(Duration::hours(2.0));
  }
  tb->simulator.run_for(Duration::hours(12.0));  // warm estimators

  SimTime now = tb->simulator.now();
  for (auto _ : state) {
    now = now + Duration::minutes(15.0);
    tb->orchestrator->run_epoch(now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OrchestrationEpoch)->Unit(benchmark::kMicrosecond);

/// The forecast update + target computation for one slice.
void BM_OverbookingTarget(benchmark::State& state) {
  core::OverbookingConfig config;
  config.warmup_observations = 4;
  core::OverbookingEngine engine(config);
  engine.track(SliceId{1});
  Rng rng(5);
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    engine.observe(SliceId{1}, 20.0 + 8.0 * std::sin(t) + rng.normal());
    t += 0.26;
  }
  for (auto _ : state) {
    engine.observe(SliceId{1}, 20.0 + 8.0 * std::sin(t) + rng.normal());
    t += 0.26;
    benchmark::DoNotOptimize(engine.target_reservation(SliceId{1}, DataRate::mbps(60.0)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OverbookingTarget)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
