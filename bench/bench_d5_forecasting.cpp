// Experiment D5 — §2 of the demo: the traffic-forecasting engine (the
// paper's machine-learning component, after Sciancalepore et al.,
// INFOCOM'17). Backtests every forecaster family on the demand of every
// built-in vertical: MAE, RMSE and the realized violation rate of the
// 95%-quantile upper bound. Plus throughput benchmarks of the online
// model updates.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hpp"
#include "forecast/backtest.hpp"
#include "traffic/verticals.hpp"

namespace {

using namespace slices;
using namespace slices::bench;

std::vector<double> demand_trace(traffic::Vertical v, int days, std::uint64_t seed) {
  std::unique_ptr<traffic::TrafficModel> model = traffic::make_traffic(v, Rng(seed));
  std::vector<double> trace;
  SimTime t = SimTime::origin();
  for (int i = 0; i < days * 96; ++i) {  // 15-minute samples
    trace.push_back(model->sample(t));
    t = t + Duration::minutes(15.0);
  }
  return trace;
}

void print_experiment() {
  std::printf("\nD5: forecasting engine backtests (30 days of 15-min samples per vertical)\n");
  rule();
  std::printf("%-14s %-14s %10s %10s %10s %12s\n", "vertical", "model", "MAE", "RMSE",
              "bias", "q95 viol%");
  rule();
  for (const traffic::Vertical v : traffic::all_verticals()) {
    const std::vector<double> trace = demand_trace(v, 30, 7);
    const auto reports =
        forecast::compare_models(forecast::default_candidates(96), trace, 0.95);
    for (const forecast::BacktestReport& report : reports) {
      std::printf("%-14s %-14s %10.2f %10.2f %10.2f %11.1f%%\n",
                  std::string(traffic::to_string(v)).c_str(), report.model.c_str(),
                  report.mae, report.rmse, report.bias,
                  100.0 * report.upper_bound_violation_rate);
    }
    rule();
  }
  std::printf("expected shape: Holt-Winters leads on seasonal verticals (embb_video,\n"
              "cloud_gaming, automotive); on bursty e-health no model helps much and the\n"
              "safety margin carries the SLA. q95 violation rates sit near or below ~5-10%%.\n\n");
}

void BM_HoltWintersUpdate(benchmark::State& state) {
  forecast::HoltWintersForecaster model(0.4, 0.05, 0.3, 96);
  Rng rng(5);
  double t = 0.0;
  for (int i = 0; i < 200; ++i) model.observe(20.0 + 8.0 * std::sin(t += 0.065));
  for (auto _ : state) {
    model.observe(20.0 + 8.0 * std::sin(t += 0.065) + rng.normal());
    benchmark::DoNotOptimize(model.predict(4));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HoltWintersUpdate);

void BM_BacktestThirtyDays(benchmark::State& state) {
  const std::vector<double> trace = demand_trace(traffic::Vertical::embb_video, 30, 9);
  const forecast::HoltWintersForecaster prototype(0.4, 0.05, 0.3, 96);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forecast::backtest(prototype, trace, 0.95));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_BacktestThirtyDays)->Unit(benchmark::kMillisecond);

void BM_ModelSelection(benchmark::State& state) {
  const std::vector<double> trace = demand_trace(traffic::Vertical::cloud_gaming, 8, 11);
  for (auto _ : state) {
    const auto candidates = forecast::default_candidates(96);
    benchmark::DoNotOptimize(forecast::compare_models(candidates, trace, 0.95));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelSelection)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
