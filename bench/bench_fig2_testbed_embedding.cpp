// Experiment F2 — Fig. 2 of the paper: the end-to-end testbed (two
// MOCN eNBs, mmWave + µwave wireless transport and a programmable
// switch, edge and core OpenStack datacenters, E2E orchestrator on top).
// Builds the testbed, embeds one slice of every vertical end-to-end and
// prints the resulting per-domain state — the software twin of the
// figure — then times testbed construction.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "common.hpp"
#include "dashboard/dashboard.hpp"

namespace {

using namespace slices;
using namespace slices::bench;

void print_experiment() {
  std::printf("\nF2: Fig. 2 testbed, one slice per vertical embedded end-to-end\n\n");

  auto tb = core::make_testbed(2018);
  // Throughputs are operator-scaled to the two-small-cell testbed via
  // the dashboard's "expected throughput" field, as in the live demo
  // (a 20 MHz LTE cell carries ~40 Mb/s at mid CQI).
  const std::map<traffic::Vertical, double> testbed_mbps = {
      {traffic::Vertical::iot_metering, 2.0},  {traffic::Vertical::ehealth, 8.0},
      {traffic::Vertical::automotive, 15.0},   {traffic::Vertical::cloud_gaming, 18.0},
      {traffic::Vertical::embb_video, 25.0}};
  for (const auto& [v, mbps] : testbed_mbps) {
    core::SliceSpec spec =
        core::SliceSpec::from_profile(traffic::profile_for(v), Duration::hours(48.0));
    spec.expected_throughput = DataRate::mbps(mbps);
    const RequestId request =
        tb->orchestrator->submit(spec, traffic::make_traffic(v, Rng(23)));
    const core::SliceRecord* record = tb->orchestrator->find_by_request(request);
    std::printf("  %-14s -> %-11s", std::string(traffic::to_string(v)).c_str(),
                std::string(core::to_string(record->state)).c_str());
    if (record->state == core::SliceState::installing) {
      const cloud::Datacenter* dc = tb->cloud.find_datacenter(record->embedding.datacenter);
      const transport::PathReservation* path =
          tb->transport->find_path(record->embedding.paths.front());
      std::printf("  plmn=%llu dc=%s path_delay=%.1fms prb=%d",
                  static_cast<unsigned long long>(record->embedding.plmn.value()),
                  dc->name().c_str(), path->route.total_delay.as_millis(),
                  tb->ran.find_allocation(record->embedding.plmn)->total_prbs().value);
    }
    std::printf("\n");
    // Stagger so the broker can overbook the earlier slices.
    tb->simulator.run_for(Duration::hours(4.0));
  }

  tb->simulator.run_for(Duration::hours(2.0));
  dashboard::Dashboard dash(tb.get());
  std::printf("\n%s\n", dash.render_domains().c_str());
  std::printf("%s\n", dash.render_headline().c_str());
  std::printf("expected shape: latency-bound verticals (automotive, ehealth, cloud_gaming)\n"
              "land on edge-dc; bulk verticals on core-dc; paths ride the mmWave uplink\n"
              "within each vertical's delay budget; both cells carry PRB reservations.\n\n");
}

void BM_BuildTestbed(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::make_testbed(1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BuildTestbed)->Unit(benchmark::kMicrosecond);

void BM_CspfOnTestbedTopology(benchmark::State& state) {
  auto tb = core::make_testbed(2);
  const transport::ResidualFn residual = [&](const transport::Link& link) {
    return tb->transport->residual(link);
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(transport::find_route(tb->transport->topology(),
                                                   tb->ran_gateway, tb->core_gateway,
                                                   DataRate::mbps(50.0), residual));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CspfOnTestbedTopology);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
