// Experiment S3 — mobility & handover scalability: how fast can the
// mobility Field walk a city's UE population, and how fast does the
// RAN controller absorb the resulting handover batches? The epoch loop
// budget already pays for CQI wander + serving (S2); mobility adds a
// move phase (pool-shardable, row-local) plus a sequential transition
// scan and one allocation-free apply_handovers pass, and this bench
// keeps that addition honest at 10k..1M UEs.
//
// BM_MobilityStep/<ues>/<threads>
//                      — one mobility epoch over `ues` UEs on a
//                        128-cell grid: Field::step (waypoint move +
//                        transition scan, `threads`-wide pool; 1 =
//                        serial) followed by Field::apply (the handover
//                        batch through the controller). Time advances
//                        one minute per iteration, so the handover mix
//                        matches the scenario engine's cadence.
//                        items/s = UE-steps per second.
// BM_HandoverApply/<batch>
//                      — apply_handovers alone: a prepared batch of
//                        `batch` UEs ping-ponged between two cells
//                        (every request succeeds, PRB reservation
//                        migration included). items/s = handovers per
//                        second; this is the worst case where every UE
//                        in a cell crosses at once (stadium storm).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "mobility/field.hpp"
#include "ran/cell.hpp"
#include "ran/controller.hpp"

namespace {

using namespace slices;
using namespace slices::bench;

constexpr std::size_t kCells = 128;
constexpr std::size_t kPlmns = 6;  // broadcast-list capacity per cell

/// 128-cell RAN with six allocated PLMNs and a mobility Field animating
/// ~`ues` UEs (ues/6 per slice), population spawned once up front.
struct MobilitySystem {
  ran::RanController ran;
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<mobility::Field> field;
  std::vector<PlmnId> plmns;
  std::int64_t now_us = 0;

  MobilitySystem(std::size_t ues, std::size_t threads) {
    for (std::size_t c = 0; c < kCells; ++c) {
      ran.add_cell(ran::Cell(CellId{c + 1}, "cell-" + std::to_string(c),
                             ran::Bandwidth::mhz20, ran::SharingPolicy::pooled));
    }
    for (std::size_t p = 0; p < kPlmns; ++p) {
      const PlmnId plmn{p + 1};
      if (!ran.install_plmn(plmn)) std::abort();
      if (!ran.set_allocation(plmn, DataRate::mbps(200.0))) std::abort();
      plmns.push_back(plmn);
    }
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

    mobility::FieldConfig config;
    config.seed = 20206;
    config.ues_per_slice = std::max<std::size_t>(ues / kPlmns, 1);
    field = std::make_unique<mobility::Field>(config, &ran, pool.get());
    field->sync_population(plmns, [](PlmnId) { return 0.0; });
  }

  /// One scenario-cadence mobility epoch: move everyone one minute and
  /// hand over the boundary crossers.
  ran::HandoverStats epoch() {
    now_us += 60'000'000;
    const SimTime now = SimTime::from_micros(now_us);
    field->step(now);
    return field->apply(now);
  }
};

void print_experiment() {
  std::printf("\nS3: mobility & handover scalability — moving-UE data plane\n");
  std::printf("(128-cell grid, 6 PLMNs; waypoint walk at one-minute epochs)\n");
  std::printf("see the google-benchmark tables: BM_MobilityStep/<ues>/<threads>,\n"
              "BM_HandoverApply/<batch>\n");
  std::printf("expected shape: the move phase is linear in UEs and shards across the\n"
              "pool; the transition scan and handover apply stay sequential but touch\n"
              "only the crossing UEs, so step cost is dominated by the walk. The apply\n"
              "path is allocation-free — BM_HandoverApply is pure per-request work\n"
              "(row moves + PRB reservation migration), the stadium-storm worst case.\n\n");
}

void BM_MobilityStep(benchmark::State& state) {
  MobilitySystem sys(static_cast<std::size_t>(state.range(0)),
                     static_cast<std::size_t>(state.range(1)));
  // Warm one epoch outside the timed loop: the first step seeds the
  // waypoints and sizes the reusable batch buffers.
  (void)sys.epoch();
  std::uint64_t handovers = 0;
  for (auto _ : state) {
    handovers += sys.epoch().successes;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sys.field->population()));
  state.counters["population"] = static_cast<double>(sys.field->population());
  state.counters["ho_per_epoch"] =
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(handovers) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_MobilityStep)
    ->Args({10'000, 1})
    ->Args({100'000, 1})
    ->Args({1'000'000, 1})
    ->Args({100'000, 4})
    ->Args({1'000'000, 4})
    ->Unit(benchmark::kMicrosecond);

void BM_HandoverApply(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  ran::RanController ran;
  ran.add_cell(ran::Cell(CellId{1}, "cell-a", ran::Bandwidth::mhz20,
                         ran::SharingPolicy::pooled));
  ran.add_cell(ran::Cell(CellId{2}, "cell-b", ran::Bandwidth::mhz20,
                         ran::SharingPolicy::pooled));
  const PlmnId plmn{1};
  if (!ran.install_plmn(plmn)) std::abort();
  // Two mhz20 cells bound the PLMN-wide allocation; 50 Mb/s leaves PRBs
  // free on the target so the per-UE reservation migration exercises
  // its clamp path without starving.
  if (!ran.set_allocation(plmn, DataRate::mbps(50.0))) std::abort();

  std::vector<ran::HandoverRequest> to_b, to_a;
  to_b.reserve(batch);
  to_a.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    Result<UeId> ue = ran.attach_ue_at(CellId{1}, plmn, ran::Cqi{10});
    if (!ue) std::abort();
    to_b.push_back(ran::HandoverRequest{ue.value(), CellId{2}});
    to_a.push_back(ran::HandoverRequest{ue.value(), CellId{1}});
  }

  std::int64_t now_us = 0;
  bool forward = true;
  // Warm one apply per direction: sizes the internal outcome scratch.
  (void)ran.apply_handovers(to_b, SimTime::from_micros(now_us += 1000));
  (void)ran.apply_handovers(to_a, SimTime::from_micros(now_us += 1000));
  for (auto _ : state) {
    const auto& requests = forward ? to_b : to_a;
    const ran::HandoverStats stats =
        ran.apply_handovers(requests, SimTime::from_micros(now_us += 1000));
    if (stats.successes != batch) std::abort();
    forward = !forward;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_HandoverApply)->Arg(1'000)->Arg(10'000)->Arg(100'000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
