// Experiment O1 — cost of the observability layer. The tracing and
// latency-histogram instrumentation rides the orchestrator hot path
// (docs/observability.md); the contract is that a fully instrumented
// epoch at S1 scale (128 cells, 6 slices) costs < 3% over the same
// epoch with tracing disabled.
//
// Prints the paper-style overhead table from a manual interleaved
// timing loop, then runs google-benchmark timings of the kernels:
// epoch serve (tracing off / on / on+wall), span record, histogram
// record, and the Chrome-trace export.
//
// With SLICES_TRACE_OUT=<path> the measured run's trace is exported as
// Chrome trace-event JSON (Perfetto-loadable); CI uploads it as an
// artifact.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace slices;
using namespace slices::bench;

constexpr std::size_t kCells = 128;
constexpr std::size_t kSlices = 6;

/// Wall-clock µs of one orchestrator epoch.
double run_epoch_us(ScaledSystem& sys, SimTime& now) {
  now = now + Duration::minutes(15.0);
  const auto start = std::chrono::steady_clock::now();
  sys.orchestrator->run_epoch(now);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count() / 1000.0;
}

void print_experiment() {
  std::printf("\nO1: observability overhead at S1 scale (%zu cells, %zu slices)\n", kCells,
              kSlices);

  auto sys = make_scaled(kCells, kSlices);
  SimTime now = sys->simulator.now();
  telemetry::trace::set_enabled(false);
  telemetry::trace::set_wall_clock(false);
  telemetry::trace::clear();

  constexpr int kWarmup = 20;
  constexpr int kBlocks = 120;  // 6 epochs per block -> 240 samples per mode
  const auto set_mode = [](int mode) {
    telemetry::trace::set_enabled(mode != 0);
    telemetry::trace::set_wall_clock(mode == 2);
  };
  for (int i = 0; i < kWarmup; ++i) (void)run_epoch_us(*sys, now);

  // Per-epoch cost drifts over a long run (allocator state, scheduler
  // preemption on shared CI runners), so batch timing with a fixed mode
  // order charges the drift to whichever mode runs later. Instead time
  // single epochs in a palindromic mode order — 0,1,2,2,1,0 cancels
  // linear drift inside every block — and compare per-mode *medians*,
  // which shrug off preemption spikes.
  static constexpr int kOrder[6] = {0, 1, 2, 2, 1, 0};
  std::vector<double> us[3];
  for (int b = 0; b < kBlocks; ++b) {
    for (const int mode : kOrder) {
      set_mode(mode);
      us[mode].push_back(run_epoch_us(*sys, now));
    }
  }
  set_mode(0);
  const auto median_epoch_us = [](std::vector<double>& samples) {
    std::nth_element(samples.begin(), samples.begin() + samples.size() / 2, samples.end());
    return samples[samples.size() / 2];
  };
  const double off = median_epoch_us(us[0]);
  const double on = median_epoch_us(us[1]);
  const double wall = median_epoch_us(us[2]);
  const double on_pct = (on / off - 1.0) * 100.0;
  const double wall_pct = (wall / off - 1.0) * 100.0;

  rule(72);
  std::printf("%-34s %12s %12s\n", "mode", "epoch µs", "overhead");
  rule(72);
  std::printf("%-34s %12.1f %12s\n", "tracing off", off, "--");
  std::printf("%-34s %12.1f %+11.2f%%\n", "tracing on (sim timestamps)", on, on_pct);
  std::printf("%-34s %12.1f %+11.2f%%\n", "tracing on + wall histograms", wall, wall_pct);
  rule(72);
  std::printf("target: < 3%% with tracing on -> %s\n",
              on_pct < 3.0 ? "MET" : "NOT MET (see docs/observability.md)");
  std::printf("spans retained: %zu, dropped (ring overwrite): %llu\n",
              telemetry::trace::Tracer::instance().span_count(),
              static_cast<unsigned long long>(telemetry::trace::Tracer::instance().dropped()));

  // Export the measured run for Perfetto when the caller asks (CI
  // uploads this as an artifact).
  if (const char* path = std::getenv("SLICES_TRACE_OUT"); path != nullptr && *path != '\0') {
    std::string trace_json;
    telemetry::trace::Tracer::instance().export_chrome_json(trace_json);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << trace_json;
    std::printf("trace written to %s (%zu bytes)\n", path, trace_json.size());
  }
  std::printf("\n");

  telemetry::trace::set_enabled(false);
  telemetry::trace::clear();
}

void BM_EpochTracing(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  const bool wall = state.range(0) == 2;
  auto sys = make_scaled(kCells, kSlices);
  SimTime now = sys->simulator.now();
  telemetry::trace::set_enabled(enabled);
  telemetry::trace::set_wall_clock(wall);
  telemetry::trace::clear();
  for (auto _ : state) {
    now = now + Duration::minutes(15.0);
    sys->orchestrator->run_epoch(now);
  }
  state.SetItemsProcessed(state.iterations());
  telemetry::trace::set_enabled(false);
  telemetry::trace::set_wall_clock(false);
  telemetry::trace::clear();
}
BENCHMARK(BM_EpochTracing)
    ->Arg(0)  // tracing off
    ->Arg(1)  // tracing on, sim timestamps
    ->Arg(2)  // tracing on + wall-clock histograms
    ->Unit(benchmark::kMicrosecond);

void BM_SpanRecord(benchmark::State& state) {
  telemetry::trace::set_enabled(true);
  telemetry::trace::set_wall_clock(false);
  telemetry::trace::clear();
  for (auto _ : state) {
    TRACE_SCOPE("bench.span");
  }
  state.SetItemsProcessed(state.iterations());
  telemetry::trace::set_enabled(false);
  telemetry::trace::clear();
}
BENCHMARK(BM_SpanRecord);

void BM_SpanDisabled(benchmark::State& state) {
  telemetry::trace::set_enabled(false);
  for (auto _ : state) {
    TRACE_SCOPE("bench.span");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanDisabled);

void BM_HistogramRecord(benchmark::State& state) {
  telemetry::Histogram hist;
  std::uint64_t v = 88172645463325252ull;
  for (auto _ : state) {
    v ^= v << 13;
    v ^= v >> 7;
    v ^= v << 17;
    hist.record(v % 1000000);
  }
  benchmark::DoNotOptimize(hist.value_at_quantile(0.99));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_TraceExport(benchmark::State& state) {
  telemetry::trace::set_enabled(true);
  telemetry::trace::set_wall_clock(false);
  telemetry::trace::clear();
  telemetry::trace::set_sim_now(1000);
  for (int i = 0; i < 4096; ++i) {
    TRACE_SCOPE("bench.exported");
  }
  std::string out;
  for (auto _ : state) {
    telemetry::trace::Tracer::instance().export_chrome_json(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(out.size()));
  telemetry::trace::set_enabled(false);
  telemetry::trace::clear();
}
BENCHMARK(BM_TraceExport)->Unit(benchmark::kMicrosecond);

void BM_MetricsBody(benchmark::State& state) {
  // A /metrics scrape: serialize a registry populated roughly the way
  // one region's orchestrator populates it (a few dozen counters and
  // gauges, per-slice series, one busy latency histogram).
  telemetry::MonitorRegistry registry;
  std::uint64_t v = 88172645463325252ull;
  for (int i = 0; i < 48; ++i) {
    registry.counter("bench.counter." + std::to_string(i)).increment(i);
    registry.gauge("bench.gauge." + std::to_string(i)).set(i * 1.5);
    telemetry::SeriesHandle series = registry.handle("bench.series." + std::to_string(i));
    for (int t = 0; t < 16; ++t) {
      series.observe(SimTime::origin() + Duration::minutes(15.0 * t), i + t * 0.25);
    }
  }
  telemetry::Histogram& hist = registry.histogram("bench.latency_us");
  for (int i = 0; i < 4096; ++i) {
    v ^= v << 13;
    v ^= v >> 7;
    v ^= v << 17;
    hist.record(v % 1000000);
  }
  std::string out;
  for (auto _ : state) {
    registry.metrics_body(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_MetricsBody)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
