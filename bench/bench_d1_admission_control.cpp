// Experiment D1 — §3 of the demo: admission control with a revenue-
// maximization strategy. Sweeps the request arrival rate and compares
// the revenue-maximizing broker against plain FCFS admission: acceptance
// ratio and realized revenue. Also times the admission kernels.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hpp"
#include "core/admission.hpp"

namespace {

using namespace slices;
using namespace slices::bench;

void print_experiment() {
  std::printf("\nD1: admission control, revenue maximization vs FCFS (7 days, Fig. 2 testbed,\n"
              "requests auctioned in 6 h batches as in the slice-broker model)\n");
  rule();
  std::printf("%-10s %-18s %9s %9s %10s %12s %12s\n", "arrivals/h", "policy", "admitted",
              "rejected", "accept%", "earned", "net rev");
  rule();
  for (const double arrivals : {0.25, 0.5, 1.0, 2.0}) {
    for (const char* policy : {"fcfs", "greedy_revenue", "knapsack_revenue"}) {
      ScenarioConfig config;
      config.policy = policy;
      config.arrivals_per_hour = arrivals;
      config.admission_window_hours = 6.0;
      config.seed = 515;
      const ScenarioOutcome outcome = run_scenario(config);
      std::printf("%-10.3f %-18s %9llu %9llu %9.1f%% %12.2f %12.2f\n", arrivals, policy,
                  static_cast<unsigned long long>(outcome.summary.admitted_total),
                  static_cast<unsigned long long>(outcome.summary.rejected_total),
                  100.0 * outcome.acceptance_ratio, outcome.summary.earned.as_units(),
                  outcome.summary.net.as_units());
    }
  }
  rule();
  std::printf("expected shape: at low load all policies admit everything; as load grows the\n"
              "revenue-maximizing policies keep revenue at or above FCFS while admitting a\n"
              "comparable or smaller number of (more valuable) slices.\n\n");
}

std::vector<core::CandidateRequest> random_batch(std::size_t n, Rng& rng) {
  std::vector<core::CandidateRequest> batch;
  batch.reserve(n);
  core::RequestGenerator generator({}, rng.fork());
  for (std::size_t i = 0; i < n; ++i) {
    core::GeneratedRequest request = generator.next_request();
    batch.push_back(core::CandidateRequest{RequestId{i + 1}, std::move(request.spec)});
  }
  return batch;
}

void BM_AdmissionKnapsack(benchmark::State& state) {
  Rng rng(1);
  const auto batch = random_batch(static_cast<std::size_t>(state.range(0)), rng);
  const core::KnapsackRevenuePolicy policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.select(batch, DataRate::mbps(200.0)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AdmissionKnapsack)->Arg(8)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_AdmissionGreedy(benchmark::State& state) {
  Rng rng(2);
  const auto batch = random_batch(static_cast<std::size_t>(state.range(0)), rng);
  const core::GreedyRevenuePolicy policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.select(batch, DataRate::mbps(200.0)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AdmissionGreedy)->Arg(8)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
