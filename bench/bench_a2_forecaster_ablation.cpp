// Ablation A2 — which forecaster should drive the overbooking engine?
// Runs the full closed loop with each estimator family (naive, EWMA,
// Holt-Winters, adaptive reselection) and compares gain, violations and
// net revenue. This ablates the design choice DESIGN.md makes: adaptive
// reselection starting from a fast-warmup level model.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hpp"

namespace {

using namespace slices;
using namespace slices::bench;

void print_experiment() {
  std::printf("\nA2: forecaster ablation inside the overbooking engine (7 days, 0.5 req/h)\n");
  rule();
  std::printf("%-14s %10s %12s %12s %12s %12s\n", "estimator", "admitted", "mean gain",
              "violations", "penalties", "net rev");
  rule();
  for (const core::EstimatorKind kind :
       {core::EstimatorKind::naive, core::EstimatorKind::ewma,
        core::EstimatorKind::holt_winters, core::EstimatorKind::adaptive}) {
    ScenarioConfig config;
    config.estimator = kind;
    config.arrivals_per_hour = 0.5;
    config.seed = 777;
    const ScenarioOutcome outcome = run_scenario(config);
    std::printf("%-14s %10llu %12.3f %12llu %12.2f %12.2f\n",
                std::string(core::to_string(kind)).c_str(),
                static_cast<unsigned long long>(outcome.summary.admitted_total),
                outcome.mean_multiplexing_gain,
                static_cast<unsigned long long>(outcome.summary.violation_epochs),
                outcome.summary.penalties.as_units(), outcome.summary.net.as_units());
  }
  rule();
  std::printf("expected shape: naive chases noise (violations or thin gain); Holt-Winters\n"
              "is blind for its first full season (less early reclaim); EWMA and adaptive\n"
              "reclaim early, with adaptive upgrading to seasonal models over time.\n\n");
}

void BM_TrackUntrackChurn(benchmark::State& state) {
  core::OverbookingEngine engine;
  std::uint64_t next = 1;
  for (auto _ : state) {
    const SliceId slice{next++};
    engine.track(slice);
    for (int i = 0; i < 16; ++i) engine.observe(slice, 10.0 + i);
    benchmark::DoNotOptimize(engine.target_reservation(slice, DataRate::mbps(50.0)));
    engine.untrack(slice);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrackUntrackChurn)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
