#pragma once
// Shared scenario machinery for the experiment benches (see DESIGN.md §4
// for the experiment index). Each bench binary prints the paper-style
// table for its experiment and then runs google-benchmark timings of the
// hot kernels involved.

#include <cstdio>
#include <string>

#include "core/request_generator.hpp"
#include "core/testbed.hpp"

namespace slices::bench {

/// Aggregate outcome of one driven scenario.
struct ScenarioOutcome {
  core::OrchestratorSummary summary;   ///< end-of-run orchestrator state
  double acceptance_ratio = 0.0;       ///< admitted / (admitted + rejected)
  double mean_multiplexing_gain = 1.0; ///< time-average of the gain series
  double peak_active_slices = 0.0;     ///< max concurrent active slices
  double mean_ran_reserved_mbps = 0.0; ///< time-average radio reservation
};

/// Knobs of the Poisson-arrival admission scenario that underlies
/// experiments D1, D2, D3 and A2.
struct ScenarioConfig {
  std::string policy = "knapsack_revenue";
  bool overbooking = true;
  double risk_quantile = 0.95;
  core::EstimatorKind estimator = core::EstimatorKind::adaptive;
  double arrivals_per_hour = 0.25;
  double days = 7.0;
  std::uint64_t seed = 42;
  /// > 0 queues requests and auctions them as a batch every window.
  double admission_window_hours = 0.0;
  core::RequestGeneratorConfig requests;
};

/// Drive the Fig. 2 testbed with Poisson slice arrivals for
/// `config.days` simulated days and aggregate the dashboard metrics.
inline ScenarioOutcome run_scenario(const ScenarioConfig& config) {
  core::OrchestratorConfig orch;
  orch.admission_policy = config.policy;
  orch.overbooking.enabled = config.overbooking;
  orch.overbooking.risk_quantile = config.risk_quantile;
  orch.overbooking.estimator = config.estimator;
  orch.overbooking.warmup_observations = 8;
  if (config.admission_window_hours > 0.0) {
    orch.admission_window = Duration::hours(config.admission_window_hours);
  }

  auto tb = core::make_testbed(config.seed, orch);

  core::RequestGeneratorConfig requests = config.requests;
  requests.arrivals_per_hour = config.arrivals_per_hour;
  core::RequestGenerator generator(requests, Rng(config.seed * 7919 + 13));

  // Self-rescheduling arrival process on the simulator.
  std::function<void()> arrive = [&] {
    core::GeneratedRequest request = generator.next_request();
    (void)tb->orchestrator->submit(request.spec, std::move(request.workload));
    tb->simulator.schedule_after(generator.next_interarrival(), arrive);
  };
  tb->simulator.schedule_after(generator.next_interarrival(), arrive);

  tb->simulator.run_for(Duration::hours(24.0 * config.days));

  ScenarioOutcome outcome;
  outcome.summary = tb->orchestrator->summary();
  const auto total = outcome.summary.admitted_total + outcome.summary.rejected_total;
  outcome.acceptance_ratio =
      total == 0 ? 0.0
                 : static_cast<double>(outcome.summary.admitted_total) /
                       static_cast<double>(total);

  if (const telemetry::TimeSeries* gain =
          tb->registry.find_series("orchestrator.multiplexing_gain")) {
    double sum = 0.0;
    for (std::size_t i = 0; i < gain->size(); ++i) sum += gain->at(i).value;
    if (gain->size() > 0) outcome.mean_multiplexing_gain = sum / static_cast<double>(gain->size());
  }
  if (const telemetry::TimeSeries* active =
          tb->registry.find_series("orchestrator.active_slices")) {
    for (std::size_t i = 0; i < active->size(); ++i) {
      outcome.peak_active_slices = std::max(outcome.peak_active_slices, active->at(i).value);
    }
  }
  if (const telemetry::TimeSeries* reserved =
          tb->registry.find_series("orchestrator.reserved_mbps")) {
    double sum = 0.0;
    for (std::size_t i = 0; i < reserved->size(); ++i) sum += reserved->at(i).value;
    if (reserved->size() > 0)
      outcome.mean_ran_reserved_mbps = sum / static_cast<double>(reserved->size());
  }
  return outcome;
}

/// printf a horizontal rule sized for the experiment tables.
inline void rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace slices::bench
