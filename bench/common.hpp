#pragma once
// Shared scenario machinery for the experiment benches (see DESIGN.md §4
// for the experiment index). Each bench binary prints the paper-style
// table for its experiment and then runs google-benchmark timings of the
// hot kernels involved.

#include <cstdio>
#include <initializer_list>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/request_generator.hpp"
#include "core/testbed.hpp"
#include "telemetry/stats.hpp"
#include "transport/generators.hpp"

namespace slices::bench {

/// Aggregate outcome of one driven scenario.
struct ScenarioOutcome {
  core::OrchestratorSummary summary;   ///< end-of-run orchestrator state
  double acceptance_ratio = 0.0;       ///< admitted / (admitted + rejected)
  double mean_multiplexing_gain = 1.0; ///< time-average of the gain series
  double peak_active_slices = 0.0;     ///< max concurrent active slices
  double mean_ran_reserved_mbps = 0.0; ///< time-average radio reservation
};

/// Knobs of the Poisson-arrival admission scenario that underlies
/// experiments D1, D2, D3 and A2.
struct ScenarioConfig {
  std::string policy = "knapsack_revenue";
  bool overbooking = true;
  double risk_quantile = 0.95;
  core::EstimatorKind estimator = core::EstimatorKind::adaptive;
  double arrivals_per_hour = 0.25;
  double days = 7.0;
  std::uint64_t seed = 42;
  /// > 0 queues requests and auctions them as a batch every window.
  double admission_window_hours = 0.0;
  core::RequestGeneratorConfig requests;
};

/// Drive the Fig. 2 testbed with Poisson slice arrivals for
/// `config.days` simulated days and aggregate the dashboard metrics.
inline ScenarioOutcome run_scenario(const ScenarioConfig& config) {
  core::OrchestratorConfig orch;
  orch.admission_policy = config.policy;
  orch.overbooking.enabled = config.overbooking;
  orch.overbooking.risk_quantile = config.risk_quantile;
  orch.overbooking.estimator = config.estimator;
  orch.overbooking.warmup_observations = 8;
  if (config.admission_window_hours > 0.0) {
    orch.admission_window = Duration::hours(config.admission_window_hours);
  }

  auto tb = core::make_testbed(config.seed, orch);

  core::RequestGeneratorConfig requests = config.requests;
  requests.arrivals_per_hour = config.arrivals_per_hour;
  core::RequestGenerator generator(requests, Rng(config.seed * 7919 + 13));

  // Self-rescheduling arrival process on the simulator.
  std::function<void()> arrive = [&] {
    core::GeneratedRequest request = generator.next_request();
    (void)tb->orchestrator->submit(request.spec, std::move(request.workload));
    tb->simulator.schedule_after(generator.next_interarrival(), arrive);
  };
  tb->simulator.schedule_after(generator.next_interarrival(), arrive);

  tb->simulator.run_for(Duration::hours(24.0 * config.days));

  ScenarioOutcome outcome;
  outcome.summary = tb->orchestrator->summary();
  const auto total = outcome.summary.admitted_total + outcome.summary.rejected_total;
  outcome.acceptance_ratio =
      total == 0 ? 0.0
                 : static_cast<double>(outcome.summary.admitted_total) /
                       static_cast<double>(total);

  if (const telemetry::TimeSeries* gain =
          tb->registry.find_series("orchestrator.multiplexing_gain")) {
    double sum = 0.0;
    for (std::size_t i = 0; i < gain->size(); ++i) sum += gain->at(i).value;
    if (gain->size() > 0) outcome.mean_multiplexing_gain = sum / static_cast<double>(gain->size());
  }
  if (const telemetry::TimeSeries* active =
          tb->registry.find_series("orchestrator.active_slices")) {
    for (std::size_t i = 0; i < active->size(); ++i) {
      outcome.peak_active_slices = std::max(outcome.peak_active_slices, active->at(i).value);
    }
  }
  if (const telemetry::TimeSeries* reserved =
          tb->registry.find_series("orchestrator.reserved_mbps")) {
    double sum = 0.0;
    for (std::size_t i = 0; i < reserved->size(); ++i) sum += reserved->at(i).value;
    if (reserved->size() > 0)
      outcome.mean_ran_reserved_mbps = sum / static_cast<double>(reserved->size());
  }
  return outcome;
}

/// printf a horizontal rule sized for the experiment tables.
inline void rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// A scaled deployment for the S-series experiments: `cells` eNBs
/// behind an aggregation tree, one big core DC, `slices` active slices
/// with constant demand.
struct ScaledSystem {
  sim::Simulator simulator;
  telemetry::MonitorRegistry registry;
  std::unique_ptr<ThreadPool> pool;
  net::RestBus bus;
  ran::RanController ran{&registry};
  cloud::CloudController cloud{&registry};
  std::unique_ptr<transport::TransportController> transport;
  std::unique_ptr<epc::EpcManager> epc;
  std::unique_ptr<core::Orchestrator> orchestrator;
};

/// Build, start and warm a ScaledSystem. `epoch_threads == 0` uses the
/// hardware concurrency.
inline std::unique_ptr<ScaledSystem> make_scaled(std::size_t cells, std::size_t slices,
                                                 std::size_t epoch_threads = 0) {
  auto sys = std::make_unique<ScaledSystem>();
  if (epoch_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    epoch_threads = hw == 0 ? 1 : hw;
  }
  if (epoch_threads > 1) {
    sys->pool = std::make_unique<ThreadPool>(epoch_threads);
    sys->ran.set_thread_pool(sys->pool.get());
  }

  for (std::size_t c = 0; c < cells; ++c) {
    sys->ran.add_cell(ran::Cell(CellId{c + 1}, "cell-" + std::to_string(c),
                                ran::Bandwidth::mhz20, ran::SharingPolicy::pooled));
  }

  transport::GeneratedTopology tree =
      transport::make_aggregation_tree(/*leaves=*/std::max<std::size_t>(cells / 4, 1),
                                       /*leaves_per_switch=*/4);
  const NodeId ran_gateway = tree.ran_gateways.front();
  const NodeId core_gateway = tree.core_gateway;
  sys->transport = std::make_unique<transport::TransportController>(
      std::move(tree.topology), Rng(1), &sys->registry);
  if (sys->pool != nullptr) sys->transport->set_thread_pool(sys->pool.get());

  const DatacenterId core_dc =
      sys->cloud.add_datacenter("core", cloud::DatacenterKind::core, 4.0);
  for (std::size_t h = 0; h < std::max<std::size_t>(slices / 8, 2); ++h) {
    sys->cloud.add_host(core_dc, "host-" + std::to_string(h),
                        ComputeCapacity{256.0, 1048576.0, 10000.0});
  }
  sys->cloud.finalize();
  sys->epc = std::make_unique<epc::EpcManager>(&sys->cloud);

  sys->bus.register_service("ran", sys->ran.make_router());
  sys->bus.register_service("transport", sys->transport->make_router());
  sys->bus.register_service("cloud", sys->cloud.make_router());

  core::OrchestratorConfig config;
  config.overbooking.warmup_observations = 4;
  sys->orchestrator = std::make_unique<core::Orchestrator>(
      &sys->simulator, &sys->ran, sys->transport.get(), &sys->cloud, sys->epc.get(),
      &sys->bus, &sys->registry, config);
  sys->orchestrator->set_attachment_points(ran_gateway, {{core_dc, core_gateway}});
  sys->orchestrator->start();

  // Admit `slices` small constant-demand slices (PLMN limit: 6 per
  // cell; MOCN forces slices > 6 to share PLMN space in reality — here
  // we cap at 6 concurrent and note the cap).
  const std::size_t admitted = std::min<std::size_t>(slices, ran::kMaxBroadcastPlmns);
  for (std::size_t s = 0; s < admitted; ++s) {
    core::SliceSpec spec = core::SliceSpec::from_profile(
        traffic::profile_for(traffic::Vertical::iot_metering), Duration::hours(10000.0));
    spec.expected_throughput = DataRate::mbps(4.0);
    (void)sys->orchestrator->submit(spec,
                                    std::make_unique<traffic::ConstantTraffic>(1.0));
  }
  sys->simulator.run_for(Duration::hours(4.0));  // activate + warm estimators
  return sys;
}

/// Percentiles of a sample set for the experiment tables. One scratch
/// copy, then telemetry::quantile_inplace (nth_element, no full sort)
/// per requested quantile — every bench reports through this instead of
/// rolling its own sort-and-index.
inline std::vector<double> percentiles(const std::vector<double>& values,
                                       std::initializer_list<double> qs) {
  std::vector<double> out;
  out.reserve(qs.size());
  if (values.empty()) {
    out.assign(qs.size(), 0.0);
    return out;
  }
  std::vector<double> scratch = values;
  for (const double q : qs) out.push_back(telemetry::quantile_inplace(scratch, q));
  return out;
}

}  // namespace slices::bench
