// Ablation A5 — MOCN intra-cell sharing policy. The testbed's eNBs can
// "reserve radio resources for each particular network"; what happens
// to the PRBs a slice reserved but is not using? `strict` leaves them
// idle (hard isolation), `pooled` lends them out (work conserving).
// Measures unserved traffic and utilization for a bursty multi-slice
// cell under both policies, across reservation pressure levels.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hpp"
#include "ran/cell.hpp"

namespace {

using namespace slices;
using namespace slices::bench;

struct SharingResult {
  double served_mb = 0.0;
  double unserved_mb = 0.0;
  double mean_prb_used = 0.0;
};

SharingResult run_cell(ran::SharingPolicy policy, int reserved_per_slice,
                       std::uint64_t seed) {
  ran::Cell cell(CellId{1}, "cell", ran::Bandwidth::mhz20, policy);
  constexpr int kSlices = 4;
  std::vector<std::unique_ptr<traffic::TrafficModel>> demand;
  Rng rng(seed);
  for (int s = 0; s < kSlices; ++s) {
    const PlmnId plmn{static_cast<std::uint64_t>(s + 1)};
    (void)cell.broadcast_plmn(plmn);
    (void)cell.set_reservation(plmn, PrbCount{reserved_per_slice});
    // Bursty on/off demand: high peak, low duty — the overbooking-era
    // load where idle reservations matter.
    demand.push_back(std::make_unique<traffic::OnOffTraffic>(1.0, 18.0, 0.25, 0.10,
                                                             rng.fork()));
  }

  SharingResult result;
  const int epochs = 96 * 7;
  double prb_sum = 0.0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    std::vector<std::pair<PlmnId, DataRate>> offered;
    for (int s = 0; s < kSlices; ++s) {
      offered.emplace_back(PlmnId{static_cast<std::uint64_t>(s + 1)},
                           DataRate::mbps(demand[static_cast<std::size_t>(s)]->sample(
                               SimTime::from_seconds(epoch * 900.0))));
    }
    const auto grants = cell.serve_epoch(offered);
    for (const ran::PlmnGrant& g : grants) {
      result.served_mb += g.served.as_mbps() * 900.0 / 8.0 / 1e3;
      result.unserved_mb += g.unserved.as_mbps() * 900.0 / 8.0 / 1e3;
      prb_sum += g.granted.value;
    }
  }
  result.mean_prb_used = prb_sum / epochs;
  return result;
}

void print_experiment() {
  std::printf("\nA5: MOCN sharing-policy ablation — 4 bursty slices on one 100-PRB cell,\n"
              "7 days; 'reserved' is the dedicated PRBs each slice holds\n");
  rule(96);
  std::printf("%-10s %-8s %14s %16s %16s\n", "reserved", "policy", "served (GB)",
              "unserved (GB)", "mean PRB used");
  rule(96);
  for (const int reserved : {10, 20, 25}) {
    for (const auto& [label, policy] :
         {std::pair{"strict", ran::SharingPolicy::strict},
          std::pair{"pooled", ran::SharingPolicy::pooled}}) {
      SharingResult sum;
      const int runs = 5;
      for (int seed = 1; seed <= runs; ++seed) {
        const SharingResult r = run_cell(policy, reserved, static_cast<std::uint64_t>(seed));
        sum.served_mb += r.served_mb;
        sum.unserved_mb += r.unserved_mb;
        sum.mean_prb_used += r.mean_prb_used;
      }
      std::printf("%-10d %-8s %14.2f %16.2f %16.1f\n", reserved, label,
                  sum.served_mb / runs / 1e3 * 8.0, sum.unserved_mb / runs / 1e3 * 8.0,
                  sum.mean_prb_used / runs);
    }
  }
  rule(96);
  std::printf("expected shape: with small reservations the common pool dominates and the\n"
              "policies coincide; as dedicated reservations grow, strict isolation strands\n"
              "idle PRBs and unserved traffic rises, while pooled sharing stays work-\n"
              "conserving — the intra-cell face of the paper's multiplexing argument.\n\n");
}

void BM_ScheduleEpochFourSlices(benchmark::State& state) {
  const auto policy = static_cast<ran::SharingPolicy>(state.range(0));
  std::vector<ran::PlmnLoad> loads;
  for (int s = 0; s < 4; ++s) {
    loads.push_back(ran::PlmnLoad{PlmnId{static_cast<std::uint64_t>(s + 1)}, PrbCount{20},
                                  DataRate::mbps(15.0), ran::Cqi{10}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ran::schedule_epoch(PrbCount{100}, loads, policy));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScheduleEpochFourSlices)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
