// Ablation A3 — transport path selection under wireless fading: CSPF
// (min-delay with capacity pruning) against min-hop routing, with and
// without the repair loop, on the Fig. 2 wireless transport. Measures
// delay-SLA violations, degradation epochs and reroutes for a
// latency-bound slice riding the mmWave uplink.

// BM_TransportEpochServe/<paths>/<threads>
//                        — one transport epoch over `paths` installed
//                          paths on an all-fiber chain, through the SoA
//                          serve kernel (route CSR + dense link columns,
//                          arena scratch; `threads`-wide pool, 1 =
//                          serial). Fiber keeps fading and the repair
//                          loop out of the measurement.
// BM_TransportEpochServeLegacy/<paths>
//                        — same epoch on the retained std::map reference
//                          path, for the speedup column.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "common.hpp"
#include "common/thread_pool.hpp"
#include "transport/controller.hpp"

namespace {

using namespace slices;
using namespace slices::bench;

struct AblationResult {
  std::uint64_t delay_violations = 0;
  std::uint64_t degraded_epochs = 0;
  std::uint64_t reroutes = 0;
  double mean_served_mbps = 0.0;
};

/// A transport-only scenario: one 300 Mb/s / 8 ms path from RAN gw to
/// the core gw, 7 days of epochs under fading.
AblationResult run(transport::PathObjective objective, std::uint64_t seed) {
  // Rebuild the Fig. 2 transport in isolation.
  transport::Topology topo;
  const NodeId ran_gw = topo.add_node("ran-gw", transport::NodeKind::enb_gateway);
  const NodeId sw = topo.add_node("pf5240", transport::NodeKind::openflow_switch);
  const NodeId core_gw = topo.add_node("core-gw", transport::NodeKind::core_gateway);
  topo.add_bidirectional(ran_gw, sw, transport::LinkTechnology::mmwave,
                         DataRate::mbps(1000.0), Duration::millis(1.0));
  topo.add_bidirectional(ran_gw, sw, transport::LinkTechnology::uwave,
                         DataRate::mbps(400.0), Duration::millis(2.5));
  topo.add_bidirectional(sw, core_gw, transport::LinkTechnology::fiber,
                         DataRate::mbps(10000.0), Duration::millis(4.0));
  // A direct but slower wired detour, so min-hop has something to prefer.
  topo.add_bidirectional(ran_gw, core_gw, transport::LinkTechnology::fiber,
                         DataRate::mbps(500.0), Duration::millis(7.5));

  transport::TransportController tc(std::move(topo), Rng(seed));
  const Result<PathId> path = tc.allocate_path(SliceId{1}, ran_gw, core_gw,
                                               DataRate::mbps(300.0), Duration::millis(8.0),
                                               objective);
  AblationResult result;
  if (!path.ok()) return result;

  const std::vector<std::pair<PathId, DataRate>> demands = {
      {path.value(), DataRate::mbps(280.0)}};
  double served_sum = 0.0;
  const int epochs = 96 * 7;
  for (int i = 0; i < epochs; ++i) {
    const auto reports = tc.serve_epoch(demands, SimTime::from_seconds(i * 900.0));
    for (const transport::PathServeReport& report : reports) {
      if (report.delay_violated) ++result.delay_violations;
      if (report.degraded) ++result.degraded_epochs;
      served_sum += report.served.as_mbps();
    }
  }
  result.reroutes = tc.reroutes();
  result.mean_served_mbps = served_sum / epochs;
  return result;
}

void print_experiment() {
  std::printf("\nA3: transport path-selection ablation under mmWave fading (7 days, 300 Mb/s\n"
              "latency-bound path, repair loop active)\n");
  rule(96);
  std::printf("%-12s %16s %16s %12s %16s\n", "objective", "delay viol", "degraded epochs",
              "reroutes", "mean served Mb/s");
  rule(96);
  for (const auto& [label, objective] :
       {std::pair{"min_delay", transport::PathObjective::min_delay},
        std::pair{"min_hops", transport::PathObjective::min_hops}}) {
    AblationResult sum;
    const int runs = 10;
    for (int seed = 1; seed <= runs; ++seed) {
      const AblationResult r = run(objective, static_cast<std::uint64_t>(seed) * 101);
      sum.delay_violations += r.delay_violations;
      sum.degraded_epochs += r.degraded_epochs;
      sum.reroutes += r.reroutes;
      sum.mean_served_mbps += r.mean_served_mbps;
    }
    std::printf("%-12s %16.1f %16.1f %12.1f %16.1f\n", label,
                static_cast<double>(sum.delay_violations) / runs,
                static_cast<double>(sum.degraded_epochs) / runs,
                static_cast<double>(sum.reroutes) / runs, sum.mean_served_mbps / runs);
  }
  rule(96);
  std::printf("expected shape: min_hops pins the flow to the direct 7.5 ms link, where any\n"
              "queueing blows the 8 ms budget (violations every epoch); min_delay rides the\n"
              "5 ms mmWave route, violates only around deep fades, and the repair loop\n"
              "reroutes those away (nonzero reroutes, fewer total violations).\n\n");
}

/// `n_paths` reservations over a 3-hop all-fiber chain, plus the demand
/// vector the epoch loop replays.
struct ServeSystem {
  std::unique_ptr<transport::TransportController> tc;
  std::vector<std::pair<PathId, DataRate>> demands;

  explicit ServeSystem(std::size_t n_paths) {
    transport::Topology topo;
    const NodeId gw = topo.add_node("gw", transport::NodeKind::enb_gateway);
    const NodeId s1 = topo.add_node("s1", transport::NodeKind::openflow_switch);
    const NodeId s2 = topo.add_node("s2", transport::NodeKind::openflow_switch);
    const NodeId core = topo.add_node("core", transport::NodeKind::core_gateway);
    const DataRate capacity = DataRate::mbps(2.0 * static_cast<double>(n_paths) + 100.0);
    topo.add_link(gw, s1, transport::LinkTechnology::fiber, capacity, Duration::millis(1.0));
    topo.add_link(s1, s2, transport::LinkTechnology::fiber, capacity, Duration::millis(1.0));
    topo.add_link(s2, core, transport::LinkTechnology::fiber, capacity, Duration::millis(1.0));
    tc = std::make_unique<transport::TransportController>(std::move(topo), Rng(9));
    demands.reserve(n_paths);
    for (std::size_t i = 0; i < n_paths; ++i) {
      const Result<PathId> path = tc->allocate_path(SliceId{i + 1}, gw, core,
                                                    DataRate::mbps(2.0), Duration::millis(20.0));
      if (!path.ok()) std::abort();
      demands.emplace_back(path.value(), DataRate::mbps(1.5));
    }
  }
};

void BM_TransportEpochServe(benchmark::State& state) {
  ServeSystem sys(static_cast<std::size_t>(state.range(0)));
  const auto threads = static_cast<std::size_t>(state.range(1));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
    sys.tc->set_thread_pool(pool.get());
  }
  std::vector<transport::PathServeReport> reports;
  int i = 0;
  for (auto _ : state) {
    sys.tc->serve_epoch_into(sys.demands, SimTime::from_seconds(++i * 900.0), reports);
    benchmark::DoNotOptimize(reports.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["paths"] = static_cast<double>(state.range(0));
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_TransportEpochServe)
    ->Args({1000, 1})
    ->Args({10000, 1})
    ->Args({100000, 1})
    ->Args({100000, 4})
    ->Args({100000, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_TransportEpochServeLegacy(benchmark::State& state) {
  ServeSystem sys(static_cast<std::size_t>(state.range(0)));
  sys.tc->set_legacy_epoch_path(true);
  std::vector<transport::PathServeReport> reports;
  int i = 0;
  for (auto _ : state) {
    sys.tc->serve_epoch_into(sys.demands, SimTime::from_seconds(++i * 900.0), reports);
    benchmark::DoNotOptimize(reports.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["paths"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_TransportEpochServeLegacy)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_ServeEpochWithFading(benchmark::State& state) {
  transport::Topology topo;
  const NodeId a = topo.add_node("a", transport::NodeKind::enb_gateway);
  const NodeId b = topo.add_node("b", transport::NodeKind::core_gateway);
  topo.add_bidirectional(a, b, transport::LinkTechnology::mmwave, DataRate::mbps(1000.0),
                         Duration::millis(1.0));
  topo.add_bidirectional(a, b, transport::LinkTechnology::fiber, DataRate::mbps(1000.0),
                         Duration::millis(3.0));
  transport::TransportController tc(std::move(topo), Rng(5));
  const Result<PathId> path =
      tc.allocate_path(SliceId{1}, a, b, DataRate::mbps(400.0), Duration::millis(10.0));
  const std::vector<std::pair<PathId, DataRate>> demands = {
      {path.value(), DataRate::mbps(350.0)}};
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tc.serve_epoch(demands, SimTime::from_seconds(++i * 900.0)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeEpochWithFading)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
