// Experiment S1 — scalability beyond the demo testbed: how the
// orchestration loop costs grow with RAN size and concurrent slices on
// operator-scale aggregation fabrics (the library-quality question the
// 3-page demo could not answer). Wall-clock per monitoring epoch and
// per admission, swept over #cells and #slices.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>

#include "common.hpp"
#include "common/thread_pool.hpp"
#include "transport/generators.hpp"

namespace {

using namespace slices;
using namespace slices::bench;

/// A scaled deployment: `cells` eNBs behind an aggregation tree, one
/// big core DC, `slices` active slices with constant demand.
struct ScaledSystem {
  sim::Simulator simulator;
  telemetry::MonitorRegistry registry;
  std::unique_ptr<ThreadPool> pool;
  net::RestBus bus;
  ran::RanController ran{&registry};
  cloud::CloudController cloud{&registry};
  std::unique_ptr<transport::TransportController> transport;
  std::unique_ptr<epc::EpcManager> epc;
  std::unique_ptr<core::Orchestrator> orchestrator;
};

std::unique_ptr<ScaledSystem> make_scaled(std::size_t cells, std::size_t slices,
                                          std::size_t epoch_threads = 0) {
  auto sys = std::make_unique<ScaledSystem>();
  if (epoch_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    epoch_threads = hw == 0 ? 1 : hw;
  }
  if (epoch_threads > 1) {
    sys->pool = std::make_unique<ThreadPool>(epoch_threads);
    sys->ran.set_thread_pool(sys->pool.get());
  }

  for (std::size_t c = 0; c < cells; ++c) {
    sys->ran.add_cell(ran::Cell(CellId{c + 1}, "cell-" + std::to_string(c),
                                ran::Bandwidth::mhz20, ran::SharingPolicy::pooled));
  }

  transport::GeneratedTopology tree =
      transport::make_aggregation_tree(/*leaves=*/std::max<std::size_t>(cells / 4, 1),
                                       /*leaves_per_switch=*/4);
  const NodeId ran_gateway = tree.ran_gateways.front();
  const NodeId core_gateway = tree.core_gateway;
  sys->transport = std::make_unique<transport::TransportController>(
      std::move(tree.topology), Rng(1), &sys->registry);
  if (sys->pool != nullptr) sys->transport->set_thread_pool(sys->pool.get());

  const DatacenterId core_dc =
      sys->cloud.add_datacenter("core", cloud::DatacenterKind::core, 4.0);
  for (std::size_t h = 0; h < std::max<std::size_t>(slices / 8, 2); ++h) {
    sys->cloud.add_host(core_dc, "host-" + std::to_string(h),
                        ComputeCapacity{256.0, 1048576.0, 10000.0});
  }
  sys->cloud.finalize();
  sys->epc = std::make_unique<epc::EpcManager>(&sys->cloud);

  sys->bus.register_service("ran", sys->ran.make_router());
  sys->bus.register_service("transport", sys->transport->make_router());
  sys->bus.register_service("cloud", sys->cloud.make_router());

  core::OrchestratorConfig config;
  config.overbooking.warmup_observations = 4;
  sys->orchestrator = std::make_unique<core::Orchestrator>(
      &sys->simulator, &sys->ran, sys->transport.get(), &sys->cloud, sys->epc.get(),
      &sys->bus, &sys->registry, config);
  sys->orchestrator->set_attachment_points(ran_gateway, {{core_dc, core_gateway}});
  sys->orchestrator->start();

  // Admit `slices` small constant-demand slices (PLMN limit: 6 per
  // cell; MOCN forces slices > 6 to share PLMN space in reality — here
  // we cap at 6 concurrent and note the cap).
  const std::size_t admitted = std::min<std::size_t>(slices, ran::kMaxBroadcastPlmns);
  for (std::size_t s = 0; s < admitted; ++s) {
    core::SliceSpec spec = core::SliceSpec::from_profile(
        traffic::profile_for(traffic::Vertical::iot_metering), Duration::hours(10000.0));
    spec.expected_throughput = DataRate::mbps(4.0);
    (void)sys->orchestrator->submit(spec,
                                    std::make_unique<traffic::ConstantTraffic>(1.0));
  }
  sys->simulator.run_for(Duration::hours(4.0));  // activate + warm estimators
  return sys;
}

void print_experiment() {
  std::printf("\nS1: orchestration-loop scalability (aggregation-tree transport, one epoch)\n");
  std::printf("see the google-benchmark table below: BM_EpochAtScale/<cells>/<slices>\n");
  std::printf("expected shape: epoch cost grows roughly linearly in cells + live slices;\n"
              "admission cost is dominated by the PRB planning over cells.\n\n");
}

void BM_EpochAtScale(benchmark::State& state) {
  auto sys = make_scaled(static_cast<std::size_t>(state.range(0)),
                         static_cast<std::size_t>(state.range(1)));
  SimTime now = sys->simulator.now();
  for (auto _ : state) {
    now = now + Duration::minutes(15.0);
    sys->orchestrator->run_epoch(now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EpochAtScale)
    ->Args({2, 3})
    ->Args({8, 6})
    ->Args({32, 6})
    ->Args({128, 6})
    ->Unit(benchmark::kMicrosecond);

void BM_AdmissionAtScale(benchmark::State& state) {
  auto sys = make_scaled(static_cast<std::size_t>(state.range(0)), 2);
  core::SliceSpec spec = core::SliceSpec::from_profile(
      traffic::profile_for(traffic::Vertical::iot_metering), Duration::hours(1.0));
  spec.expected_throughput = DataRate::mbps(2.0);
  for (auto _ : state) {
    const RequestId request = sys->orchestrator->submit(spec);
    state.PauseTiming();
    const core::SliceRecord* record = sys->orchestrator->find_by_request(request);
    if (record != nullptr && record->is_live()) {
      (void)sys->orchestrator->terminate(record->id);
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdmissionAtScale)->Arg(2)->Arg(32)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_CspfAtScale(benchmark::State& state) {
  transport::GeneratedTopology tree = transport::make_aggregation_tree(
      static_cast<std::size_t>(state.range(0)), 4);
  const transport::ResidualFn residual = [](const transport::Link& link) {
    return link.nominal_capacity;
  };
  std::size_t leaf = 0;
  for (auto _ : state) {
    leaf = (leaf + 1) % tree.ran_gateways.size();
    benchmark::DoNotOptimize(transport::find_route(tree.topology,
                                                   tree.ran_gateways[leaf],
                                                   tree.core_gateway, DataRate::mbps(10.0),
                                                   residual));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CspfAtScale)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
