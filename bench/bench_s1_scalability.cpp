// Experiment S1 — scalability beyond the demo testbed: how the
// orchestration loop costs grow with RAN size and concurrent slices on
// operator-scale aggregation fabrics (the library-quality question the
// 3-page demo could not answer). Wall-clock per monitoring epoch and
// per admission, swept over #cells and #slices.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hpp"
#include "transport/generators.hpp"

namespace {

using namespace slices;
using namespace slices::bench;

void print_experiment() {
  std::printf("\nS1: orchestration-loop scalability (aggregation-tree transport, one epoch)\n");
  std::printf("see the google-benchmark table below: BM_EpochAtScale/<cells>/<slices>\n");
  std::printf("expected shape: epoch cost grows roughly linearly in cells + live slices;\n"
              "admission cost is dominated by the PRB planning over cells.\n\n");
}

void BM_EpochAtScale(benchmark::State& state) {
  auto sys = make_scaled(static_cast<std::size_t>(state.range(0)),
                         static_cast<std::size_t>(state.range(1)));
  SimTime now = sys->simulator.now();
  for (auto _ : state) {
    now = now + Duration::minutes(15.0);
    sys->orchestrator->run_epoch(now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EpochAtScale)
    ->Args({2, 3})
    ->Args({8, 6})
    ->Args({32, 6})
    ->Args({128, 6})
    ->Unit(benchmark::kMicrosecond);

void BM_AdmissionAtScale(benchmark::State& state) {
  auto sys = make_scaled(static_cast<std::size_t>(state.range(0)), 2);
  core::SliceSpec spec = core::SliceSpec::from_profile(
      traffic::profile_for(traffic::Vertical::iot_metering), Duration::hours(1.0));
  spec.expected_throughput = DataRate::mbps(2.0);
  for (auto _ : state) {
    const RequestId request = sys->orchestrator->submit(spec);
    state.PauseTiming();
    const core::SliceRecord* record = sys->orchestrator->find_by_request(request);
    if (record != nullptr && record->is_live()) {
      (void)sys->orchestrator->terminate(record->id);
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdmissionAtScale)->Arg(2)->Arg(32)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_CspfAtScale(benchmark::State& state) {
  transport::GeneratedTopology tree = transport::make_aggregation_tree(
      static_cast<std::size_t>(state.range(0)), 4);
  const transport::ResidualFn residual = [](const transport::Link& link) {
    return link.nominal_capacity;
  };
  std::size_t leaf = 0;
  for (auto _ : state) {
    leaf = (leaf + 1) % tree.ran_gateways.size();
    benchmark::DoNotOptimize(transport::find_route(tree.topology,
                                                   tree.ran_gateways[leaf],
                                                   tree.core_gateway, DataRate::mbps(10.0),
                                                   residual));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CspfAtScale)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
