// Experiment S1 — scalability beyond the demo testbed: how the
// orchestration loop costs grow with RAN size and concurrent slices on
// operator-scale aggregation fabrics (the library-quality question the
// 3-page demo could not answer). Wall-clock per monitoring epoch and
// per admission, swept over #cells and #slices.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "federation/broker.hpp"
#include "federation/edge.hpp"
#include "federation/fabric.hpp"
#include "transport/generators.hpp"

namespace {

using namespace slices;
using namespace slices::bench;

void print_experiment() {
  std::printf("\nS1: orchestration-loop scalability (aggregation-tree transport, one epoch)\n");
  std::printf("see the google-benchmark table below: BM_EpochAtScale/<cells>/<slices>\n");
  std::printf("expected shape: epoch cost grows roughly linearly in cells + live slices;\n"
              "admission cost is dominated by the PRB planning over cells.\n\n");
  std::printf("S1-F: federated city scale-out — BM_FederatedEpochAtScale/<regions>/<cells per\n"
              "region> drives one broker epoch across every region's edge orchestrator over\n"
              "the RestBus (set SLICES_BENCH_FEDERATED_TABLE=1 for the per-region table).\n\n");
}

void BM_EpochAtScale(benchmark::State& state) {
  auto sys = make_scaled(static_cast<std::size_t>(state.range(0)),
                         static_cast<std::size_t>(state.range(1)));
  SimTime now = sys->simulator.now();
  for (auto _ : state) {
    now = now + Duration::minutes(15.0);
    sys->orchestrator->run_epoch(now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EpochAtScale)
    ->Args({2, 3})
    ->Args({8, 6})
    ->Args({32, 6})
    ->Args({128, 6})
    ->Unit(benchmark::kMicrosecond);

void BM_AdmissionAtScale(benchmark::State& state) {
  auto sys = make_scaled(static_cast<std::size_t>(state.range(0)), 2);
  core::SliceSpec spec = core::SliceSpec::from_profile(
      traffic::profile_for(traffic::Vertical::iot_metering), Duration::hours(1.0));
  spec.expected_throughput = DataRate::mbps(2.0);
  for (auto _ : state) {
    const RequestId request = sys->orchestrator->submit(spec);
    state.PauseTiming();
    const core::SliceRecord* record = sys->orchestrator->find_by_request(request);
    if (record != nullptr && record->is_live()) {
      (void)sys->orchestrator->terminate(record->id);
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdmissionAtScale)->Arg(2)->Arg(32)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_CspfAtScale(benchmark::State& state) {
  transport::GeneratedTopology tree = transport::make_aggregation_tree(
      static_cast<std::size_t>(state.range(0)), 4);
  const transport::ResidualFn residual = [](const transport::Link& link) {
    return link.nominal_capacity;
  };
  std::size_t leaf = 0;
  for (auto _ : state) {
    leaf = (leaf + 1) % tree.ran_gateways.size();
    benchmark::DoNotOptimize(transport::find_route(tree.topology,
                                                   tree.ran_gateways[leaf],
                                                   tree.core_gateway, DataRate::mbps(10.0),
                                                   residual));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CspfAtScale)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// S1-F: the federated city. One broker + one EdgeNode per region on a
// shared in-process RestBus; slices admitted through the broker's
// placement path, then UEs attached round-robin over every live
// slice's PLMN so the epoch cost includes the per-region data plane.

constexpr std::size_t kUesPerCell = 1024;   // 1024 cells -> ~1M UEs
constexpr std::int64_t kEpochUs = 900'000'000;  // 15 simulated minutes

struct FederatedCity {
  scenario::Scenario scenario;
  federation::MetroFabric fabric;
  net::RestBus bus;
  std::vector<std::unique_ptr<federation::EdgeNode>> edges;
  std::unique_ptr<federation::Broker> broker;
  std::int64_t now_us = 0;
  std::size_t ues_attached = 0;
};

/// Build, populate and warm a city: `regions` edge orchestrators of
/// `cells_per_region` cells each, up to 6 broker-placed slices per
/// region (the MOCN broadcast cap), kUesPerCell UEs per cell.
std::unique_ptr<FederatedCity> make_city(std::size_t regions, std::size_t cells_per_region) {
  auto city = std::make_unique<FederatedCity>();
  city->scenario.name = "bench_s1_federated";
  city->scenario.topology = "metro";
  city->scenario.seed = 42;
  city->scenario.federation.regions = regions;
  city->scenario.federation.cells_per_region = cells_per_region;
  city->scenario.federation.edge_dcs_per_region = 1;
  city->scenario.federation.hosts_per_dc = 4;
  city->scenario.orchestrator.overbooking.warmup_observations = 4;

  Result<federation::MetroFabric> fabric =
      federation::make_metro_fabric(city->scenario.federation, city->scenario.seed);
  city->fabric = std::move(fabric.value());
  for (const federation::RegionPlan& plan : city->fabric.regions) {
    city->edges.push_back(
        std::make_unique<federation::EdgeNode>(plan, city->scenario, /*epoch_threads=*/1));
    city->bus.register_service(federation::Broker::service_name(plan.name),
                               city->edges.back()->make_router());
  }
  city->broker = std::make_unique<federation::Broker>(&city->bus, city->fabric);

  // Fill the city through the broker: 6 requests homed in each region.
  // Placement chases headroom, so admissions spread across regions up
  // to each RAN's broadcast-PLMN cap.
  std::size_t seq = 0;
  for (std::size_t round = 0; round < ran::kMaxBroadcastPlmns; ++round) {
    for (const federation::RegionPlan& plan : city->fabric.regions) {
      json::Value body;
      body["at_hours"] = 0.0;
      body["vertical"] = "iot_metering";
      body["duration_hours"] = 8000.0;  // DSL cap: one year
      body["throughput_mbps"] = 4.0;
      body["workload_seed"] = std::to_string(++seq);
      (void)city->broker->submit(body, plan.name, city->now_us);
    }
  }

  // Activate + warm the estimators, then load the data plane.
  city->now_us = 4 * 3'600'000'000ll;
  city->broker->advance_all(city->now_us);
  Rng cqi_rng(7);
  for (auto& edge : city->edges) {
    std::vector<PlmnId> plmns;
    for (const core::SliceRecord* record : edge->orchestrator().all_slices()) {
      if (record->is_live()) plmns.push_back(record->embedding.plmn);
    }
    if (plmns.empty()) continue;
    const std::size_t target = edge->plan().cells * kUesPerCell;
    for (std::size_t u = 0; u < target; ++u) {
      const auto cqi = ran::Cqi{static_cast<int>(cqi_rng.uniform_int(3, 15))};
      if (edge->ran().attach_ue(plmns[u % plmns.size()], cqi).ok()) ++city->ues_attached;
    }
  }
  return city;
}

void BM_FederatedEpochAtScale(benchmark::State& state) {
  auto city = make_city(static_cast<std::size_t>(state.range(0)),
                        static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    city->now_us += kEpochUs;
    city->broker->advance_all(city->now_us);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["cells"] = static_cast<double>(city->fabric.total_cells());
  state.counters["ues"] = static_cast<double>(city->ues_attached);
}
BENCHMARK(BM_FederatedEpochAtScale)
    ->Args({4, 64})
    ->Args({4, 256})
    ->Args({8, 128})
    ->Unit(benchmark::kMillisecond);

/// The per-region breakdown the google-benchmark table cannot show:
/// each region's share of one city epoch, timed around the same
/// RestBus call the broker makes. Heavy (attaches ~2.4M UEs across the
/// three configs), so it only runs when SLICES_BENCH_FEDERATED_TABLE
/// is set — CI's federation-smoke job captures it as an artifact.
void print_federated_table() {
  if (std::getenv("SLICES_BENCH_FEDERATED_TABLE") == nullptr) return;
  std::printf("S1-F: federated epoch cost by region (%d epochs after warm-up)\n", 8);
  rule();
  std::printf("%8s %10s %6s %9s %9s %13s %15s %14s\n", "regions", "cells/rgn", "cells",
              "UEs", "admitted", "epoch p50 ms", "region mean ms", "region max ms");
  rule();
  const std::size_t shapes[][2] = {{4, 64}, {4, 256}, {8, 128}};
  for (const auto& shape : shapes) {
    auto city = make_city(shape[0], shape[1]);
    std::vector<double> epoch_ms;
    // Per-edge epoch-serve samples, keyed by the broker's region order
    // (stable across epochs) — the CI artifact reports each edge's
    // median so a lopsided region stands out instead of averaging away.
    const std::vector<std::string> regions = city->broker->regions();
    std::vector<std::vector<double>> edge_ms(regions.size());
    double region_sum_ms = 0.0;
    double region_max_ms = 0.0;
    std::size_t region_samples = 0;
    for (int epoch = 0; epoch < 8; ++epoch) {
      city->now_us += kEpochUs;
      json::Value tick;
      tick["t_us"] = static_cast<double>(city->now_us);
      double total_ms = 0.0;
      for (std::size_t r = 0; r < regions.size(); ++r) {
        const auto start = std::chrono::steady_clock::now();
        (void)city->bus.call_json(federation::Broker::service_name(regions[r]),
                                  net::Method::post, "/federation/advance", tick);
        const std::chrono::duration<double, std::milli> took =
            std::chrono::steady_clock::now() - start;
        total_ms += took.count();
        edge_ms[r].push_back(took.count());
        region_sum_ms += took.count();
        region_max_ms = std::max(region_max_ms, took.count());
        ++region_samples;
      }
      epoch_ms.push_back(total_ms);
    }
    const std::vector<double> p = percentiles(epoch_ms, {0.5});
    const auto& counters = city->broker->counters();
    std::printf("%8zu %10zu %6zu %9zu %9llu %13.2f %15.3f %14.3f\n", shape[0], shape[1],
                city->fabric.total_cells(), city->ues_attached,
                static_cast<unsigned long long>(counters.placed_local + counters.placed_remote),
                p[0], region_sum_ms / static_cast<double>(std::max<std::size_t>(region_samples, 1)),
                region_max_ms);
    for (std::size_t r = 0; r < regions.size(); ++r) {
      const std::vector<double> edge_p = percentiles(edge_ms[r], {0.5});
      std::printf("%8s   edge %-12s epoch-serve p50 %8.3f ms\n", "", regions[r].c_str(),
                  edge_p[0]);
    }
  }
  rule();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  print_federated_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
