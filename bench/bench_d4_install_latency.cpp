// Experiment D4 — §3 of the demo: the slice installation workflow. "If
// successfully accepted, network slices are installed into our system:
// [PRBs] are reserved through the RAN controller, dedicated paths are
// selected ... OpenEPC instances are deployed ... After few seconds,
// user devices associated with the PLMN-id of the new slices are allowed
// to connect."
//
// Measures the per-stage installation timeline over 100 slice installs
// and the wall-clock cost of the embedding transaction itself.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "common.hpp"
#include "telemetry/stats.hpp"

namespace {

using namespace slices;
using namespace slices::bench;

void print_experiment() {
  std::printf("\nD4: slice installation latency by stage (100 installs, Fig. 2 testbed)\n");

  std::vector<double> plmn, ran, path, epc, total;
  core::RequestGenerator generator({}, Rng(4242));
  auto tb = core::make_testbed(1);
  for (int i = 0; i < 100; ++i) {
    // Install, measure, tear down — like an operator cycling demo slices.
    core::GeneratedRequest request = generator.next_request();
    const RequestId id = tb->orchestrator->submit(request.spec, std::move(request.workload));
    const core::SliceRecord* record = tb->orchestrator->find_by_request(id);
    if (record->state != core::SliceState::installing) continue;
    const core::InstallTimeline timeline = tb->orchestrator->last_install_timeline();
    plmn.push_back(timeline.plmn_install.as_seconds());
    ran.push_back(timeline.ran_reservation.as_seconds());
    path.push_back(timeline.path_setup.as_seconds());
    epc.push_back(timeline.epc_deploy.as_seconds());
    total.push_back(timeline.total().as_seconds());
    (void)tb->orchestrator->terminate(record->id);
  }

  rule(72);
  std::printf("%-22s %10s %10s %10s\n", "stage", "mean s", "p50 s", "p95 s");
  rule(72);
  const auto row = [](const char* label, const std::vector<double>& values) {
    telemetry::RunningStats stats;
    for (const double v : values) stats.add(v);
    const std::vector<double> ps = percentiles(values, {0.5, 0.95});
    std::printf("%-22s %10.2f %10.2f %10.2f\n", label, stats.mean(), ps[0], ps[1]);
  };
  row("PLMN install (RAN)", plmn);
  row("PRB reservation", ran);
  row("transport path setup", path);
  row("EPC stack deploy", epc);
  row("TOTAL (to UE attach)", total);
  rule(72);
  std::printf("installs measured: %zu/100\n", total.size());
  std::printf("expected shape: total of a few seconds, dominated by the EPC (OpenEPC-style\n"
              "stack of 4 VNFs) deployment — the \"after few seconds\" of the demo.\n\n");
}

/// Wall-clock cost of the full multi-domain embedding transaction.
void BM_SubmitAndEmbed(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto tb = core::make_testbed(11);
    core::SliceSpec spec = core::SliceSpec::from_profile(
        traffic::profile_for(traffic::Vertical::embb_video), Duration::hours(4.0));
    state.ResumeTiming();
    benchmark::DoNotOptimize(tb->orchestrator->submit(spec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubmitAndEmbed)->Unit(benchmark::kMicrosecond);

/// The rollback path: a doomed request must clean up all domains.
void BM_SubmitRejectedRollback(benchmark::State& state) {
  core::OrchestratorConfig orch;
  orch.overbooking.enabled = false;
  auto tb = core::make_testbed(12, orch);
  core::SliceSpec spec = core::SliceSpec::from_profile(
      traffic::profile_for(traffic::Vertical::embb_video), Duration::hours(4.0));
  spec.expected_throughput = DataRate::mbps(100000.0);  // cannot fit
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb->orchestrator->submit(spec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubmitRejectedRollback)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
