// Experiment F1 — Fig. 1 of the paper: the end-to-end orchestrator's
// closed loop (real-time monitoring -> data analysis and feature
// extraction -> resource allocation optimization -> automatic network
// reconfiguration). Runs the loop over two simulated days with three
// live slices and reports what each cycle did: telemetry pulled over
// REST, estimators updated, reconfiguration actions issued; then times
// one loop cycle.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hpp"

namespace {

using namespace slices;
using namespace slices::bench;

void print_experiment() {
  std::printf("\nF1: orchestration closed loop (3 slices, 48 h, 15-min cycles)\n");

  core::OrchestratorConfig orch;
  orch.overbooking.warmup_observations = 8;
  auto tb = core::make_testbed(31, orch);
  for (const traffic::Vertical v :
       {traffic::Vertical::embb_video, traffic::Vertical::automotive,
        traffic::Vertical::ehealth}) {
    (void)tb->orchestrator->submit(
        core::SliceSpec::from_profile(traffic::profile_for(v), Duration::hours(72.0)),
        traffic::make_traffic(v, Rng(17)));
    tb->simulator.run_for(Duration::hours(1.0));
  }

  const std::uint64_t events_before = tb->simulator.executed_events();
  tb->simulator.run_for(Duration::hours(48.0));
  const std::uint64_t cycles = 48 * 4;

  const core::OrchestratorSummary summary = tb->orchestrator->summary();
  std::uint64_t rest_calls = 0;
  std::uint64_t rest_bytes = 0;
  for (const auto& [name, stats] : tb->bus.stats()) {
    rest_calls += stats.requests;
    rest_bytes += stats.bytes_tx + stats.bytes_rx;
  }

  rule(72);
  std::printf("%-44s %20llu\n", "monitoring cycles executed",
              static_cast<unsigned long long>(cycles));
  std::printf("%-44s %20llu\n", "simulator events processed",
              static_cast<unsigned long long>(tb->simulator.executed_events() - events_before));
  std::printf("%-44s %20llu\n", "REST monitoring/config calls",
              static_cast<unsigned long long>(rest_calls));
  std::printf("%-44s %20llu\n", "REST bytes on the wire",
              static_cast<unsigned long long>(rest_bytes));
  std::printf("%-44s %20llu\n", "reconfiguration actions (reservation moves)",
              static_cast<unsigned long long>(summary.reconfigurations));
  std::printf("%-44s %20.3f\n", "closing multiplexing gain", summary.multiplexing_gain);
  std::printf("%-44s %20llu\n", "SLA violation epochs",
              static_cast<unsigned long long>(summary.violation_epochs));
  rule(72);
  std::printf("expected shape: every cycle polls all three domain controllers over REST;\n"
              "reconfigurations track the diurnal demand (dozens over 48 h); the loop\n"
              "keeps the gain above 1 while violations stay rare.\n\n");
}

void BM_FullLoopCycle(benchmark::State& state) {
  core::OrchestratorConfig orch;
  orch.overbooking.warmup_observations = 8;
  auto tb = core::make_testbed(32, orch);
  for (const traffic::Vertical v :
       {traffic::Vertical::embb_video, traffic::Vertical::automotive,
        traffic::Vertical::ehealth}) {
    (void)tb->orchestrator->submit(
        core::SliceSpec::from_profile(traffic::profile_for(v), Duration::hours(300.0)),
        traffic::make_traffic(v, Rng(19)));
  }
  tb->simulator.run_for(Duration::hours(6.0));

  SimTime now = tb->simulator.now();
  for (auto _ : state) {
    now = now + Duration::minutes(15.0);
    tb->orchestrator->run_epoch(now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullLoopCycle)->Unit(benchmark::kMicrosecond);

void BM_MetricsPollOverRest(benchmark::State& state) {
  auto tb = core::make_testbed(33);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tb->bus.get_json("ran", "/metrics"));
    benchmark::DoNotOptimize(tb->bus.get_json("transport", "/metrics"));
    benchmark::DoNotOptimize(tb->bus.get_json("cloud", "/metrics"));
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_MetricsPollOverRest)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
