// Experiment SC1 — cost of the scenario engine (docs/scenarios.md):
// scenario parse/serialize round-trip cost, full scored end-to-end runs
// (hours of sim time per wall second, with and without event
// injection), and the recording overhead of a replay journal.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace slices;

constexpr const char* kBaseline = R"({
  "name": "bench_baseline",
  "seed": 17,
  "duration_hours": 12,
  "orchestrator": {"monitoring_period_minutes": 5, "overbooking": {"enabled": true}},
  "workload": {"arrivals_per_hour": 2.0, "min_duration_hours": 1, "max_duration_hours": 6}
})";

constexpr const char* kEventful = R"({
  "name": "bench_eventful",
  "seed": 17,
  "duration_hours": 12,
  "orchestrator": {"monitoring_period_minutes": 5, "overbooking": {"enabled": true}},
  "workload": {"arrivals_per_hour": 2.0, "min_duration_hours": 1, "max_duration_hours": 6},
  "phases": [
    {"name": "rush", "start_hours": 4, "end_hours": 8, "arrivals_per_hour": 5.0,
     "demand_scale": 1.4}
  ],
  "events": [
    {"kind": "link_flap", "at_hours": 3, "link": "mmwave", "count": 3,
     "period_minutes": 30, "down_minutes": 10},
    {"kind": "controller_restart", "at_hours": 6, "duration_minutes": 10},
    {"kind": "churn_storm", "at_hours": 9, "duration_minutes": 30,
     "ues_per_hour": 200, "mean_holding_minutes": 3}
  ]
})";

scenario::Scenario parse_or_die(const char* text) {
  Result<scenario::Scenario> parsed = scenario::parse_scenario(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "scenario parse failed: %s\n", parsed.error().message.c_str());
    std::abort();
  }
  return std::move(parsed.value());
}

void BM_ScenarioParseRoundTrip(benchmark::State& state) {
  const std::string canonical = scenario::serialize_scenario(parse_or_die(kEventful));
  for (auto _ : state) {
    Result<scenario::Scenario> parsed = scenario::parse_scenario(canonical);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * canonical.size()));
}
BENCHMARK(BM_ScenarioParseRoundTrip);

void run_scenario(benchmark::State& state, const char* text, scenario::RunOptions options) {
  double sim_hours = 0.0;
  for (auto _ : state) {
    scenario::ScenarioRunner runner(parse_or_die(text), options);
    Result<scenario::Scorecard> card = runner.run();
    if (!card.ok()) std::abort();
    sim_hours += card.value().duration_hours;
    benchmark::DoNotOptimize(card);
  }
  state.counters["sim_hours/s"] =
      benchmark::Counter(sim_hours, benchmark::Counter::kIsRate);
}

void BM_ScenarioRunBaseline(benchmark::State& state) {
  run_scenario(state, kBaseline, {});
}
BENCHMARK(BM_ScenarioRunBaseline)->Unit(benchmark::kMillisecond);

void BM_ScenarioRunEventful(benchmark::State& state) {
  run_scenario(state, kEventful, {});
}
BENCHMARK(BM_ScenarioRunEventful)->Unit(benchmark::kMillisecond);

void BM_ScenarioRunRecorded(benchmark::State& state) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "slices_bench_sc1.journal").string();
  scenario::RunOptions options;
  options.record_path = path;
  run_scenario(state, kEventful, options);
  std::remove(path.c_str());
}
BENCHMARK(BM_ScenarioRunRecorded)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
