// Ablation A4 — resilience to hard failures: a transport link is taken
// down for a maintenance window while a latency-bound slice runs.
// Compares a metro ring (an alternate direction exists, the repair loop
// reroutes) against a single-homed tree (no alternative: the outage is
// absorbed as unserved traffic). Also injects an eNB outage on the
// Fig. 2 testbed and reports the SLA damage.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hpp"
#include "transport/generators.hpp"

namespace {

using namespace slices;
using namespace slices::bench;

struct OutageResult {
  double unserved_mb = 0.0;     ///< traffic lost over the run
  std::uint64_t reroutes = 0;
  int epochs_to_restore = -1;   ///< epochs from outage to full service
};

OutageResult run_outage(bool ring) {
  transport::GeneratedTopology g =
      ring ? transport::make_metro_ring(6)
           : transport::make_aggregation_tree(6, 3);
  const NodeId src = g.ran_gateways.front();
  const NodeId dst = g.core_gateway;
  transport::TransportController tc(std::move(g.topology), Rng(7));

  const Result<PathId> path =
      tc.allocate_path(SliceId{1}, src, dst, DataRate::mbps(200.0), Duration::millis(30.0));
  OutageResult result;
  if (!path.ok()) return result;
  const LinkId cut = tc.find_path(path.value())->route.links[1];  // a fabric link

  const std::vector<std::pair<PathId, DataRate>> demands = {
      {path.value(), DataRate::mbps(180.0)}};
  const int outage_start = 20;
  const int outage_end = 60;  // 40 epochs of maintenance
  for (int epoch = 0; epoch < 96; ++epoch) {
    if (epoch == outage_start) (void)tc.set_link_up(cut, false);
    if (epoch == outage_end) (void)tc.set_link_up(cut, true);
    const auto reports = tc.serve_epoch(demands, SimTime::from_seconds(epoch * 900.0));
    for (const transport::PathServeReport& report : reports) {
      const double unserved = 180.0 - report.served.as_mbps();
      result.unserved_mb += unserved * 900.0 / 8.0 / 1e3;  // Mb/s x s -> MB... keep Mb
      if (epoch >= outage_start && result.epochs_to_restore < 0 && unserved < 1e-6) {
        result.epochs_to_restore = epoch - outage_start;
      }
    }
  }
  result.reroutes = tc.reroutes();
  return result;
}

void print_experiment() {
  std::printf("\nA4: hard-failure resilience — 40-epoch link outage under a 180 Mb/s\n"
              "latency-bound flow (repair loop active)\n");
  rule(84);
  std::printf("%-18s %16s %12s %20s\n", "fabric", "unserved (MB)", "reroutes",
              "epochs to restore");
  rule(84);
  for (const bool ring : {true, false}) {
    const OutageResult r = run_outage(ring);
    std::printf("%-18s %16.1f %12llu %20d\n", ring ? "metro ring" : "single-homed tree",
                r.unserved_mb, static_cast<unsigned long long>(r.reroutes),
                r.epochs_to_restore);
  }
  rule(84);

  // eNB outage on the Fig. 2 testbed: violations while one cell is dark.
  core::OrchestratorConfig config;
  config.overbooking.warmup_observations = 4;
  auto tb = core::make_testbed(404, config);
  core::SliceSpec spec = core::SliceSpec::from_profile(
      traffic::profile_for(traffic::Vertical::embb_video), Duration::hours(48.0));
  spec.expected_throughput = DataRate::mbps(50.0);
  (void)tb->orchestrator->submit(spec, std::make_unique<traffic::ConstantTraffic>(40.0));
  tb->simulator.run_for(Duration::hours(6.0));
  const std::uint64_t before = tb->orchestrator->summary().violation_epochs;
  (void)tb->ran.set_cell_active(tb->cell_a, false);
  tb->simulator.run_for(Duration::hours(6.0));
  const std::uint64_t during = tb->orchestrator->summary().violation_epochs - before;
  (void)tb->ran.set_cell_active(tb->cell_a, true);
  tb->simulator.run_for(Duration::hours(6.0));
  const std::uint64_t after =
      tb->orchestrator->summary().violation_epochs - before - during;

  std::printf("\neNB outage on Fig. 2 (50 Mb/s slice, 40 Mb/s offered):\n"
              "  violation epochs before/during/after 6 h windows: %llu / %llu / %llu\n",
              static_cast<unsigned long long>(before), static_cast<unsigned long long>(during),
              static_cast<unsigned long long>(after));
  std::printf("expected shape: the ring restores service within ~1 epoch via reroute and\n"
              "loses almost nothing; the single-homed tree bleeds for the entire outage.\n"
              "The eNB outage shows up as violation epochs only while the cell is dark.\n\n");
}

void BM_ServeEpochDuringOutage(benchmark::State& state) {
  transport::GeneratedTopology g = transport::make_metro_ring(8);
  const NodeId src = g.ran_gateways.front();
  const NodeId dst = g.core_gateway;
  transport::TransportController tc(std::move(g.topology), Rng(9));
  const Result<PathId> path =
      tc.allocate_path(SliceId{1}, src, dst, DataRate::mbps(100.0), Duration::millis(50.0));
  const std::vector<std::pair<PathId, DataRate>> demands = {
      {path.value(), DataRate::mbps(90.0)}};
  int epoch = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tc.serve_epoch(demands, SimTime::from_seconds(++epoch * 900.0)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeEpochDuringOutage)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
