// Experiment S2 — UE-churn scalability of the RAN data plane: how fast
// can the controller absorb attach/detach churn, and how does the
// per-epoch serving walk cost scale with the attached population? This
// is the workload the dense slot-indexed containers (common/
// dense_map.hpp) target: city-scale deployments see hundreds of
// thousands of active UEs with Poisson session churn on top, and the
// epoch loop must still close in control-loop time.
//
// BM_UeChurn/<ues>       — steady-state Poisson churn at `ues` active
//                          UEs: each batch detaches Poisson(k) random
//                          UEs and attaches the same number, keeping
//                          the population stationary. items/s = UE
//                          attach+detach pairs per second.
// BM_EpochServe/<ues>/<threads>
//                        — one epoch of CQI wander + demand serving
//                          over `ues` attached UEs across 128 cells,
//                          through the SoA epoch kernel (arena scratch,
//                          per-cell task pipeline on a `threads`-wide
//                          pool; 1 = serial). The 1M row is the
//                          ROADMAP's million-UE control-loop target.
// BM_EpochServeLegacy/<ues>
//                        — same epoch on the pre-SoA reference path
//                          (per-cell vectors, std::map reduction), for
//                          the kernel-vs-legacy speedup column.
// BM_Wander/<ues>        — the CQI wander alone, through the batched
//                          branchless kernel (one RNG word per four
//                          rows, a 16-bit lane each; mask-and-clamp
//                          apply over the SoA byte columns; AVX2 when
//                          built with SLICES_ENABLE_SIMD).
// BM_WanderLegacy/<ues>  — the retained per-row bernoulli walk, for the
//                          wander speedup column.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "ran/cell.hpp"
#include "ran/controller.hpp"

namespace {

using namespace slices;
using namespace slices::bench;

constexpr std::size_t kCells = 128;
constexpr std::size_t kPlmns = 6;  // broadcast-list capacity per cell

/// 128-cell RAN with all six PLMNs installed and allocated, and `ues`
/// UEs attached round-robin over the PLMNs.
struct ChurnSystem {
  ran::RanController ran;
  std::vector<PlmnId> plmns;
  std::vector<UeId> live;  ///< attached UEs, for uniform random eviction
  Rng rng{20205};

  explicit ChurnSystem(std::size_t ues) {
    for (std::size_t c = 0; c < kCells; ++c) {
      ran.add_cell(ran::Cell(CellId{c + 1}, "cell-" + std::to_string(c),
                             ran::Bandwidth::mhz20, ran::SharingPolicy::pooled));
    }
    for (std::size_t p = 0; p < kPlmns; ++p) {
      const PlmnId plmn{p + 1};
      if (!ran.install_plmn(plmn)) std::abort();
      if (!ran.set_allocation(plmn, DataRate::mbps(200.0))) std::abort();
      plmns.push_back(plmn);
    }
    live.reserve(ues);
    for (std::size_t i = 0; i < ues; ++i) attach_one();
  }

  void attach_one() {
    const PlmnId plmn = plmns[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kPlmns) - 1))];
    const ran::Cqi cqi{static_cast<int>(rng.uniform_int(3, 15))};
    Result<UeId> ue = ran.attach_ue(plmn, cqi);
    if (!ue) std::abort();
    live.push_back(ue.value());
  }

  void detach_one() {
    const std::size_t pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
    const UeId ue = live[pick];
    live[pick] = live.back();
    live.pop_back();
    if (!ran.detach_ue(ue)) std::abort();
  }
};

void print_experiment() {
  std::printf("\nS2: UE-churn scalability — dense slot-indexed UE/flow data plane\n");
  std::printf("(128 cells, 6 PLMNs; population held stationary under Poisson churn)\n");
  std::printf("see the google-benchmark tables: BM_UeChurn/<ues>, BM_EpochServe/<ues>/<threads>\n");
  std::printf("expected shape: churn cost is O(1) per attach/detach pair and flat in the\n"
              "population; epoch serving grows linearly in attached UEs (the CQI walk)\n"
              "and shards across the pool per cell. BM_EpochServeLegacy is the pre-SoA\n"
              "reference path for the speedup column.\n\n");
}

void BM_UeChurn(benchmark::State& state) {
  ChurnSystem sys(static_cast<std::size_t>(state.range(0)));
  // Mean churn batch: ~32 session ends (and as many starts) per epoch
  // tick — a Poisson process thinned to the benchmark's batch cadence.
  constexpr double kMeanBatch = 32.0;
  std::int64_t pairs = 0;
  for (auto _ : state) {
    std::int64_t batch = sys.rng.poisson(kMeanBatch);
    if (batch < 1) batch = 1;
    for (std::int64_t i = 0; i < batch; ++i) {
      sys.detach_one();
      sys.attach_one();
    }
    pairs += batch;
  }
  state.SetItemsProcessed(pairs);
  state.counters["active_ues"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_UeChurn)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(500000)
    ->Unit(benchmark::kMicrosecond);

void BM_EpochServe(benchmark::State& state) {
  ChurnSystem sys(static_cast<std::size_t>(state.range(0)));
  const auto threads = static_cast<std::size_t>(state.range(1));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
    sys.ran.set_thread_pool(pool.get());
  }
  std::vector<std::pair<PlmnId, DataRate>> demands;
  for (const PlmnId plmn : sys.plmns) demands.emplace_back(plmn, DataRate::mbps(150.0));
  std::vector<ran::RanServeReport> reports;
  SimTime now = SimTime::origin();
  for (auto _ : state) {
    now = now + Duration::minutes(15.0);
    sys.ran.wander_cqis(sys.rng);
    sys.ran.serve_epoch_into(demands, now, reports);
    benchmark::DoNotOptimize(reports.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["active_ues"] = static_cast<double>(state.range(0));
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_EpochServe)
    ->Args({10000, 1})
    ->Args({100000, 1})
    ->Args({500000, 1})
    ->Args({1000000, 1})
    ->Args({1000000, 4})
    ->Args({1000000, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_EpochServeLegacy(benchmark::State& state) {
  ChurnSystem sys(static_cast<std::size_t>(state.range(0)));
  sys.ran.set_legacy_epoch_path(true);
  std::vector<std::pair<PlmnId, DataRate>> demands;
  for (const PlmnId plmn : sys.plmns) demands.emplace_back(plmn, DataRate::mbps(150.0));
  std::vector<ran::RanServeReport> reports;
  SimTime now = SimTime::origin();
  for (auto _ : state) {
    now = now + Duration::minutes(15.0);
    sys.ran.wander_cqis(sys.rng);
    sys.ran.serve_epoch_into(demands, now, reports);
    benchmark::DoNotOptimize(reports.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["active_ues"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_EpochServeLegacy)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

void BM_Wander(benchmark::State& state) {
  ChurnSystem sys(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    sys.ran.wander_cqis(sys.rng);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["active_ues"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Wander)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

void BM_WanderLegacy(benchmark::State& state) {
  ChurnSystem sys(static_cast<std::size_t>(state.range(0)));
  sys.ran.set_legacy_wander_path(true);
  for (auto _ : state) {
    sys.ran.wander_cqis(sys.rng);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["active_ues"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_WanderLegacy)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
