// Experiment R1 — durability costs of the state store (docs/persistence.md):
// write-ahead journal append throughput (records/s and bytes/s, with and
// without per-append fsync) and cold-recovery time as a function of
// journal length (1k / 10k / 100k events), i.e. how long the
// orchestrator's substrate state takes to come back after a crash.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>

#include "store/store.hpp"

namespace {

using namespace slices;
namespace fs = std::filesystem;

fs::path bench_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("slices_bench_r1_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A representative journal payload: the shape (and roughly the size) of
/// the orchestrator's "admit" operation.
json::Object sample_event(std::uint64_t n) {
  json::Value op;
  op["op"] = "admit";
  op["t_us"] = static_cast<double>(n) * 1e6;
  op["slice"] = static_cast<double>(n % 977 + 1);
  op["reserved_bps"] = 25.0e6 + static_cast<double>(n % 64) * 1e5;
  op["activates_at_us"] = static_cast<double>(n) * 1e6 + 4.2e6;
  op["next_plmn"] = static_cast<double>(n % 977 + 2);
  json::Value embedding;
  embedding["plmn"] = static_cast<double>(n % 977 + 1);
  embedding["datacenter"] = 1.0;
  embedding["edge_stack"] = false;
  json::Array paths;
  paths.emplace_back(static_cast<double>(2 * n + 1));
  paths.emplace_back(static_cast<double>(2 * n + 2));
  embedding["paths"] = json::Value(std::move(paths));
  op["embedding"] = std::move(embedding);
  return std::move(op.as_object());
}

/// Build (once per length) a journal of `records` synthesized events and
/// return its directory.
const fs::path& prepared_journal(std::uint64_t records) {
  static std::map<std::uint64_t, fs::path> cache;
  auto it = cache.find(records);
  if (it != cache.end()) return it->second;
  const fs::path dir = bench_dir("cold_" + std::to_string(records));
  store::StateStore writer(store::StoreConfig{.directory = dir.string()});
  if (!writer.open().ok()) std::abort();
  for (std::uint64_t n = 0; n < records; ++n) {
    if (!writer.append(sample_event(n)).ok()) std::abort();
  }
  return cache.emplace(records, dir).first->second;
}

void print_experiment() {
  std::printf("\nR1: durable state store — journal append throughput and cold recovery\n");
  std::printf("see the google-benchmark table below (run with --benchmark_format=json\n"
              "for machine-readable output):\n");
  std::printf("  BM_JournalAppend          buffered appends (bytes/s = journal bandwidth)\n");
  std::printf("  BM_JournalAppendFsync     with per-append fsync (the durability knob)\n");
  std::printf("  BM_ColdRecovery/<events>  StateStore::open() over a 1k/10k/100k journal\n");
  std::printf("expected shape: appends are sequential-write bound; recovery is linear\n"
              "in journal length, which is what snapshots + compaction bound.\n\n");
}

void append_loop(benchmark::State& state, bool fsync_on_append) {
  const fs::path dir = bench_dir(fsync_on_append ? "append_fsync" : "append");
  store::StateStore store(
      store::StoreConfig{.directory = dir.string(), .fsync_on_append = fsync_on_append});
  if (!store.open().ok()) std::abort();
  std::uint64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.append(sample_event(n++)));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(store.journal_bytes()));
  fs::remove_all(dir);
}

void BM_JournalAppend(benchmark::State& state) { append_loop(state, false); }
BENCHMARK(BM_JournalAppend)->Unit(benchmark::kMicrosecond);

void BM_JournalAppendFsync(benchmark::State& state) { append_loop(state, true); }
BENCHMARK(BM_JournalAppendFsync)->Unit(benchmark::kMicrosecond);

void BM_ColdRecovery(benchmark::State& state) {
  const fs::path& dir = prepared_journal(static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    store::StateStore store(store::StoreConfig{.directory = dir.string()});
    if (!store.open().ok()) std::abort();
    benchmark::DoNotOptimize(store.recovered().events.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ColdRecovery)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
