// Allocation accounting for the epoch kernels: after a warm-up epoch
// has grown a controller's arena and scratch vectors to their
// high-water marks, the steady-state serve loop — RAN wander_cqis +
// serve_epoch_into, and transport serve_epoch_into — must perform ZERO
// heap allocations, at any pool size. This is the hook the ISSUE's
// acceptance criterion names: the global operator new/delete overrides
// below count every allocation on every thread, so a single malloc
// sneaking back into a hot path fails the test instead of quietly
// costing a syscall per epoch at 1M UEs / 100k paths.
//
// The controllers are built WITHOUT a telemetry registry: series append
// may grow telemetry buffers, which is monitored-state growth, not
// serve-loop scratch, and is outside the zero-allocation contract.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "ran/cell.hpp"
#include "ran/controller.hpp"
#include "transport/controller.hpp"
#include "transport/topology.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};
std::atomic<bool> g_counting{false};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace slices::ran {
namespace {

/// RAII window during which global allocations are counted.
class AllocationCounter {
 public:
  AllocationCounter() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~AllocationCounter() { g_counting.store(false, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t count() const {
    return g_allocations.load(std::memory_order_relaxed);
  }
};

struct Fixture {
  std::unique_ptr<ThreadPool> pool;
  RanController ran;  // no registry: telemetry growth is out of scope
  std::vector<PlmnId> plmns;
  std::vector<std::pair<PlmnId, DataRate>> demands;
  std::vector<RanServeReport> reports;
  Rng wander_rng{99};

  explicit Fixture(std::size_t threads, std::size_t n_ues) {
    constexpr std::size_t kCells = 16;
    for (std::size_t i = 0; i < kCells; ++i) {
      ran.add_cell(Cell(CellId{i + 1}, "cell-" + std::to_string(i), Bandwidth::mhz20,
                        SharingPolicy::pooled));
    }
    for (std::size_t p = 0; p < 4; ++p) {
      const PlmnId plmn{100 + p};
      EXPECT_TRUE(ran.install_plmn(plmn).ok());
      EXPECT_TRUE(ran.set_allocation(plmn, DataRate::mbps(30.0)).ok());
      plmns.push_back(plmn);
      demands.emplace_back(plmn, DataRate::mbps(25.0 + 10.0 * static_cast<double>(p)));
    }
    Rng rng(5);
    for (std::size_t i = 0; i < n_ues; ++i) {
      EXPECT_TRUE(ran.attach_ue(plmns[i % plmns.size()],
                                Cqi{static_cast<int>(rng.uniform_int(1, 15))})
                      .ok());
    }
    if (threads > 1) {
      pool = std::make_unique<ThreadPool>(threads);
      ran.set_thread_pool(pool.get());
    }
  }

  void run_epoch(int epoch) {
    ran.wander_cqis(wander_rng, 0.3);
    ran.serve_epoch_into(demands, SimTime::from_seconds(epoch * 1.0), reports);
    EXPECT_EQ(reports.size(), demands.size());
  }
};

void expect_zero_alloc_epochs(std::size_t threads) {
  Fixture fx(threads, /*n_ues=*/20'000);
  // Warm-up: grows the arena to its high-water mark, sizes the wander
  // seed vector and the report vector's capacity.
  fx.run_epoch(0);
  fx.run_epoch(1);

  AllocationCounter counter;
  for (int epoch = 2; epoch < 8; ++epoch) fx.run_epoch(epoch);
  EXPECT_EQ(counter.count(), 0u)
      << "steady-state epochs allocated with threads=" << threads;
}

TEST(EpochAllocations, SteadyStateServeLoopIsAllocationFreeSerial) {
  expect_zero_alloc_epochs(1);
}

TEST(EpochAllocations, SteadyStateServeLoopIsAllocationFreePooled) {
  expect_zero_alloc_epochs(4);
}

TEST(EpochAllocations, ArenaRewindsInsteadOfFreeing) {
  Fixture fx(1, /*n_ues=*/1'000);
  fx.run_epoch(0);
  Arena probe;
  probe.reserve(1024);
  AllocationCounter counter;
  for (int i = 0; i < 100; ++i) {
    probe.reset();
    const auto a = probe.alloc_array<std::uint64_t>(64);
    const auto b = probe.alloc_array<std::uint8_t>(128);
    EXPECT_EQ(a.size(), 64u);
    EXPECT_EQ(b.size(), 128u);
  }
  EXPECT_EQ(counter.count(), 0u);
  EXPECT_LE(probe.high_water(), probe.capacity());
}

// The legacy path is expected to allocate — this guards against the
// counter itself going blind (a counter that never fires would make the
// zero-allocation tests above vacuous).
TEST(EpochAllocations, CounterSeesLegacyPathAllocations) {
  Fixture fx(1, /*n_ues=*/1'000);
  fx.ran.set_legacy_epoch_path(true);
  fx.run_epoch(0);
  AllocationCounter counter;
  fx.run_epoch(1);
  EXPECT_GT(counter.count(), 0u);
}

// Transport serve kernel: same contract as the RAN one. Fiber-only
// substrate so no fading process runs — steady state must not even hit
// the repair path (degradation is impossible without fading or admin
// down events).
struct TransportFixture {
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<transport::TransportController> tc;  // no registry
  std::vector<std::pair<PathId, DataRate>> demands;
  std::vector<transport::PathServeReport> reports;

  explicit TransportFixture(std::size_t threads, std::size_t n_paths) {
    transport::Topology topology;
    const NodeId src = topology.add_node("src", transport::NodeKind::enb_gateway);
    const NodeId mid = topology.add_node("mid", transport::NodeKind::openflow_switch);
    const NodeId dst = topology.add_node("dst", transport::NodeKind::core_gateway);
    topology.add_link(src, mid, transport::LinkTechnology::fiber,
                      DataRate::mbps(1e9), Duration::millis(1.0));
    topology.add_link(mid, dst, transport::LinkTechnology::fiber,
                      DataRate::mbps(1e9), Duration::millis(1.0));
    tc = std::make_unique<transport::TransportController>(std::move(topology), Rng(17));
    for (std::size_t i = 0; i < n_paths; ++i) {
      const Result<PathId> path = tc->allocate_path(SliceId{i + 1}, src, dst,
                                                    DataRate::mbps(2.0), Duration::millis(50.0));
      EXPECT_TRUE(path.ok());
      demands.emplace_back(path.value(), DataRate::mbps(1.5));
    }
    if (threads > 1) {
      pool = std::make_unique<ThreadPool>(threads);
      tc->set_thread_pool(pool.get());
    }
  }

  void run_epoch(int epoch) {
    tc->serve_epoch_into(demands, SimTime::from_seconds(epoch * 1.0), reports);
    EXPECT_EQ(reports.size(), demands.size());
  }
};

void expect_zero_alloc_transport_epochs(std::size_t threads) {
  TransportFixture fx(threads, /*n_paths=*/512);
  fx.run_epoch(0);
  fx.run_epoch(1);

  AllocationCounter counter;
  for (int epoch = 2; epoch < 8; ++epoch) fx.run_epoch(epoch);
  EXPECT_EQ(counter.count(), 0u)
      << "steady-state transport epochs allocated with threads=" << threads;
}

TEST(EpochAllocations, TransportServeLoopIsAllocationFreeSerial) {
  expect_zero_alloc_transport_epochs(1);
}

TEST(EpochAllocations, TransportServeLoopIsAllocationFreePooled) {
  expect_zero_alloc_transport_epochs(4);
}

// Vacuity guard for the transport kernel: the retained legacy path
// rebuilds its std::map scale and outcome vectors every epoch, so the
// counter must see it allocate.
TEST(EpochAllocations, CounterSeesLegacyTransportPathAllocations) {
  TransportFixture fx(1, /*n_paths=*/64);
  fx.tc->set_legacy_epoch_path(true);
  fx.run_epoch(0);
  AllocationCounter counter;
  fx.run_epoch(1);
  EXPECT_GT(counter.count(), 0u);
}

}  // namespace
}  // namespace slices::ran
