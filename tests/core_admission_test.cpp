// Unit + property tests for admission-control policies, including a
// brute-force optimality check of the knapsack policy on random
// instances.

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "core/admission.hpp"

namespace slices::core {
namespace {

CandidateRequest candidate(std::uint64_t id, double mbps, double total_price) {
  CandidateRequest c;
  c.id = RequestId{id};
  c.spec.expected_throughput = DataRate::mbps(mbps);
  c.spec.duration = Duration::hours(1.0);
  c.spec.price_per_hour = Money::units(total_price);  // 1 h => gross == price
  return c;
}

double admitted_value(const std::vector<RequestId>& admitted,
                      const std::vector<CandidateRequest>& candidates) {
  double value = 0.0;
  for (const RequestId id : admitted) {
    for (const CandidateRequest& c : candidates) {
      if (c.id == id) value += c.spec.gross_revenue().as_units();
    }
  }
  return value;
}

double admitted_weight(const std::vector<RequestId>& admitted,
                       const std::vector<CandidateRequest>& candidates) {
  double weight = 0.0;
  for (const RequestId id : admitted) {
    for (const CandidateRequest& c : candidates) {
      if (c.id == id) weight += c.spec.expected_throughput.as_mbps();
    }
  }
  return weight;
}

TEST(FcfsPolicy, AdmitsInArrivalOrder) {
  const std::vector<CandidateRequest> candidates = {
      candidate(1, 30.0, 10.0), candidate(2, 30.0, 100.0), candidate(3, 30.0, 200.0)};
  const FcfsPolicy policy;
  const auto admitted = policy.select(candidates, DataRate::mbps(60.0));
  // FCFS takes the first two regardless of their low value.
  EXPECT_EQ(admitted, (std::vector<RequestId>{RequestId{1}, RequestId{2}}));
}

TEST(FcfsPolicy, SkipsTooLargeButKeepsGoing) {
  const std::vector<CandidateRequest> candidates = {
      candidate(1, 50.0, 10.0), candidate(2, 80.0, 10.0), candidate(3, 10.0, 10.0)};
  const FcfsPolicy policy;
  const auto admitted = policy.select(candidates, DataRate::mbps(60.0));
  EXPECT_EQ(admitted, (std::vector<RequestId>{RequestId{1}, RequestId{3}}));
}

TEST(GreedyRevenuePolicy, PrefersValueDensity) {
  const std::vector<CandidateRequest> candidates = {
      candidate(1, 50.0, 50.0),   // density 1
      candidate(2, 10.0, 40.0),   // density 4
      candidate(3, 20.0, 40.0)};  // density 2
  const GreedyRevenuePolicy policy;
  const auto admitted = policy.select(candidates, DataRate::mbps(30.0));
  EXPECT_EQ(admitted, (std::vector<RequestId>{RequestId{2}, RequestId{3}}));
}

TEST(KnapsackRevenuePolicy, BeatsGreedyOnClassicTrap) {
  // Greedy-by-density takes the small dense item and wastes capacity;
  // the optimum is the two larger items.
  const std::vector<CandidateRequest> candidates = {
      candidate(1, 6.0, 60.0),    // density 10
      candidate(2, 5.0, 45.0),    // density 9
      candidate(3, 5.0, 45.0)};   // density 9
  const KnapsackRevenuePolicy knapsack;
  const GreedyRevenuePolicy greedy;
  const DataRate capacity = DataRate::mbps(10.0);
  EXPECT_DOUBLE_EQ(admitted_value(knapsack.select(candidates, capacity), candidates), 90.0);
  EXPECT_DOUBLE_EQ(admitted_value(greedy.select(candidates, capacity), candidates), 60.0);
}

TEST(KnapsackRevenuePolicy, ZeroCapacityAdmitsNothing) {
  const std::vector<CandidateRequest> candidates = {candidate(1, 1.0, 5.0)};
  EXPECT_TRUE(KnapsackRevenuePolicy{}.select(candidates, DataRate::zero()).empty());
  EXPECT_TRUE(KnapsackRevenuePolicy{}.select({}, DataRate::mbps(100.0)).empty());
}

TEST(MakePolicy, FactoryByName) {
  EXPECT_NE(make_policy("fcfs"), nullptr);
  EXPECT_NE(make_policy("greedy_revenue"), nullptr);
  EXPECT_NE(make_policy("knapsack_revenue"), nullptr);
  EXPECT_EQ(make_policy("nonsense"), nullptr);
  EXPECT_EQ(make_policy("fcfs")->name(), "fcfs");
}

// --- property sweeps over random instances -------------------------------------

struct PolicyCase {
  const char* label;
  std::unique_ptr<AdmissionPolicy> (*make)();
};

class AllPolicies : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(AllPolicies, NeverExceedsCapacityAndNeverDuplicates) {
  Rng rng(1234);
  const std::unique_ptr<AdmissionPolicy> policy = GetParam().make();
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<CandidateRequest> candidates;
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    for (int i = 0; i < n; ++i) {
      candidates.push_back(candidate(static_cast<std::uint64_t>(i + 1),
                                     rng.uniform(1.0, 40.0), rng.uniform(1.0, 300.0)));
    }
    const double capacity_mbps = rng.uniform(0.0, 120.0);
    const auto admitted = policy->select(candidates, DataRate::mbps(capacity_mbps));

    EXPECT_LE(admitted_weight(admitted, candidates), capacity_mbps + 1e-9);
    std::set<std::uint64_t> unique;
    for (const RequestId id : admitted) EXPECT_TRUE(unique.insert(id.value()).second);
    for (const RequestId id : admitted) {
      EXPECT_LE(id.value(), static_cast<std::uint64_t>(n));
      EXPECT_GE(id.value(), 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, AllPolicies,
    ::testing::Values(
        PolicyCase{"fcfs",
                   [] { return std::unique_ptr<AdmissionPolicy>(new FcfsPolicy()); }},
        PolicyCase{"greedy",
                   [] { return std::unique_ptr<AdmissionPolicy>(new GreedyRevenuePolicy()); }},
        PolicyCase{"knapsack",
                   [] {
                     return std::unique_ptr<AdmissionPolicy>(new KnapsackRevenuePolicy());
                   }}),
    [](const ::testing::TestParamInfo<PolicyCase>& info) { return info.param.label; });

TEST(KnapsackRevenuePolicy, MatchesBruteForceOnRandomInstances) {
  Rng rng(99);
  const KnapsackRevenuePolicy policy;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<CandidateRequest> candidates;
    const int n = static_cast<int>(rng.uniform_int(1, 10));
    for (int i = 0; i < n; ++i) {
      // Integer weights so the Mb/s discretization is exact.
      candidates.push_back(candidate(static_cast<std::uint64_t>(i + 1),
                                     static_cast<double>(rng.uniform_int(1, 20)),
                                     static_cast<double>(rng.uniform_int(1, 100))));
    }
    const int capacity = static_cast<int>(rng.uniform_int(0, 60));

    // Brute force over all subsets.
    double best = 0.0;
    for (int mask = 0; mask < (1 << n); ++mask) {
      double weight = 0.0;
      double value = 0.0;
      for (int i = 0; i < n; ++i) {
        if ((mask >> i) & 1) {
          weight += candidates[static_cast<std::size_t>(i)].spec.expected_throughput.as_mbps();
          value += candidates[static_cast<std::size_t>(i)].spec.gross_revenue().as_units();
        }
      }
      if (weight <= capacity && value > best) best = value;
    }

    const auto admitted = policy.select(candidates, DataRate::mbps(capacity));
    EXPECT_NEAR(admitted_value(admitted, candidates), best, 1e-6)
        << "trial " << trial << " capacity " << capacity;
  }
}

TEST(PolicyOrdering, KnapsackAtLeastGreedyAtLeastFcfsOnValue) {
  Rng rng(777);
  const FcfsPolicy fcfs;
  const GreedyRevenuePolicy greedy;
  const KnapsackRevenuePolicy knapsack;
  int greedy_wins = 0;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<CandidateRequest> candidates;
    for (int i = 0; i < 10; ++i) {
      candidates.push_back(candidate(static_cast<std::uint64_t>(i + 1),
                                     static_cast<double>(rng.uniform_int(1, 30)),
                                     static_cast<double>(rng.uniform_int(1, 200))));
    }
    const DataRate capacity = DataRate::mbps(static_cast<double>(rng.uniform_int(10, 80)));
    const double v_fcfs = admitted_value(fcfs.select(candidates, capacity), candidates);
    const double v_greedy = admitted_value(greedy.select(candidates, capacity), candidates);
    const double v_knap = admitted_value(knapsack.select(candidates, capacity), candidates);
    EXPECT_GE(v_knap + 1e-9, v_greedy);
    if (v_greedy >= v_fcfs) ++greedy_wins;
  }
  // Greedy is not *always* above FCFS pointwise, but should dominate
  // overwhelmingly on random instances.
  EXPECT_GE(greedy_wins, 90);
}

}  // namespace
}  // namespace slices::core
