// Tests for the slice-template catalog and JSON config loading.

#include <gtest/gtest.h>

#include "core/catalog.hpp"
#include "core/testbed.hpp"
#include "core/config_io.hpp"

namespace slices::core {
namespace {

// --- SliceCatalog -----------------------------------------------------------

TEST(SliceCatalog, BuiltinCoversEveryVertical) {
  const SliceCatalog catalog = SliceCatalog::builtin();
  EXPECT_EQ(catalog.size(), traffic::all_verticals().size());
  for (const traffic::Vertical v : traffic::all_verticals()) {
    EXPECT_NE(catalog.find(traffic::to_string(v)), nullptr);
  }
}

TEST(SliceCatalog, InstantiateUsesProfileDefaults) {
  const SliceCatalog catalog = SliceCatalog::builtin();
  const Result<SliceSpec> spec = catalog.instantiate("automotive", Duration::hours(6.0));
  ASSERT_TRUE(spec.ok());
  const traffic::VerticalProfile profile = traffic::profile_for(traffic::Vertical::automotive);
  EXPECT_DOUBLE_EQ(spec.value().expected_throughput.as_mbps(),
                   profile.expected_throughput_mbps);
  EXPECT_EQ(spec.value().max_latency, profile.max_latency);
  EXPECT_EQ(spec.value().duration, Duration::hours(6.0));
  EXPECT_TRUE(spec.value().needs_edge);
}

TEST(SliceCatalog, UnknownTemplateIsNotFound) {
  const SliceCatalog catalog = SliceCatalog::builtin();
  EXPECT_EQ(catalog.instantiate("nope").error().code, Errc::not_found);
}

TEST(SliceCatalog, FromJsonAppliesOverrides) {
  const char* doc = R"({
    "templates": [
      {"name": "gold-video", "vertical": "embb_video",
       "duration_hours": 48, "throughput_mbps": 100,
       "price_per_hour": 80, "penalty_per_violation": 10,
       "max_latency_ms": 30, "needs_edge": true},
      {"name": "bronze-iot", "vertical": "iot_metering"}
    ]})";
  const Result<SliceCatalog> catalog = SliceCatalog::from_json(doc);
  ASSERT_TRUE(catalog.ok()) << catalog.error().message;
  EXPECT_EQ(catalog.value().size(), 2u);

  const Result<SliceSpec> gold = catalog.value().instantiate("gold-video");
  ASSERT_TRUE(gold.ok());
  EXPECT_DOUBLE_EQ(gold.value().expected_throughput.as_mbps(), 100.0);
  EXPECT_EQ(gold.value().duration, Duration::hours(48.0));
  EXPECT_EQ(gold.value().price_per_hour, Money::units(80.0));
  EXPECT_EQ(gold.value().max_latency, Duration::millis(30.0));
  EXPECT_TRUE(gold.value().needs_edge);

  // The minimal entry falls back to profile values entirely.
  const Result<SliceSpec> bronze = catalog.value().instantiate("bronze-iot");
  ASSERT_TRUE(bronze.ok());
  EXPECT_DOUBLE_EQ(
      bronze.value().expected_throughput.as_mbps(),
      traffic::profile_for(traffic::Vertical::iot_metering).expected_throughput_mbps);
}

TEST(SliceCatalog, FromJsonRejectsBadDocuments) {
  EXPECT_FALSE(SliceCatalog::from_json("not json").ok());
  EXPECT_FALSE(SliceCatalog::from_json("{}").ok());
  EXPECT_FALSE(SliceCatalog::from_json(
                   R"({"templates":[{"name":"x","vertical":"warp-drive"}]})")
                   .ok());
  EXPECT_FALSE(SliceCatalog::from_json(R"({"templates":[{"vertical":"ehealth"}]})").ok());
  EXPECT_FALSE(SliceCatalog::from_json(
                   R"({"templates":[{"name":"a","vertical":"ehealth"},
                                    {"name":"a","vertical":"ehealth"}]})")
                   .ok());
  EXPECT_FALSE(SliceCatalog::from_json(
                   R"({"templates":[{"name":"a","vertical":"ehealth","duration_hours":0}]})")
                   .ok());
}

TEST(SliceCatalog, NamesSortedAndPutReplaces) {
  SliceCatalog catalog;
  catalog.put(SliceTemplate{.name = "b"});
  catalog.put(SliceTemplate{.name = "a"});
  SliceTemplate replacement{.name = "b"};
  replacement.throughput_mbps = 5.0;
  catalog.put(replacement);
  EXPECT_EQ(catalog.names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_DOUBLE_EQ(catalog.find("b")->throughput_mbps, 5.0);
  EXPECT_EQ(catalog.size(), 2u);
}

// --- catalog over the orchestrator REST API ----------------------------------

TEST(SliceCatalog, TemplateSubmissionOverRest) {
  auto tb = make_testbed(81);
  SliceCatalog catalog = SliceCatalog::builtin();
  SliceTemplate gold;
  gold.name = "gold-iot";
  gold.vertical = traffic::Vertical::iot_metering;
  gold.default_duration = Duration::hours(8.0);
  gold.throughput_mbps = 3.0;
  catalog.put(gold);
  tb->orchestrator->set_catalog(std::move(catalog));

  // The catalog is browsable.
  const Result<json::Value> listed = tb->bus.get_json("orchestrator", "/templates");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed.value().find("templates")->as_array().size(),
            traffic::all_verticals().size() + 1);

  // Request by template name.
  json::Value request;
  request["template"] = "gold-iot";
  const Result<json::Value> created =
      tb->bus.call_json("orchestrator", net::Method::post, "/slices", request);
  ASSERT_TRUE(created.ok()) << created.error().message;
  const auto slice =
      SliceId{static_cast<std::uint64_t>(created.value().find("slice")->as_number())};
  const SliceRecord* record = tb->orchestrator->find_slice(slice);
  ASSERT_NE(record, nullptr);
  EXPECT_DOUBLE_EQ(record->spec.expected_throughput.as_mbps(), 3.0);
  EXPECT_EQ(record->spec.duration, Duration::hours(8.0));

  // Unknown template -> 404 semantics.
  json::Value bad;
  bad["template"] = "platinum";
  EXPECT_FALSE(tb->bus.call_json("orchestrator", net::Method::post, "/slices", bad).ok());
}

// --- config_from_json --------------------------------------------------------

TEST(ConfigIo, EmptyObjectGivesDefaults) {
  const Result<OrchestratorConfig> config = config_from_json("{}");
  ASSERT_TRUE(config.ok());
  const OrchestratorConfig defaults;
  EXPECT_EQ(config.value().monitoring_period, defaults.monitoring_period);
  EXPECT_EQ(config.value().admission_policy, defaults.admission_policy);
  EXPECT_EQ(config.value().overbooking.enabled, defaults.overbooking.enabled);
}

TEST(ConfigIo, FullDocumentRoundTrips) {
  const char* doc = R"({
    "monitoring_period_minutes": 5,
    "admission_policy": "greedy_revenue",
    "admission_window_hours": 2,
    "sla_tolerance": 0.1,
    "edge_breakout_fraction": 0.5,
    "overbooking": {
      "enabled": true, "risk_quantile": 0.9, "horizon": 8,
      "floor_fraction": 0.2, "headroom": 1.1,
      "warmup_observations": 16, "season_length": 288,
      "estimator": "holt_winters"
    }})";
  const Result<OrchestratorConfig> config = config_from_json(doc);
  ASSERT_TRUE(config.ok()) << config.error().message;
  EXPECT_EQ(config.value().monitoring_period, Duration::minutes(5.0));
  EXPECT_EQ(config.value().admission_policy, "greedy_revenue");
  EXPECT_EQ(config.value().admission_window, Duration::hours(2.0));
  EXPECT_DOUBLE_EQ(config.value().sla_tolerance, 0.1);
  EXPECT_DOUBLE_EQ(config.value().edge_breakout_fraction, 0.5);
  EXPECT_DOUBLE_EQ(config.value().overbooking.risk_quantile, 0.9);
  EXPECT_EQ(config.value().overbooking.horizon, 8u);
  EXPECT_EQ(config.value().overbooking.season_length, 288u);
  EXPECT_EQ(config.value().overbooking.estimator, EstimatorKind::holt_winters);
}

class ConfigIoRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(ConfigIoRejects, BadDocuments) {
  const Result<OrchestratorConfig> config = config_from_json(GetParam());
  ASSERT_FALSE(config.ok()) << "accepted: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Bad, ConfigIoRejects,
    ::testing::Values(
        "[]",                                                  // not an object
        "{bad json",                                           // malformed
        R"({"typo_key": 1})",                                  // unknown key
        R"({"monitoring_period_minutes": 0})",                 // non-positive
        R"({"monitoring_period_minutes": -5})",
        R"({"admission_policy": "coin-flip"})",                // unknown policy
        R"({"sla_tolerance": 1.5})",                           // out of domain
        R"({"edge_breakout_fraction": 2.0})",
        R"({"overbooking": {"risk_quantile": 1.5}})",
        R"({"overbooking": {"horizon": 0}})",
        R"({"overbooking": {"estimator": "crystal-ball"}})",
        R"({"overbooking": {"typo": true}})",
        R"({"overbooking": {"season_length": 1}})"));

}  // namespace
}  // namespace slices::core
