// Cross-module integration tests: multi-slice scenarios on the full
// Fig. 2 testbed with system-wide invariants checked every epoch, plus
// determinism of whole runs.

#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "dashboard/dashboard.hpp"

namespace slices::core {
namespace {

std::unique_ptr<Testbed> busy_testbed(std::uint64_t seed, OrchestratorConfig config = {}) {
  auto tb = make_testbed(seed, config);
  Rng workload_seeds(seed * 31 + 7);
  int i = 0;
  for (const traffic::Vertical v :
       {traffic::Vertical::embb_video, traffic::Vertical::automotive,
        traffic::Vertical::ehealth, traffic::Vertical::iot_metering}) {
    SliceSpec spec = SliceSpec::from_profile(traffic::profile_for(v),
                                             Duration::hours(40.0 + 4.0 * i));
    (void)tb->orchestrator->submit(spec, traffic::make_traffic(v, workload_seeds.fork()));
    // Stagger arrivals (as in the live demo) so the broker has history
    // to overbook against when the next request lands.
    tb->simulator.run_for(Duration::hours(4.0));
    ++i;
  }
  return tb;
}

/// Invariants that must hold at every instant of any run.
void check_invariants(const Testbed& tb) {
  // RAN: reservations never exceed cell capacity; every allocation's
  // PLMN is installed.
  for (const CellId cell_id : {tb.cell_a, tb.cell_b}) {
    const ran::Cell* cell = tb.ran.find_cell(cell_id);
    ASSERT_NE(cell, nullptr);
    EXPECT_LE(cell->reserved_prbs().value, cell->total_prbs().value);
    EXPECT_GE(cell->reserved_prbs().value, 0);
    EXPECT_LE(cell->broadcast_list().size(), ran::kMaxBroadcastPlmns);
  }

  // Transport: per-link reservations never exceed nominal capacity, and
  // every live slice's flow rules trace a connected forwarding chain.
  for (const transport::Link& link : tb.transport->topology().links()) {
    EXPECT_LE(tb.transport->reserved_on(link.id).as_mbps(),
              link.nominal_capacity.as_mbps() + 1e-6);
  }

  // Cloud: host usage within schedulable bounds.
  for (const cloud::Datacenter* dc : tb.cloud.datacenters()) {
    for (const cloud::Host& host : dc->hosts()) {
      EXPECT_TRUE(host.used.non_negative());
      EXPECT_TRUE(host.used.fits_within(dc->schedulable(host)));
    }
  }

  // Slices: state/bookkeeping consistency.
  for (const SliceRecord* record : tb.orchestrator->all_slices()) {
    if (record->state == SliceState::active) {
      EXPECT_LE(record->reserved, record->spec.expected_throughput);
      EXPECT_TRUE(tb.ran.plmn_installed(record->embedding.plmn));
      EXPECT_NE(tb.epc->find(record->id), nullptr);
      // Transport reservation mirrors the slice's current reservation.
      ASSERT_FALSE(record->embedding.paths.empty());
      const transport::PathReservation* path =
          tb.transport->find_path(record->embedding.paths.front());
      ASSERT_NE(path, nullptr);
      EXPECT_NEAR(path->reserved.as_mbps(), record->reserved.as_mbps(), 1e-6);
    }
    if (record->state == SliceState::expired || record->state == SliceState::terminated ||
        record->state == SliceState::rejected) {
      EXPECT_EQ(tb.epc->find(record->id), nullptr);
      EXPECT_TRUE(tb.transport->flow_table().rules_for(record->id).empty());
    }
  }
}

TEST(Integration, InvariantsHoldThroughFortyEightHours) {
  auto tb = busy_testbed(1001);
  for (int hour = 0; hour < 48; ++hour) {
    tb->simulator.run_for(Duration::hours(1.0));
    check_invariants(*tb);
  }
  // By now some slices expired, the rest served a long time. At least
  // three of the four staggered requests fit thanks to overbooking (the
  // fourth lands while the eMBB diurnal is rising, when the broker
  // rightly refuses to reclaim); 92 Mb/s of contracts on a ~69 Mb/s RAN.
  const OrchestratorSummary summary = tb->orchestrator->summary();
  EXPECT_GE(summary.admitted_total, 3u);
  EXPECT_GT(summary.earned, Money::zero());
}

TEST(Integration, WholeRunIsDeterministic) {
  const auto run = [](std::uint64_t seed) {
    auto tb = busy_testbed(seed);
    tb->simulator.run_for(Duration::hours(40.0));
    const OrchestratorSummary summary = tb->orchestrator->summary();
    dashboard::Dashboard dash(tb.get());
    return std::pair{json::serialize(dash.snapshot()), summary.net.as_cents()};
  };
  const auto [snap_a, net_a] = run(77);
  const auto [snap_b, net_b] = run(77);
  EXPECT_EQ(snap_a, snap_b);
  EXPECT_EQ(net_a, net_b);
  const auto [snap_c, net_c] = run(78);
  EXPECT_NE(snap_a, snap_c);  // different seed, different trajectory
}

TEST(Integration, ChurnDoesNotLeakResources) {
  OrchestratorConfig config;
  auto tb = make_testbed(1003, config);
  // Admit and let expire several waves of short slices.
  for (int wave = 0; wave < 5; ++wave) {
    for (const traffic::Vertical v :
         {traffic::Vertical::iot_metering, traffic::Vertical::ehealth}) {
      SliceSpec spec = SliceSpec::from_profile(traffic::profile_for(v), Duration::hours(1.0));
      (void)tb->orchestrator->submit(spec, traffic::make_traffic(v, Rng(wave * 10 + 1)));
    }
    tb->simulator.run_for(Duration::hours(2.0));
    check_invariants(*tb);
  }
  // After the last wave expires, everything must be back to zero.
  tb->simulator.run_for(Duration::hours(2.0));
  EXPECT_EQ(tb->ran.find_cell(tb->cell_a)->reserved_prbs().value, 0);
  EXPECT_EQ(tb->ran.find_cell(tb->cell_b)->reserved_prbs().value, 0);
  EXPECT_EQ(tb->epc->instance_count(), 0u);
  EXPECT_EQ(tb->transport->flow_table().size(), 0u);
  for (const transport::Link& link : tb->transport->topology().links()) {
    EXPECT_DOUBLE_EQ(tb->transport->reserved_on(link.id).as_mbps(), 0.0);
  }
  for (const cloud::Datacenter* dc : tb->cloud.datacenters()) {
    EXPECT_DOUBLE_EQ(dc->used_capacity().vcpus, 0.0);
    EXPECT_EQ(dc->vm_count(), 0u);
  }
  // All ten requests were admitted (capacity churns back).
  EXPECT_EQ(tb->orchestrator->summary().admitted_total, 10u);
}

TEST(Integration, AggressiveRiskRaisesViolationsVsConservative) {
  const auto violations_at = [](double quantile) {
    OrchestratorConfig config;
    config.overbooking.risk_quantile = quantile;
    config.overbooking.warmup_observations = 4;
    config.overbooking.floor_fraction = 0.05;
    auto tb = busy_testbed(1004, config);
    tb->simulator.run_for(Duration::hours(29.0));
    return tb->orchestrator->summary().violation_epochs;
  };
  const std::uint64_t aggressive = violations_at(0.0);
  const std::uint64_t conservative = violations_at(0.999);
  EXPECT_GE(aggressive, conservative);
  EXPECT_GT(aggressive, 0u);
}

TEST(Integration, RestBusCarriesAllControlTraffic) {
  auto tb = busy_testbed(1005);
  tb->simulator.run_for(Duration::hours(10.0));
  std::uint64_t total_requests = 0;
  for (const auto& [name, stats] : tb->bus.stats()) total_requests += stats.requests;
  // 4 epochs/hour x 10 h x 3 domains polled = at least 120 calls.
  EXPECT_GE(total_requests, 120u);
}

}  // namespace
}  // namespace slices::core
