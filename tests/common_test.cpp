// Unit tests for src/common: ids, units, result, rng, logging.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "common/log.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace slices {
namespace {

// --- Ids -------------------------------------------------------------------

TEST(Ids, DefaultIsInvalid) {
  SliceId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, SliceId::invalid());
}

TEST(Ids, AllocatorIsMonotonicAndUnique) {
  IdAllocator<SliceTag> alloc;
  std::set<SliceId> seen;
  SliceId prev{0};
  for (int i = 0; i < 1000; ++i) {
    const SliceId id = alloc.next();
    EXPECT_TRUE(id.valid());
    EXPECT_GT(id, prev);
    EXPECT_TRUE(seen.insert(id).second);
    prev = id;
  }
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<SliceId, CellId>);
  static_assert(!std::is_convertible_v<SliceId, CellId>);
}

TEST(Ids, Hashable) {
  std::unordered_set<PlmnId> set;
  set.insert(PlmnId{1});
  set.insert(PlmnId{1});
  set.insert(PlmnId{2});
  EXPECT_EQ(set.size(), 2u);
}

// --- DataRate ----------------------------------------------------------------

TEST(DataRate, UnitConversions) {
  EXPECT_DOUBLE_EQ(DataRate::mbps(10.0).bits_per_second(), 10e6);
  EXPECT_DOUBLE_EQ(DataRate::gbps(1.0).as_mbps(), 1000.0);
  EXPECT_DOUBLE_EQ(DataRate::kbps(500.0).as_mbps(), 0.5);
}

TEST(DataRate, Arithmetic) {
  const DataRate a = DataRate::mbps(30.0);
  const DataRate b = DataRate::mbps(12.0);
  EXPECT_DOUBLE_EQ((a + b).as_mbps(), 42.0);
  EXPECT_DOUBLE_EQ((a - b).as_mbps(), 18.0);
  EXPECT_DOUBLE_EQ((a * 2.0).as_mbps(), 60.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_LT(b, a);
}

TEST(DataRate, ClampNonNegative) {
  const DataRate negative = DataRate::mbps(1.0) - DataRate::mbps(5.0);
  EXPECT_LT(negative, DataRate::zero());
  EXPECT_EQ(clamp_non_negative(negative), DataRate::zero());
  EXPECT_EQ(clamp_non_negative(DataRate::mbps(3.0)), DataRate::mbps(3.0));
}

TEST(DataRate, MinMax) {
  EXPECT_EQ(min(DataRate::mbps(1.0), DataRate::mbps(2.0)), DataRate::mbps(1.0));
  EXPECT_EQ(max(DataRate::mbps(1.0), DataRate::mbps(2.0)), DataRate::mbps(2.0));
}

// --- Duration / SimTime --------------------------------------------------------

TEST(Duration, Conversions) {
  EXPECT_EQ(Duration::seconds(1.5).as_micros(), 1'500'000);
  EXPECT_DOUBLE_EQ(Duration::millis(250.0).as_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(Duration::hours(2.0).as_seconds(), 7200.0);
  EXPECT_DOUBLE_EQ(Duration::minutes(15.0).as_seconds(), 900.0);
}

TEST(Duration, ArithmeticAndComparison) {
  EXPECT_EQ(Duration::seconds(1.0) + Duration::seconds(2.0), Duration::seconds(3.0));
  EXPECT_EQ(Duration::seconds(5.0) - Duration::seconds(2.0), Duration::seconds(3.0));
  EXPECT_LT(Duration::millis(1.0), Duration::seconds(1.0));
  EXPECT_DOUBLE_EQ(Duration::hours(1.0) / Duration::minutes(15.0), 4.0);
}

TEST(SimTime, AdvancesByDuration) {
  const SimTime t0 = SimTime::origin();
  const SimTime t1 = t0 + Duration::seconds(10.0);
  EXPECT_EQ((t1 - t0), Duration::seconds(10.0));
  EXPECT_LT(t0, t1);
  EXPECT_DOUBLE_EQ(SimTime::from_seconds(7200.0).as_hours(), 2.0);
}

// --- PrbCount / ComputeCapacity -----------------------------------------------

TEST(PrbCount, Arithmetic) {
  PrbCount a{40};
  a += PrbCount{10};
  EXPECT_EQ(a, (PrbCount{50}));
  EXPECT_EQ((PrbCount{50} - PrbCount{20}).value, 30);
  EXPECT_LT((PrbCount{10}), (PrbCount{20}));
}

TEST(ComputeCapacity, FitsWithin) {
  const ComputeCapacity host{16.0, 65536.0, 500.0};
  EXPECT_TRUE((ComputeCapacity{4.0, 8192.0, 100.0}).fits_within(host));
  EXPECT_FALSE((ComputeCapacity{17.0, 8192.0, 100.0}).fits_within(host));
  EXPECT_FALSE((ComputeCapacity{4.0, 8192.0, 501.0}).fits_within(host));
}

TEST(ComputeCapacity, Arithmetic) {
  ComputeCapacity used{2.0, 1024.0, 10.0};
  used += ComputeCapacity{1.0, 512.0, 5.0};
  EXPECT_DOUBLE_EQ(used.vcpus, 3.0);
  used -= ComputeCapacity{1.0, 512.0, 5.0};
  EXPECT_DOUBLE_EQ(used.memory_mb, 1024.0);
  EXPECT_TRUE(used.non_negative());
}

// --- Money ---------------------------------------------------------------------

TEST(Money, ExactCents) {
  EXPECT_EQ(Money::units(10.55).as_cents(), 1055);
  EXPECT_EQ(Money::units(-3.335).as_cents(), -334);  // round half away from zero
  EXPECT_DOUBLE_EQ(Money::cents(250).as_units(), 2.5);
}

TEST(Money, ArithmeticIsExact) {
  Money sum = Money::zero();
  for (int i = 0; i < 1000; ++i) sum += Money::units(0.01);
  EXPECT_EQ(sum, Money::units(10.0));
  EXPECT_EQ(sum - Money::units(10.0), Money::zero());
  EXPECT_EQ(-Money::units(5.0), Money::units(-5.0));
}

TEST(Money, ScaleRoundsToNearestCent) {
  EXPECT_EQ((Money::units(10.0) * 0.333).as_cents(), 333);
  EXPECT_EQ((Money::units(30.0) * 1.5).as_units(), 45.0);
}

// --- Rng -------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsIndependentOfParentUsage) {
  Rng parent1(99);
  Rng child1 = parent1.fork();
  const std::uint64_t c1 = child1.next_u64();

  Rng parent2(99);
  Rng child2 = parent2.fork();
  // Using the parent after fork must not affect the child stream.
  (void)parent2.next_u64();
  EXPECT_EQ(child2.next_u64(), c1);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(19);
  for (const double mean : {0.5, 4.0, 30.0, 200.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(31);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 1.5);
}

// --- Logger ----------------------------------------------------------------------

/// Restores the global log level and sink after each test.
class LoggerTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_level_ = LogConfig::level(); }
  void TearDown() override {
    LogConfig::set_stream(&std::clog);
    LogConfig::set_level(saved_level_);
  }
  LogLevel saved_level_ = LogLevel::warn;
};

TEST_F(LoggerTest, FiltersBelowConfiguredLevel) {
  std::ostringstream sink;
  LogConfig::set_stream(&sink);
  LogConfig::set_level(LogLevel::warn);
  Logger log("test");
  log.info("dropped");
  log.warn("kept");
  LogConfig::set_stream(&std::clog);
  EXPECT_EQ(sink.str(), "[WARN] test: kept\n");
}

TEST_F(LoggerTest, OffSilencesEverything) {
  std::ostringstream sink;
  LogConfig::set_stream(&sink);
  LogConfig::set_level(LogLevel::off);
  Logger log("test");
  log.error("still dropped");
  LogConfig::set_stream(&std::clog);
  EXPECT_TRUE(sink.str().empty());
}

TEST_F(LoggerTest, ConcurrentLoggingNeverTearsLines) {
  // Hammer one sink from several threads while another thread flips the
  // level. Run under TSan in CI; the assertion here is that every line
  // arrives whole (single locked insertion per line).
  std::ostringstream sink;
  LogConfig::set_stream(&sink);
  LogConfig::set_level(LogLevel::info);

  constexpr int kThreads = 4;
  constexpr int kLines = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      Logger log("worker" + std::to_string(t));
      for (int i = 0; i < kLines; ++i) log.info("line " + std::to_string(i));
    });
  }
  std::thread toggler([] {
    for (int i = 0; i < 50; ++i) {
      LogConfig::set_level(i % 2 == 0 ? LogLevel::info : LogLevel::error);
    }
    LogConfig::set_level(LogLevel::info);
  });
  for (std::thread& w : workers) w.join();
  toggler.join();
  LogConfig::set_stream(&std::clog);

  std::istringstream lines(sink.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(line.rfind("[INFO] worker", 0), 0u) << "torn line: " << line;
    EXPECT_NE(line.find(": line "), std::string::npos) << "torn line: " << line;
  }
  // The toggler may legitimately swallow lines while at `error`; whole
  // lines are the invariant, not the count.
  EXPECT_LE(count, static_cast<std::size_t>(kThreads * kLines));
  EXPECT_GT(count, 0u);
}

// --- Result -----------------------------------------------------------------------

TEST(Result, HoldsValue) {
  const Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, HoldsError) {
  const Result<int> r = make_error(Errc::not_found, "missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::not_found);
  EXPECT_EQ(r.error().message, "missing");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, VoidSpecialization) {
  const Result<void> ok;
  EXPECT_TRUE(ok.ok());
  const Result<void> bad = make_error(Errc::conflict, "dup");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, Errc::conflict);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> extracted = std::move(r).value();
  EXPECT_EQ(*extracted, 5);
}

TEST(Errc, AllCodesHaveNames) {
  for (const Errc c : {Errc::invalid_argument, Errc::not_found, Errc::conflict,
                       Errc::insufficient_capacity, Errc::sla_unsatisfiable,
                       Errc::unavailable, Errc::protocol_error, Errc::timeout,
                       Errc::internal}) {
    EXPECT_NE(to_string(c), "unknown");
    EXPECT_FALSE(to_string(c).empty());
  }
}

}  // namespace
}  // namespace slices
