// Tests for the orchestrator event log: the ring itself, the events the
// orchestrator emits across a slice's life, and the REST feed.

#include <gtest/gtest.h>

#include "core/events.hpp"
#include "core/testbed.hpp"

namespace slices::core {
namespace {

SimTime at(double s) { return SimTime::from_seconds(s); }

TEST(EventLog, RecordsAndBounds) {
  EventLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.record(at(i), EventKind::sla_violation, SliceId{1}, "v" + std::to_string(i));
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total_recorded(), 11u);  // next sequence counter
  const std::vector<Event> recent = log.recent(2);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent.back().detail, "v9");
  EXPECT_LT(recent.front().sequence, recent.back().sequence);
}

TEST(EventLog, SinceFiltersBySequence) {
  EventLog log;
  log.record(at(1.0), EventKind::slice_admitted, SliceId{1}, "a");
  log.record(at(2.0), EventKind::slice_active, SliceId{1}, "b");
  log.record(at(3.0), EventKind::slice_expired, SliceId{1}, "c");
  const std::vector<Event> tail = log.since(1);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail.front().detail, "b");
  EXPECT_TRUE(log.since(99).empty());
}

TEST(EventLog, ForSliceSelects) {
  EventLog log;
  log.record(at(1.0), EventKind::slice_admitted, SliceId{1}, "one");
  log.record(at(2.0), EventKind::slice_admitted, SliceId{2}, "two");
  log.record(at(3.0), EventKind::slice_expired, SliceId{1}, "one done");
  EXPECT_EQ(log.for_slice(SliceId{1}).size(), 2u);
  EXPECT_EQ(log.for_slice(SliceId{2}).size(), 1u);
  EXPECT_TRUE(log.for_slice(SliceId{3}).empty());
}

TEST(EventLog, EventJsonShape) {
  Event event{7, at(60.0), EventKind::slice_reconfigured, SliceId{3}, "shrunk"};
  const json::Value v = event.to_json();
  EXPECT_EQ(v.find("seq")->as_int(), 7);
  EXPECT_DOUBLE_EQ(v.find("t")->as_number(), 60.0);
  EXPECT_EQ(v.find("kind")->as_string(), "slice_reconfigured");
  EXPECT_EQ(v.find("slice")->as_int(), 3);
  EXPECT_EQ(v.find("detail")->as_string(), "shrunk");
}

TEST(OrchestratorEvents, FullLifecycleLeavesAuditTrail) {
  auto tb = make_testbed(61);
  const RequestId request = tb->orchestrator->submit(
      SliceSpec::from_profile(traffic::profile_for(traffic::Vertical::iot_metering),
                              Duration::hours(2.0)),
      traffic::make_traffic(traffic::Vertical::iot_metering, Rng(1)));
  const SliceRecord* record = tb->orchestrator->find_by_request(request);
  tb->simulator.run_for(Duration::hours(3.0));
  ASSERT_EQ(record->state, SliceState::expired);

  const std::vector<Event> trail = tb->orchestrator->events().for_slice(record->id);
  ASSERT_GE(trail.size(), 4u);
  EXPECT_EQ(trail[0].kind, EventKind::request_submitted);
  EXPECT_EQ(trail[1].kind, EventKind::slice_admitted);
  EXPECT_EQ(trail[2].kind, EventKind::slice_active);
  EXPECT_EQ(trail.back().kind, EventKind::slice_expired);
  // Timestamps are non-decreasing.
  for (std::size_t i = 0; i + 1 < trail.size(); ++i) {
    EXPECT_LE(trail[i].time, trail[i + 1].time);
    EXPECT_LT(trail[i].sequence, trail[i + 1].sequence);
  }
}

TEST(OrchestratorEvents, RejectionIsLogged) {
  OrchestratorConfig config;
  config.overbooking.enabled = false;
  auto tb = make_testbed(62, config);
  SliceSpec spec = SliceSpec::from_profile(traffic::profile_for(traffic::Vertical::embb_video),
                                           Duration::hours(1.0));
  spec.expected_throughput = DataRate::mbps(100000.0);
  const RequestId request = tb->orchestrator->submit(spec);
  const SliceRecord* record = tb->orchestrator->find_by_request(request);
  const std::vector<Event> trail = tb->orchestrator->events().for_slice(record->id);
  ASSERT_EQ(trail.size(), 2u);
  EXPECT_EQ(trail[1].kind, EventKind::slice_rejected);
}

TEST(OrchestratorEvents, RestFeedSupportsIncrementalPolling) {
  auto tb = make_testbed(63);
  (void)tb->orchestrator->submit(SliceSpec::from_profile(
      traffic::profile_for(traffic::Vertical::ehealth), Duration::hours(4.0)));
  tb->simulator.run_for(Duration::minutes(5.0));

  const Result<json::Value> all = tb->bus.get_json("orchestrator", "/events");
  ASSERT_TRUE(all.ok());
  const json::Array& events = all.value().find("events")->as_array();
  ASSERT_GE(events.size(), 3u);  // submitted + admitted + active
  const auto last_seq = static_cast<std::uint64_t>(events.back().find("seq")->as_number());

  const Result<json::Value> tail =
      tb->bus.get_json("orchestrator", "/events?after=" + std::to_string(last_seq));
  ASSERT_TRUE(tail.ok());
  EXPECT_TRUE(tail.value().find("events")->as_array().empty());

  const Result<json::Value> some = tb->bus.get_json("orchestrator", "/events?after=1");
  ASSERT_TRUE(some.ok());
  EXPECT_EQ(some.value().find("events")->as_array().size(), events.size() - 1);
}

}  // namespace
}  // namespace slices::core
