// Tests for the dense slot-indexed containers (common/dense_map.hpp):
// StableVector pointer stability, DenseIdMap insert/erase/slot-reuse
// semantics, deterministic slot-order iteration, handle stability under
// growth, and a randomized differential test against std::map.

#include "common/dense_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <algorithm>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "ran/ue_soa.hpp"

namespace slices {
namespace {

TEST(StableVector, PushSlotReturnsSequentialIndices) {
  StableVector<int> v;
  EXPECT_TRUE(v.empty());
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(v.push_slot(), i);
    v[i] = static_cast<int>(i);
  }
  EXPECT_EQ(v.size(), 1000u);
  for (std::size_t i = 0; i < 1000; ++i) EXPECT_EQ(v[i], static_cast<int>(i));
}

TEST(StableVector, PointersSurviveGrowth) {
  StableVector<std::string> v;
  const std::size_t first = v.push_slot();
  v[first] = "anchor";
  std::string* anchor = &v[first];
  // Grow well past several 256-element blocks.
  for (std::size_t i = 0; i < 5000; ++i) {
    const std::size_t slot = v.push_slot();
    v[slot] = std::to_string(slot);
  }
  EXPECT_EQ(anchor, &v[first]);
  EXPECT_EQ(*anchor, "anchor");
  EXPECT_EQ(v[4321], "4321");
}

TEST(DenseIdMap, InsertFindErase) {
  DenseIdMap<UeId, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(UeId{1}), nullptr);
  EXPECT_FALSE(map.erase(UeId{1}));

  ASSERT_NE(map.insert(UeId{1}, 10), nullptr);
  ASSERT_NE(map.insert(UeId{2}, 20), nullptr);
  EXPECT_EQ(map.insert(UeId{1}, 99), nullptr);  // duplicate: rejected
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.find(UeId{1}), nullptr);
  EXPECT_EQ(*map.find(UeId{1}), 10);  // duplicate insert left value alone

  map.insert_or_assign(UeId{1}, 11);
  EXPECT_EQ(*map.find(UeId{1}), 11);

  EXPECT_TRUE(map.erase(UeId{1}));
  EXPECT_FALSE(map.erase(UeId{1}));
  EXPECT_EQ(map.find(UeId{1}), nullptr);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_TRUE(map.contains(UeId{2}));
}

TEST(DenseIdMap, ErasedSlotsAreReusedLifo) {
  DenseIdMap<UeId, int> map;
  for (std::uint64_t i = 1; i <= 6; ++i) map.insert(UeId{i}, static_cast<int>(i));
  const std::uint32_t slot2 = map.slot_of(UeId{2});
  const std::uint32_t slot5 = map.slot_of(UeId{5});
  ASSERT_TRUE(map.erase(UeId{2}));
  ASSERT_TRUE(map.erase(UeId{5}));
  // LIFO: the next insert takes 5's slot, the one after takes 2's.
  map.insert(UeId{100}, 100);
  map.insert(UeId{200}, 200);
  EXPECT_EQ(map.slot_of(UeId{100}), slot5);
  EXPECT_EQ(map.slot_of(UeId{200}), slot2);
  EXPECT_EQ(map.slot_count(), 6u);  // arena did not grow
}

TEST(DenseIdMap, IterationIsSlotOrdered) {
  DenseIdMap<UeId, int> map;
  for (std::uint64_t i = 1; i <= 5; ++i) map.insert(UeId{i}, static_cast<int>(i));
  ASSERT_TRUE(map.erase(UeId{3}));

  std::vector<std::uint64_t> seen;
  for (const auto& [ue, value] : map) {
    seen.push_back(ue.value());
    EXPECT_EQ(value, static_cast<int>(ue.value()));
  }
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 4, 5}));

  // A new key fills the freed slot and shows up mid-sequence, exactly
  // where the erased key used to be.
  map.insert(UeId{42}, 42);
  seen.clear();
  for (const auto& [ue, value] : map) seen.push_back(ue.value());
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 42, 4, 5}));
}

TEST(DenseIdMap, IterationOrderIsAFunctionOfOperationHistory) {
  // Two maps fed the same operation sequence iterate identically —
  // the property the epoch loop's determinism contract relies on.
  DenseIdMap<UeId, int> a;
  DenseIdMap<UeId, int> b;
  Rng rng(7);
  std::vector<UeId> live;
  for (int op = 0; op < 2000; ++op) {
    if (live.empty() || rng.uniform() < 0.6) {
      const UeId id{static_cast<std::uint64_t>(op) + 1};
      a.insert(id, op);
      b.insert(id, op);
      live.push_back(id);
    } else {
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      a.erase(live[pick]);
      b.erase(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
  }
  auto ita = a.begin();
  auto itb = b.begin();
  for (; ita != a.end() && itb != b.end(); ++ita, ++itb) {
    EXPECT_EQ((*ita).key, (*itb).key);
    EXPECT_EQ((*ita).value, (*itb).value);
  }
  EXPECT_EQ(ita == a.end(), itb == b.end());
}

TEST(DenseIdMap, HandlesStayValidUnderGrowth) {
  DenseIdMap<UeId, std::uint64_t> map;
  std::vector<std::uint64_t*> handles;
  constexpr std::uint64_t kCount = 10000;  // many rehashes + arena blocks
  for (std::uint64_t i = 1; i <= kCount; ++i) {
    handles.push_back(map.insert(UeId{i}, i * 3));
  }
  for (std::uint64_t i = 1; i <= kCount; ++i) {
    EXPECT_EQ(map.find(UeId{i}), handles[i - 1]);
    EXPECT_EQ(*handles[i - 1], i * 3);
  }
}

TEST(DenseIdMap, ReserveAvoidsRehashButKeepsSemantics) {
  DenseIdMap<UeId, int> map;
  map.reserve(5000);
  for (std::uint64_t i = 1; i <= 5000; ++i) map.insert(UeId{i}, static_cast<int>(i));
  EXPECT_EQ(map.size(), 5000u);
  EXPECT_EQ(*map.find(UeId{4999}), 4999);
}

struct PairKey {
  std::uint32_t a = ~std::uint32_t{0};
  std::uint32_t b = ~std::uint32_t{0};
  friend bool operator==(PairKey, PairKey) = default;
};

struct PairKeyTraits {
  [[nodiscard]] static constexpr PairKey invalid() noexcept { return PairKey{}; }
  [[nodiscard]] static constexpr std::uint64_t hash(PairKey k) noexcept {
    return dense_mix64((std::uint64_t{k.a} << 32) | k.b);
  }
};

TEST(DenseIdMap, CustomKeyTraits) {
  DenseIdMap<PairKey, int, PairKeyTraits> map;
  for (std::uint32_t a = 0; a < 20; ++a) {
    for (std::uint32_t b = 0; b < 20; ++b) {
      map.insert(PairKey{a, b}, static_cast<int>(a * 100 + b));
    }
  }
  EXPECT_EQ(map.size(), 400u);
  ASSERT_NE(map.find(PairKey{7, 13}), nullptr);
  EXPECT_EQ(*map.find(PairKey{7, 13}), 713);
  EXPECT_TRUE(map.erase(PairKey{7, 13}));
  EXPECT_EQ(map.find(PairKey{7, 13}), nullptr);
  EXPECT_EQ(map.size(), 399u);
}

TEST(DenseIdMap, RandomizedDifferentialAgainstStdMap) {
  // Fuzz-style differential test: a long random mix of insert /
  // insert_or_assign / erase / find, mirrored into std::map; contents
  // must agree after every operation batch. Keys are drawn from a small
  // range so collisions, reuse and backward-shift deletion all trigger.
  DenseIdMap<UeId, std::uint64_t> dense;
  std::map<UeId, std::uint64_t> reference;
  Rng rng(1213);
  for (int op = 0; op < 50000; ++op) {
    const UeId key{static_cast<std::uint64_t>(rng.uniform_int(1, 400))};
    switch (rng.uniform_int(0, 3)) {
      case 0: {  // insert (no overwrite)
        const std::uint64_t value = rng.next_u64();
        const bool dense_inserted = dense.insert(key, value) != nullptr;
        const bool ref_inserted = reference.emplace(key, value).second;
        ASSERT_EQ(dense_inserted, ref_inserted);
        break;
      }
      case 1: {  // insert_or_assign
        const std::uint64_t value = rng.next_u64();
        dense.insert_or_assign(key, value);
        reference[key] = value;
        break;
      }
      case 2: {  // erase
        ASSERT_EQ(dense.erase(key), reference.erase(key) > 0);
        break;
      }
      default: {  // find
        const std::uint64_t* found = dense.find(key);
        const auto it = reference.find(key);
        ASSERT_EQ(found != nullptr, it != reference.end());
        if (found != nullptr) ASSERT_EQ(*found, it->second);
        break;
      }
    }
    ASSERT_EQ(dense.size(), reference.size());
    if (op % 1000 == 999) {
      // Full-content sweep: every dense entry is in the reference...
      std::size_t walked = 0;
      for (const auto& [key_seen, value] : dense) {
        const auto it = reference.find(key_seen);
        ASSERT_NE(it, reference.end());
        ASSERT_EQ(value, it->second);
        ++walked;
      }
      // ...and the counts match, so the sets are equal.
      ASSERT_EQ(walked, reference.size());
    }
  }
}

TEST(DenseIdMap, ClearResetsEverything) {
  DenseIdMap<UeId, int> map;
  for (std::uint64_t i = 1; i <= 100; ++i) map.insert(UeId{i}, 1);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.slot_count(), 0u);
  EXPECT_EQ(map.find(UeId{50}), nullptr);
  map.insert(UeId{50}, 2);
  EXPECT_EQ(*map.find(UeId{50}), 2);
}

// --- UeSoa column store -----------------------------------------------------
//
// The epoch kernel's column store must keep the same contents AND the
// same iteration order as the legacy AoS layout (an AttachedUe record
// per DenseIdMap slot) under any attach/detach/CQI-wander history —
// iteration order is what fixes RNG consumption in the CQI walk, so an
// order divergence would silently fork every downstream scorecard.

TEST(UeSoa, RandomizedDiffAgainstDenseIdMap) {
  struct LegacyUe {
    std::uint8_t plmn_index;
    std::uint8_t cqi;
  };
  ran::UeSoa soa;
  DenseIdMap<UeId, LegacyUe> legacy;

  Rng rng(0xD1FFu);
  for (int op = 0; op < 20000; ++op) {
    const UeId ue{static_cast<std::uint64_t>(rng.uniform_int(1, 300))};
    switch (rng.uniform_int(0, 3)) {
      case 0:
      case 1: {  // attach (biased: populations grow)
        const auto plmn = static_cast<std::uint8_t>(rng.uniform_int(0, 5));
        const auto cqi_value = static_cast<int>(rng.uniform_int(1, 15));
        const std::uint32_t row = soa.insert(ue, plmn, ran::Cqi{cqi_value});
        const bool legacy_inserted =
            legacy.insert(ue, LegacyUe{plmn, static_cast<std::uint8_t>(cqi_value)}) !=
            nullptr;
        ASSERT_EQ(row != ran::UeSoa::kNoRow, legacy_inserted);
        break;
      }
      case 2: {  // detach
        ASSERT_EQ(soa.erase(ue), legacy.erase(ue));
        break;
      }
      default: {  // CQI wander step on one UE
        const std::uint32_t row = soa.row_of(ue);
        LegacyUe* ref = legacy.find(ue);
        ASSERT_EQ(row != ran::UeSoa::kNoRow, ref != nullptr);
        if (ref == nullptr) break;
        const int next = std::min(15, std::max(1, static_cast<int>(ref->cqi) +
                                                      (rng.bernoulli(0.5) ? 1 : -1)));
        soa.set_cqi(row, ran::Cqi{next});
        ref->cqi = static_cast<std::uint8_t>(next);
        break;
      }
    }
    ASSERT_EQ(soa.size(), legacy.size());

    if (op % 500 == 499) {
      // The live-row walk must visit the same UEs, with the same
      // attributes, in the same order as DenseIdMap slot iteration.
      std::vector<UeId> soa_order;
      for (std::uint32_t row = 0; row < soa.row_count(); ++row) {
        if (!soa.live(row)) continue;
        const UeId seen = soa.ue_at(row);
        soa_order.push_back(seen);
        const LegacyUe* ref = legacy.find(seen);
        ASSERT_NE(ref, nullptr);
        ASSERT_EQ(soa.plmn_index_at(row), ref->plmn_index);
        ASSERT_EQ(soa.cqi_at(row).index(), static_cast<int>(ref->cqi));
      }
      std::vector<UeId> legacy_order;
      for (const auto& [seen, unused] : legacy) legacy_order.push_back(seen);
      ASSERT_EQ(soa_order, legacy_order);
    }
  }
}

TEST(UeSoa, RowsReusedLifoAndColumnsStayAligned) {
  ran::UeSoa soa;
  for (std::uint64_t i = 1; i <= 6; ++i) {
    EXPECT_EQ(soa.insert(UeId{i}, 0, ran::Cqi{7}), i - 1);
  }
  EXPECT_TRUE(soa.erase(UeId{2}));
  EXPECT_TRUE(soa.erase(UeId{5}));
  EXPECT_FALSE(soa.live(1));
  EXPECT_FALSE(soa.live(4));
  // LIFO: the most recently freed row (4) is handed out first.
  EXPECT_EQ(soa.insert(UeId{7}, 3, ran::Cqi{12}), 4u);
  EXPECT_EQ(soa.insert(UeId{8}, 1, ran::Cqi{3}), 1u);
  EXPECT_EQ(soa.insert(UeId{9}, 2, ran::Cqi{9}), 6u);  // free list empty: append
  EXPECT_EQ(soa.ue_at(4), UeId{7});
  EXPECT_EQ(soa.plmn_index_at(4), 3);
  EXPECT_EQ(soa.cqi_at(1).index(), 3);
  EXPECT_EQ(soa.size(), 7u);
  // Duplicate insert is rejected without disturbing the row.
  EXPECT_EQ(soa.insert(UeId{7}, 0, ran::Cqi{1}), ran::UeSoa::kNoRow);
  EXPECT_EQ(soa.cqi_at(4).index(), 12);
}

}  // namespace
}  // namespace slices
