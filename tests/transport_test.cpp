// Unit tests for the transport substrate: topology, CSPF, flow tables,
// fading and the transport controller incl. REST facade.

#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "net/rest_bus.hpp"
#include "transport/controller.hpp"
#include "transport/cspf.hpp"
#include "transport/fading.hpp"
#include "transport/flow_table.hpp"
#include "transport/topology.hpp"

namespace slices::transport {
namespace {

/// Diamond: src -> (fast but thin | slow but fat) -> dst.
struct Diamond {
  Topology topo;
  NodeId src, top, bottom, dst;
  LinkId fast_a, fast_b, slow_a, slow_b;

  Diamond() {
    src = topo.add_node("src", NodeKind::enb_gateway);
    top = topo.add_node("top", NodeKind::openflow_switch);
    bottom = topo.add_node("bottom", NodeKind::openflow_switch);
    dst = topo.add_node("dst", NodeKind::core_gateway);
    fast_a = topo.add_link(src, top, LinkTechnology::fiber, DataRate::mbps(100.0),
                           Duration::millis(1.0));
    fast_b = topo.add_link(top, dst, LinkTechnology::fiber, DataRate::mbps(100.0),
                           Duration::millis(1.0));
    slow_a = topo.add_link(src, bottom, LinkTechnology::fiber, DataRate::mbps(1000.0),
                           Duration::millis(5.0));
    slow_b = topo.add_link(bottom, dst, LinkTechnology::fiber, DataRate::mbps(1000.0),
                           Duration::millis(5.0));
  }
};

ResidualFn nominal_residual() {
  return [](const Link& link) { return link.nominal_capacity; };
}

// --- Topology -------------------------------------------------------------

TEST(Topology, NodesAndLinks) {
  Diamond d;
  EXPECT_EQ(d.topo.node_count(), 4u);
  EXPECT_EQ(d.topo.link_count(), 4u);
  EXPECT_NE(d.topo.find_node_by_name("top"), nullptr);
  EXPECT_EQ(d.topo.find_node_by_name("ghost"), nullptr);
  EXPECT_EQ(d.topo.outgoing(d.src).size(), 2u);
  EXPECT_TRUE(d.topo.outgoing(d.dst).empty());
}

TEST(Topology, BidirectionalAddsBothDirections) {
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::openflow_switch);
  const NodeId b = topo.add_node("b", NodeKind::openflow_switch);
  const auto [fwd, rev] = topo.add_bidirectional(a, b, LinkTechnology::fiber,
                                                 DataRate::mbps(10.0), Duration::millis(1.0));
  EXPECT_EQ(topo.find_link(fwd)->from, a);
  EXPECT_EQ(topo.find_link(rev)->from, b);
}

// --- CSPF ------------------------------------------------------------------

TEST(Cspf, PicksMinDelayPath) {
  Diamond d;
  const auto route = find_route(d.topo, d.src, d.dst, DataRate::mbps(10.0),
                                nominal_residual());
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->links, (std::vector<LinkId>{d.fast_a, d.fast_b}));
  EXPECT_EQ(route->total_delay, Duration::millis(2.0));
  EXPECT_DOUBLE_EQ(route->bottleneck.as_mbps(), 100.0);
}

TEST(Cspf, AvoidsCapacityInfeasibleLinks) {
  Diamond d;
  // Demand above the fast path's 100 Mb/s forces the slow path.
  const auto route = find_route(d.topo, d.src, d.dst, DataRate::mbps(500.0),
                                nominal_residual());
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->links, (std::vector<LinkId>{d.slow_a, d.slow_b}));
}

TEST(Cspf, ReturnsNulloptWhenNothingFits) {
  Diamond d;
  EXPECT_FALSE(
      find_route(d.topo, d.src, d.dst, DataRate::mbps(5000.0), nominal_residual()).has_value());
}

TEST(Cspf, UnknownEndpointsRejected) {
  Diamond d;
  EXPECT_FALSE(find_route(d.topo, NodeId{999}, d.dst, DataRate::mbps(1.0),
                          nominal_residual()).has_value());
}

TEST(Cspf, SourceEqualsDestinationIsEmptyRoute) {
  Diamond d;
  const auto route =
      find_route(d.topo, d.src, d.src, DataRate::mbps(1.0), nominal_residual());
  ASSERT_TRUE(route.has_value());
  EXPECT_TRUE(route->links.empty());
  EXPECT_EQ(route->total_delay, Duration::zero());
}

TEST(Cspf, MinHopsObjectiveDiffersFromMinDelay) {
  // src -> dst direct (high delay) vs 2-hop low delay.
  Topology topo;
  const NodeId s = topo.add_node("s", NodeKind::enb_gateway);
  const NodeId m = topo.add_node("m", NodeKind::openflow_switch);
  const NodeId t = topo.add_node("t", NodeKind::core_gateway);
  const LinkId direct = topo.add_link(s, t, LinkTechnology::fiber, DataRate::mbps(100.0),
                                      Duration::millis(10.0));
  const LinkId hop1 = topo.add_link(s, m, LinkTechnology::fiber, DataRate::mbps(100.0),
                                    Duration::millis(1.0));
  const LinkId hop2 = topo.add_link(m, t, LinkTechnology::fiber, DataRate::mbps(100.0),
                                    Duration::millis(1.0));

  const auto by_delay = find_route(topo, s, t, DataRate::mbps(1.0), nominal_residual(),
                                   PathObjective::min_delay);
  ASSERT_TRUE(by_delay.has_value());
  EXPECT_EQ(by_delay->links, (std::vector<LinkId>{hop1, hop2}));

  const auto by_hops = find_route(topo, s, t, DataRate::mbps(1.0), nominal_residual(),
                                  PathObjective::min_hops);
  ASSERT_TRUE(by_hops.has_value());
  EXPECT_EQ(by_hops->links, (std::vector<LinkId>{direct}));
}

// --- FlowTable -------------------------------------------------------------------

TEST(FlowTable, InstallLookupRemove) {
  FlowTable table;
  const Result<FlowRuleId> rule =
      table.install(NodeId{1}, SliceId{10}, LinkId{5});
  ASSERT_TRUE(rule.ok());
  ASSERT_NE(table.lookup(NodeId{1}, SliceId{10}), nullptr);
  EXPECT_EQ(table.lookup(NodeId{1}, SliceId{10})->out_link, (LinkId{5}));
  EXPECT_EQ(table.lookup(NodeId{2}, SliceId{10}), nullptr);
  EXPECT_TRUE(table.remove(rule.value()).ok());
  EXPECT_EQ(table.remove(rule.value()).error().code, Errc::not_found);
}

TEST(FlowTable, RejectsDuplicateNextHop) {
  FlowTable table;
  ASSERT_TRUE(table.install(NodeId{1}, SliceId{10}, LinkId{5}).ok());
  EXPECT_EQ(table.install(NodeId{1}, SliceId{10}, LinkId{6}).error().code, Errc::conflict);
  // Different slice on the same node is fine.
  EXPECT_TRUE(table.install(NodeId{1}, SliceId{11}, LinkId{6}).ok());
}

TEST(FlowTable, RemoveSliceClearsAllItsRules) {
  FlowTable table;
  ASSERT_TRUE(table.install(NodeId{1}, SliceId{10}, LinkId{1}).ok());
  ASSERT_TRUE(table.install(NodeId{2}, SliceId{10}, LinkId{2}).ok());
  ASSERT_TRUE(table.install(NodeId{1}, SliceId{11}, LinkId{3}).ok());
  EXPECT_EQ(table.remove_slice(SliceId{10}), 2u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.rules_for(SliceId{11}).size(), 1u);
}

// --- Fading ----------------------------------------------------------------------

TEST(Fading, FiberNeverMoves) {
  Diamond d;
  FadingField fading(d.topo, Rng(1));
  EXPECT_EQ(fading.tracked_links(), 0u);  // all fiber
  for (int i = 0; i < 100; ++i) fading.step();
  EXPECT_DOUBLE_EQ(fading.factor(d.fast_a), 1.0);
}

TEST(Fading, WirelessStaysWithinBounds) {
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::enb_gateway);
  const NodeId b = topo.add_node("b", NodeKind::openflow_switch);
  const LinkId mm = topo.add_link(a, b, LinkTechnology::mmwave, DataRate::mbps(1000.0),
                                  Duration::millis(1.0));
  const LinkId uw = topo.add_link(b, a, LinkTechnology::uwave, DataRate::mbps(400.0),
                                  Duration::millis(2.0));
  FadingField fading(topo, Rng(7));
  EXPECT_EQ(fading.tracked_links(), 2u);
  const FadingParams mm_params = default_fading(LinkTechnology::mmwave);
  const FadingParams uw_params = default_fading(LinkTechnology::uwave);
  for (int i = 0; i < 5000; ++i) {
    fading.step();
    EXPECT_GE(fading.factor(mm), mm_params.floor);
    EXPECT_LE(fading.factor(mm), 1.0);
    EXPECT_GE(fading.factor(uw), uw_params.floor);
    EXPECT_LE(fading.factor(uw), 1.0);
  }
}

TEST(Fading, MmwaveOutagesActuallyHappen) {
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::enb_gateway);
  const NodeId b = topo.add_node("b", NodeKind::openflow_switch);
  const LinkId mm = topo.add_link(a, b, LinkTechnology::mmwave, DataRate::mbps(1000.0),
                                  Duration::millis(1.0));
  FadingField fading(topo, Rng(11));
  int deep_fades = 0;
  for (int i = 0; i < 5000; ++i) {
    fading.step();
    if (fading.factor(mm) <= default_fading(LinkTechnology::mmwave).floor + 1e-9) ++deep_fades;
  }
  EXPECT_GT(deep_fades, 5);  // ~1%/epoch outage probability
}

// --- TransportController ------------------------------------------------------------

TEST(TransportController, AllocateInstallsRulesAndReserves) {
  Diamond d;
  TransportController tc(std::move(d.topo), Rng(3));
  const Result<PathId> path = tc.allocate_path(SliceId{1}, d.src, d.dst,
                                               DataRate::mbps(40.0), Duration::millis(5.0));
  ASSERT_TRUE(path.ok()) << path.error().message;
  const PathReservation* reservation = tc.find_path(path.value());
  ASSERT_NE(reservation, nullptr);
  EXPECT_EQ(reservation->route.hops(), 2u);
  // One flow rule per traversed node.
  EXPECT_EQ(tc.flow_table().rules_for(SliceId{1}).size(), 2u);
  // Residual dropped on the chosen links.
  EXPECT_DOUBLE_EQ(tc.reserved_on(reservation->route.links[0]).as_mbps(), 40.0);
}

TEST(TransportController, DelayBoundRejectsWithSlaError) {
  Diamond d;
  TransportController tc(std::move(d.topo), Rng(3));
  // Fast path has 2 ms, slow 10 ms. Demand forces the slow path but the
  // bound only allows the fast one.
  const Result<PathId> path = tc.allocate_path(SliceId{1}, d.src, d.dst,
                                               DataRate::mbps(500.0), Duration::millis(5.0));
  ASSERT_FALSE(path.ok());
  EXPECT_EQ(path.error().code, Errc::sla_unsatisfiable);
}

TEST(TransportController, CapacityExhaustionRejects) {
  Diamond d;
  TransportController tc(std::move(d.topo), Rng(3));
  ASSERT_TRUE(tc.allocate_path(SliceId{1}, d.src, d.dst, DataRate::mbps(900.0),
                               Duration::millis(20.0)).ok());
  ASSERT_TRUE(tc.allocate_path(SliceId{2}, d.src, d.dst, DataRate::mbps(90.0),
                               Duration::millis(20.0)).ok());
  const Result<PathId> third = tc.allocate_path(SliceId{3}, d.src, d.dst,
                                                DataRate::mbps(200.0), Duration::millis(20.0));
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.error().code, Errc::insufficient_capacity);
}

TEST(TransportController, SecondSliceTakesAlternatePath) {
  Diamond d;
  TransportController tc(std::move(d.topo), Rng(3));
  const Result<PathId> first = tc.allocate_path(SliceId{1}, d.src, d.dst,
                                                DataRate::mbps(80.0), Duration::millis(20.0));
  ASSERT_TRUE(first.ok());
  // Fast path has only 20 Mb/s residual left; 50 Mb/s must go bottom.
  const Result<PathId> second = tc.allocate_path(SliceId{2}, d.src, d.dst,
                                                 DataRate::mbps(50.0), Duration::millis(20.0));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(tc.find_path(second.value())->route.total_delay, Duration::millis(10.0));
}

TEST(TransportController, ResizeGrowAndShrink) {
  Diamond d;
  TransportController tc(std::move(d.topo), Rng(3));
  const Result<PathId> path = tc.allocate_path(SliceId{1}, d.src, d.dst,
                                               DataRate::mbps(40.0), Duration::millis(5.0));
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(tc.resize_path(path.value(), DataRate::mbps(90.0)).ok());
  EXPECT_DOUBLE_EQ(tc.find_path(path.value())->reserved.as_mbps(), 90.0);
  // Growing past the 100 Mb/s links fails and leaves state unchanged.
  EXPECT_EQ(tc.resize_path(path.value(), DataRate::mbps(150.0)).error().code,
            Errc::insufficient_capacity);
  EXPECT_DOUBLE_EQ(tc.find_path(path.value())->reserved.as_mbps(), 90.0);
  EXPECT_TRUE(tc.resize_path(path.value(), DataRate::mbps(10.0)).ok());
  const LinkId first_link = tc.find_path(path.value())->route.links[0];
  EXPECT_DOUBLE_EQ(tc.reserved_on(first_link).as_mbps(), 10.0);
}

TEST(TransportController, ReleaseFreesEverything) {
  Diamond d;
  TransportController tc(std::move(d.topo), Rng(3));
  const Result<PathId> path = tc.allocate_path(SliceId{1}, d.src, d.dst,
                                               DataRate::mbps(40.0), Duration::millis(5.0));
  ASSERT_TRUE(path.ok());
  const LinkId used = tc.find_path(path.value())->route.links[0];
  ASSERT_TRUE(tc.release_path(path.value()).ok());
  EXPECT_EQ(tc.find_path(path.value()), nullptr);
  EXPECT_DOUBLE_EQ(tc.reserved_on(used).as_mbps(), 0.0);
  EXPECT_TRUE(tc.flow_table().rules_for(SliceId{1}).empty());
  EXPECT_EQ(tc.release_path(path.value()).error().code, Errc::not_found);
}

TEST(TransportController, ServeEpochCapsAtReservation) {
  Diamond d;
  TransportController tc(std::move(d.topo), Rng(3));
  const Result<PathId> path = tc.allocate_path(SliceId{1}, d.src, d.dst,
                                               DataRate::mbps(40.0), Duration::millis(5.0));
  ASSERT_TRUE(path.ok());
  const std::vector<std::pair<PathId, DataRate>> demands = {
      {path.value(), DataRate::mbps(60.0)}};
  const auto reports = tc.serve_epoch(demands, SimTime::from_seconds(1.0));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_LE(reports[0].served.as_mbps(), 40.0 + 1e-9);
  EXPECT_GT(reports[0].experienced_delay, Duration::zero());
}

TEST(TransportController, FadingDegradationTriggersReroute) {
  // mmWave primary + fiber alternate: after enough epochs a deep fade
  // must have pushed at least one reroute onto the fiber path.
  Topology topo;
  const NodeId s = topo.add_node("s", NodeKind::enb_gateway);
  const NodeId t = topo.add_node("t", NodeKind::core_gateway);
  topo.add_link(s, t, LinkTechnology::mmwave, DataRate::mbps(1000.0), Duration::millis(1.0));
  topo.add_link(s, t, LinkTechnology::fiber, DataRate::mbps(1000.0), Duration::millis(3.0));
  TransportController tc(std::move(topo), Rng(23));

  const Result<PathId> path = tc.allocate_path(SliceId{1}, s, t, DataRate::mbps(500.0),
                                               Duration::millis(10.0));
  ASSERT_TRUE(path.ok());
  const std::vector<std::pair<PathId, DataRate>> demands = {
      {path.value(), DataRate::mbps(450.0)}};
  for (int i = 0; i < 2000 && tc.reroutes() == 0; ++i) {
    (void)tc.serve_epoch(demands, SimTime::from_seconds(i));
  }
  EXPECT_GT(tc.reroutes(), 0u);
}

// Randomized differential test: the SoA columns (reserved-per-link-slot,
// route CSR) must agree with a naive std::map bookkeeping model across an
// arbitrary interleaving of allocate / resize / release / serve. Fiber-only
// substrate so routes never move underneath the model.
TEST(TransportController, SoaStateMatchesMapModelUnderRandomOps) {
  Topology topo;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 6; ++i) {
    nodes.push_back(topo.add_node("n" + std::to_string(i),
                                  i == 0 ? NodeKind::enb_gateway
                                         : (i == 5 ? NodeKind::core_gateway
                                                   : NodeKind::openflow_switch)));
  }
  std::vector<LinkId> links;
  for (int i = 0; i < 5; ++i) {
    links.push_back(topo.add_link(nodes[i], nodes[i + 1], LinkTechnology::fiber,
                                  DataRate::mbps(500.0), Duration::millis(1.0)));
    links.push_back(topo.add_link(nodes[i + 1], nodes[i], LinkTechnology::fiber,
                                  DataRate::mbps(500.0), Duration::millis(1.0)));
  }
  TransportController tc(std::move(topo), Rng(41));

  struct ModelPath {
    double rate;
    std::vector<LinkId> route;
  };
  std::map<LinkId, double> model_reserved;
  std::map<PathId, ModelPath> model_paths;
  std::vector<PathId> live;

  Rng rng(4242);
  const auto pick_index = [&rng](std::size_t size) {
    return static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(size) - 1));
  };
  for (int op = 0; op < 600; ++op) {
    const auto roll = rng.uniform_int(0, 9);
    if (roll < 4 || live.empty()) {  // allocate
      const NodeId src = nodes[pick_index(nodes.size())];
      const NodeId dst = nodes[pick_index(nodes.size())];
      const double rate = static_cast<double>(rng.uniform_int(1, 40));
      const Result<PathId> path =
          tc.allocate_path(SliceId{static_cast<std::uint64_t>(1 + op % 7)}, src, dst,
                           DataRate::mbps(rate), Duration::millis(50.0));
      if (path.ok()) {
        const PathReservation* stored = tc.find_path(path.value());
        ASSERT_NE(stored, nullptr);
        for (const LinkId link : stored->route.links) model_reserved[link] += rate;
        model_paths[path.value()] = ModelPath{rate, stored->route.links};
        live.push_back(path.value());
      }
    } else if (roll < 6) {  // resize
      const PathId path = live[pick_index(live.size())];
      const double new_rate = static_cast<double>(rng.uniform_int(1, 60));
      if (tc.resize_path(path, DataRate::mbps(new_rate)).ok()) {
        ModelPath& mp = model_paths.at(path);
        for (const LinkId link : mp.route) model_reserved[link] += new_rate - mp.rate;
        mp.rate = new_rate;
      }
    } else if (roll < 8) {  // release
      const std::size_t pick = pick_index(live.size());
      const PathId path = live[pick];
      ASSERT_TRUE(tc.release_path(path).ok());
      const ModelPath& mp = model_paths.at(path);
      for (const LinkId link : mp.route) model_reserved[link] -= mp.rate;
      model_paths.erase(path);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {  // serve: exercises the CSR read path over the current state
      std::vector<std::pair<PathId, DataRate>> demands;
      for (const PathId path : live)
        demands.emplace_back(path, DataRate::mbps(model_paths.at(path).rate * 0.5));
      const auto reports = tc.serve_epoch(demands, SimTime::from_seconds(op));
      ASSERT_EQ(reports.size(), demands.size());
      for (std::size_t i = 0; i < reports.size(); ++i) {
        EXPECT_EQ(reports[i].path, demands[i].first);
        // Fiber never fades, so every path serves its full (capped) demand.
        EXPECT_NEAR(reports[i].served.as_mbps(), demands[i].second.as_mbps(), 1e-9);
        EXPECT_FALSE(reports[i].degraded);
      }
    }

    // Full-state diff every few ops (cheap: 10 links).
    if (op % 20 == 19) {
      for (const LinkId link : links) {
        const double want = model_reserved.count(link) != 0 ? model_reserved.at(link) : 0.0;
        EXPECT_NEAR(tc.reserved_on(link).as_mbps(), want, 1e-9)
            << "link " << link.value() << " after op " << op;
      }
      for (const auto& [path, mp] : model_paths) {
        const PathReservation* stored = tc.find_path(path);
        ASSERT_NE(stored, nullptr);
        EXPECT_NEAR(stored->reserved.as_mbps(), mp.rate, 1e-9);
        EXPECT_EQ(stored->route.links, mp.route);
      }
    }
  }
  EXPECT_FALSE(model_paths.empty());  // the walk actually built state
}

// Satellite regression: a verbatim-restored pre-crash route can name links
// the rebuilt topology does not have. Serving such a path must yield a
// degraded zero-served report — never dereference a null find_link() — on
// both the kernel and the legacy path, and the repair loop must eventually
// move the path onto a live route.
void expect_stale_route_served_degraded(bool legacy) {
  Diamond d;
  const NodeId src = d.src;
  const NodeId dst = d.dst;
  const LinkId live_link = d.fast_a;
  TransportController tc(std::move(d.topo), Rng(3));
  tc.set_legacy_epoch_path(legacy);

  PathReservation stale;
  stale.id = PathId{500};
  stale.slice = SliceId{7};
  stale.src = src;
  stale.dst = dst;
  stale.reserved = DataRate::mbps(10.0);
  stale.max_delay = Duration::millis(50.0);
  stale.route.links = {live_link, LinkId{987654}};  // second hop no longer exists
  stale.route.total_delay = Duration::millis(2.0);
  stale.route.bottleneck = DataRate::mbps(10.0);
  ASSERT_TRUE(tc.restore_path_exact(stale).ok());
  // Known links of the stale route still hold their reservation.
  EXPECT_DOUBLE_EQ(tc.reserved_on(live_link).as_mbps(), 10.0);

  const std::vector<std::pair<PathId, DataRate>> demands = {
      {PathId{500}, DataRate::mbps(8.0)}};
  const auto reports = tc.serve_epoch(demands, SimTime::from_seconds(1.0));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_DOUBLE_EQ(reports[0].served.as_mbps(), 0.0);
  EXPECT_TRUE(reports[0].degraded);

  // The repair loop reroutes onto the all-fiber substrate; the next epoch
  // serves the demand in full.
  EXPECT_GT(tc.reroutes(), 0u);
  const auto healed = tc.serve_epoch(demands, SimTime::from_seconds(2.0));
  ASSERT_EQ(healed.size(), 1u);
  EXPECT_DOUBLE_EQ(healed[0].served.as_mbps(), 8.0);
  EXPECT_FALSE(healed[0].degraded);
}

TEST(TransportController, StaleRouteServesDegradedKernel) {
  expect_stale_route_served_degraded(/*legacy=*/false);
}

TEST(TransportController, StaleRouteServesDegradedLegacy) {
  expect_stale_route_served_degraded(/*legacy=*/true);
}

TEST(TransportController, RestorePathExactRejectsConflictAndBadArgs) {
  Diamond d;
  TransportController tc(std::move(d.topo), Rng(3));
  PathReservation r;
  r.id = PathId{9};
  r.slice = SliceId{1};
  r.src = d.src;
  r.dst = d.dst;
  r.reserved = DataRate::mbps(5.0);
  r.max_delay = Duration::millis(50.0);
  r.route.links = {d.fast_a, d.fast_b};
  ASSERT_TRUE(tc.restore_path_exact(r).ok());
  EXPECT_EQ(tc.restore_path_exact(r).error().code, Errc::conflict);
  PathReservation bad = r;
  bad.id = PathId{10};
  bad.reserved = DataRate::mbps(0.0);
  EXPECT_EQ(tc.restore_path_exact(bad).error().code, Errc::invalid_argument);
  // The id allocator skipped past the restored id.
  const Result<PathId> fresh = tc.allocate_path(SliceId{2}, d.src, d.dst,
                                                DataRate::mbps(1.0), Duration::millis(50.0));
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh.value().value(), 9u);
}

// The SoA kernel and the retained legacy path must produce byte-identical
// report streams over a fading, rerouting substrate.
TEST(TransportController, KernelMatchesLegacyOverFadingEpochs) {
  const auto build = [] {
    Topology topo;
    const NodeId s = topo.add_node("s", NodeKind::enb_gateway);
    const NodeId m = topo.add_node("m", NodeKind::openflow_switch);
    const NodeId t = topo.add_node("t", NodeKind::core_gateway);
    topo.add_link(s, m, LinkTechnology::mmwave, DataRate::mbps(1000.0), Duration::millis(1.0));
    topo.add_link(m, t, LinkTechnology::uwave, DataRate::mbps(800.0), Duration::millis(1.0));
    topo.add_link(s, t, LinkTechnology::fiber, DataRate::mbps(600.0), Duration::millis(4.0));
    return topo;
  };
  TransportController kernel(build(), Rng(77));
  TransportController legacy(build(), Rng(77));
  legacy.set_legacy_epoch_path(true);

  std::vector<std::pair<PathId, DataRate>> demands;
  for (std::uint64_t i = 0; i < 4; ++i) {
    const Result<PathId> a = kernel.allocate_path(SliceId{i + 1}, NodeId{1}, NodeId{3},
                                                  DataRate::mbps(120.0), Duration::millis(20.0));
    const Result<PathId> b = legacy.allocate_path(SliceId{i + 1}, NodeId{1}, NodeId{3},
                                                  DataRate::mbps(120.0), Duration::millis(20.0));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.value(), b.value());
    demands.emplace_back(a.value(), DataRate::mbps(100.0));
  }
  for (int epoch = 0; epoch < 500; ++epoch) {
    const auto ra = kernel.serve_epoch(demands, SimTime::from_seconds(epoch));
    const auto rb = legacy.serve_epoch(demands, SimTime::from_seconds(epoch));
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].path, rb[i].path);
      EXPECT_EQ(ra[i].slice, rb[i].slice);
      EXPECT_EQ(ra[i].served.as_mbps(), rb[i].served.as_mbps()) << "epoch " << epoch;
      EXPECT_EQ(ra[i].experienced_delay, rb[i].experienced_delay) << "epoch " << epoch;
      EXPECT_EQ(ra[i].delay_violated, rb[i].delay_violated);
      EXPECT_EQ(ra[i].degraded, rb[i].degraded);
    }
  }
  EXPECT_EQ(kernel.reroutes(), legacy.reroutes());
}

TEST(TransportController, RestApiTopologyAndPaths) {
  Diamond d;
  const NodeId src = d.src;
  const NodeId dst = d.dst;
  TransportController tc(std::move(d.topo), Rng(3));
  net::RestBus bus;
  bus.register_service("transport", tc.make_router());

  const Result<json::Value> topo_doc = bus.get_json("transport", "/topology");
  ASSERT_TRUE(topo_doc.ok());
  EXPECT_EQ(topo_doc.value().find("nodes")->as_array().size(), 4u);
  EXPECT_EQ(topo_doc.value().find("links")->as_array().size(), 4u);

  json::Value req;
  req["slice"] = 9;
  req["src"] = static_cast<double>(src.value());
  req["dst"] = static_cast<double>(dst.value());
  req["rate_mbps"] = 30.0;
  req["max_delay_ms"] = 5.0;
  const Result<json::Value> created = bus.call_json("transport", net::Method::post, "/paths", req);
  ASSERT_TRUE(created.ok()) << created.error().message;
  const auto path_id = static_cast<std::uint64_t>(created.value().find("path")->as_number());
  EXPECT_EQ(created.value().find("hops")->as_int(), 2);

  json::Value resize;
  resize["rate_mbps"] = 50.0;
  ASSERT_TRUE(bus.call_json("transport", net::Method::put,
                            "/paths/" + std::to_string(path_id), resize).ok());
  ASSERT_TRUE(bus.call_json("transport", net::Method::del,
                            "/paths/" + std::to_string(path_id), json::Value(nullptr)).ok());
  EXPECT_FALSE(bus.call_json("transport", net::Method::del,
                             "/paths/" + std::to_string(path_id), json::Value(nullptr)).ok());
}

}  // namespace
}  // namespace slices::transport
