// Unit tests for the transport substrate: topology, CSPF, flow tables,
// fading and the transport controller incl. REST facade.

#include <gtest/gtest.h>

#include "net/rest_bus.hpp"
#include "transport/controller.hpp"
#include "transport/cspf.hpp"
#include "transport/fading.hpp"
#include "transport/flow_table.hpp"
#include "transport/topology.hpp"

namespace slices::transport {
namespace {

/// Diamond: src -> (fast but thin | slow but fat) -> dst.
struct Diamond {
  Topology topo;
  NodeId src, top, bottom, dst;
  LinkId fast_a, fast_b, slow_a, slow_b;

  Diamond() {
    src = topo.add_node("src", NodeKind::enb_gateway);
    top = topo.add_node("top", NodeKind::openflow_switch);
    bottom = topo.add_node("bottom", NodeKind::openflow_switch);
    dst = topo.add_node("dst", NodeKind::core_gateway);
    fast_a = topo.add_link(src, top, LinkTechnology::fiber, DataRate::mbps(100.0),
                           Duration::millis(1.0));
    fast_b = topo.add_link(top, dst, LinkTechnology::fiber, DataRate::mbps(100.0),
                           Duration::millis(1.0));
    slow_a = topo.add_link(src, bottom, LinkTechnology::fiber, DataRate::mbps(1000.0),
                           Duration::millis(5.0));
    slow_b = topo.add_link(bottom, dst, LinkTechnology::fiber, DataRate::mbps(1000.0),
                           Duration::millis(5.0));
  }
};

ResidualFn nominal_residual() {
  return [](const Link& link) { return link.nominal_capacity; };
}

// --- Topology -------------------------------------------------------------

TEST(Topology, NodesAndLinks) {
  Diamond d;
  EXPECT_EQ(d.topo.node_count(), 4u);
  EXPECT_EQ(d.topo.link_count(), 4u);
  EXPECT_NE(d.topo.find_node_by_name("top"), nullptr);
  EXPECT_EQ(d.topo.find_node_by_name("ghost"), nullptr);
  EXPECT_EQ(d.topo.outgoing(d.src).size(), 2u);
  EXPECT_TRUE(d.topo.outgoing(d.dst).empty());
}

TEST(Topology, BidirectionalAddsBothDirections) {
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::openflow_switch);
  const NodeId b = topo.add_node("b", NodeKind::openflow_switch);
  const auto [fwd, rev] = topo.add_bidirectional(a, b, LinkTechnology::fiber,
                                                 DataRate::mbps(10.0), Duration::millis(1.0));
  EXPECT_EQ(topo.find_link(fwd)->from, a);
  EXPECT_EQ(topo.find_link(rev)->from, b);
}

// --- CSPF ------------------------------------------------------------------

TEST(Cspf, PicksMinDelayPath) {
  Diamond d;
  const auto route = find_route(d.topo, d.src, d.dst, DataRate::mbps(10.0),
                                nominal_residual());
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->links, (std::vector<LinkId>{d.fast_a, d.fast_b}));
  EXPECT_EQ(route->total_delay, Duration::millis(2.0));
  EXPECT_DOUBLE_EQ(route->bottleneck.as_mbps(), 100.0);
}

TEST(Cspf, AvoidsCapacityInfeasibleLinks) {
  Diamond d;
  // Demand above the fast path's 100 Mb/s forces the slow path.
  const auto route = find_route(d.topo, d.src, d.dst, DataRate::mbps(500.0),
                                nominal_residual());
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->links, (std::vector<LinkId>{d.slow_a, d.slow_b}));
}

TEST(Cspf, ReturnsNulloptWhenNothingFits) {
  Diamond d;
  EXPECT_FALSE(
      find_route(d.topo, d.src, d.dst, DataRate::mbps(5000.0), nominal_residual()).has_value());
}

TEST(Cspf, UnknownEndpointsRejected) {
  Diamond d;
  EXPECT_FALSE(find_route(d.topo, NodeId{999}, d.dst, DataRate::mbps(1.0),
                          nominal_residual()).has_value());
}

TEST(Cspf, SourceEqualsDestinationIsEmptyRoute) {
  Diamond d;
  const auto route =
      find_route(d.topo, d.src, d.src, DataRate::mbps(1.0), nominal_residual());
  ASSERT_TRUE(route.has_value());
  EXPECT_TRUE(route->links.empty());
  EXPECT_EQ(route->total_delay, Duration::zero());
}

TEST(Cspf, MinHopsObjectiveDiffersFromMinDelay) {
  // src -> dst direct (high delay) vs 2-hop low delay.
  Topology topo;
  const NodeId s = topo.add_node("s", NodeKind::enb_gateway);
  const NodeId m = topo.add_node("m", NodeKind::openflow_switch);
  const NodeId t = topo.add_node("t", NodeKind::core_gateway);
  const LinkId direct = topo.add_link(s, t, LinkTechnology::fiber, DataRate::mbps(100.0),
                                      Duration::millis(10.0));
  const LinkId hop1 = topo.add_link(s, m, LinkTechnology::fiber, DataRate::mbps(100.0),
                                    Duration::millis(1.0));
  const LinkId hop2 = topo.add_link(m, t, LinkTechnology::fiber, DataRate::mbps(100.0),
                                    Duration::millis(1.0));

  const auto by_delay = find_route(topo, s, t, DataRate::mbps(1.0), nominal_residual(),
                                   PathObjective::min_delay);
  ASSERT_TRUE(by_delay.has_value());
  EXPECT_EQ(by_delay->links, (std::vector<LinkId>{hop1, hop2}));

  const auto by_hops = find_route(topo, s, t, DataRate::mbps(1.0), nominal_residual(),
                                  PathObjective::min_hops);
  ASSERT_TRUE(by_hops.has_value());
  EXPECT_EQ(by_hops->links, (std::vector<LinkId>{direct}));
}

// --- FlowTable -------------------------------------------------------------------

TEST(FlowTable, InstallLookupRemove) {
  FlowTable table;
  const Result<FlowRuleId> rule =
      table.install(NodeId{1}, SliceId{10}, LinkId{5});
  ASSERT_TRUE(rule.ok());
  ASSERT_NE(table.lookup(NodeId{1}, SliceId{10}), nullptr);
  EXPECT_EQ(table.lookup(NodeId{1}, SliceId{10})->out_link, (LinkId{5}));
  EXPECT_EQ(table.lookup(NodeId{2}, SliceId{10}), nullptr);
  EXPECT_TRUE(table.remove(rule.value()).ok());
  EXPECT_EQ(table.remove(rule.value()).error().code, Errc::not_found);
}

TEST(FlowTable, RejectsDuplicateNextHop) {
  FlowTable table;
  ASSERT_TRUE(table.install(NodeId{1}, SliceId{10}, LinkId{5}).ok());
  EXPECT_EQ(table.install(NodeId{1}, SliceId{10}, LinkId{6}).error().code, Errc::conflict);
  // Different slice on the same node is fine.
  EXPECT_TRUE(table.install(NodeId{1}, SliceId{11}, LinkId{6}).ok());
}

TEST(FlowTable, RemoveSliceClearsAllItsRules) {
  FlowTable table;
  ASSERT_TRUE(table.install(NodeId{1}, SliceId{10}, LinkId{1}).ok());
  ASSERT_TRUE(table.install(NodeId{2}, SliceId{10}, LinkId{2}).ok());
  ASSERT_TRUE(table.install(NodeId{1}, SliceId{11}, LinkId{3}).ok());
  EXPECT_EQ(table.remove_slice(SliceId{10}), 2u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.rules_for(SliceId{11}).size(), 1u);
}

// --- Fading ----------------------------------------------------------------------

TEST(Fading, FiberNeverMoves) {
  Diamond d;
  FadingField fading(d.topo, Rng(1));
  EXPECT_EQ(fading.tracked_links(), 0u);  // all fiber
  for (int i = 0; i < 100; ++i) fading.step();
  EXPECT_DOUBLE_EQ(fading.factor(d.fast_a), 1.0);
}

TEST(Fading, WirelessStaysWithinBounds) {
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::enb_gateway);
  const NodeId b = topo.add_node("b", NodeKind::openflow_switch);
  const LinkId mm = topo.add_link(a, b, LinkTechnology::mmwave, DataRate::mbps(1000.0),
                                  Duration::millis(1.0));
  const LinkId uw = topo.add_link(b, a, LinkTechnology::uwave, DataRate::mbps(400.0),
                                  Duration::millis(2.0));
  FadingField fading(topo, Rng(7));
  EXPECT_EQ(fading.tracked_links(), 2u);
  const FadingParams mm_params = default_fading(LinkTechnology::mmwave);
  const FadingParams uw_params = default_fading(LinkTechnology::uwave);
  for (int i = 0; i < 5000; ++i) {
    fading.step();
    EXPECT_GE(fading.factor(mm), mm_params.floor);
    EXPECT_LE(fading.factor(mm), 1.0);
    EXPECT_GE(fading.factor(uw), uw_params.floor);
    EXPECT_LE(fading.factor(uw), 1.0);
  }
}

TEST(Fading, MmwaveOutagesActuallyHappen) {
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::enb_gateway);
  const NodeId b = topo.add_node("b", NodeKind::openflow_switch);
  const LinkId mm = topo.add_link(a, b, LinkTechnology::mmwave, DataRate::mbps(1000.0),
                                  Duration::millis(1.0));
  FadingField fading(topo, Rng(11));
  int deep_fades = 0;
  for (int i = 0; i < 5000; ++i) {
    fading.step();
    if (fading.factor(mm) <= default_fading(LinkTechnology::mmwave).floor + 1e-9) ++deep_fades;
  }
  EXPECT_GT(deep_fades, 5);  // ~1%/epoch outage probability
}

// --- TransportController ------------------------------------------------------------

TEST(TransportController, AllocateInstallsRulesAndReserves) {
  Diamond d;
  TransportController tc(std::move(d.topo), Rng(3));
  const Result<PathId> path = tc.allocate_path(SliceId{1}, d.src, d.dst,
                                               DataRate::mbps(40.0), Duration::millis(5.0));
  ASSERT_TRUE(path.ok()) << path.error().message;
  const PathReservation* reservation = tc.find_path(path.value());
  ASSERT_NE(reservation, nullptr);
  EXPECT_EQ(reservation->route.hops(), 2u);
  // One flow rule per traversed node.
  EXPECT_EQ(tc.flow_table().rules_for(SliceId{1}).size(), 2u);
  // Residual dropped on the chosen links.
  EXPECT_DOUBLE_EQ(tc.reserved_on(reservation->route.links[0]).as_mbps(), 40.0);
}

TEST(TransportController, DelayBoundRejectsWithSlaError) {
  Diamond d;
  TransportController tc(std::move(d.topo), Rng(3));
  // Fast path has 2 ms, slow 10 ms. Demand forces the slow path but the
  // bound only allows the fast one.
  const Result<PathId> path = tc.allocate_path(SliceId{1}, d.src, d.dst,
                                               DataRate::mbps(500.0), Duration::millis(5.0));
  ASSERT_FALSE(path.ok());
  EXPECT_EQ(path.error().code, Errc::sla_unsatisfiable);
}

TEST(TransportController, CapacityExhaustionRejects) {
  Diamond d;
  TransportController tc(std::move(d.topo), Rng(3));
  ASSERT_TRUE(tc.allocate_path(SliceId{1}, d.src, d.dst, DataRate::mbps(900.0),
                               Duration::millis(20.0)).ok());
  ASSERT_TRUE(tc.allocate_path(SliceId{2}, d.src, d.dst, DataRate::mbps(90.0),
                               Duration::millis(20.0)).ok());
  const Result<PathId> third = tc.allocate_path(SliceId{3}, d.src, d.dst,
                                                DataRate::mbps(200.0), Duration::millis(20.0));
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.error().code, Errc::insufficient_capacity);
}

TEST(TransportController, SecondSliceTakesAlternatePath) {
  Diamond d;
  TransportController tc(std::move(d.topo), Rng(3));
  const Result<PathId> first = tc.allocate_path(SliceId{1}, d.src, d.dst,
                                                DataRate::mbps(80.0), Duration::millis(20.0));
  ASSERT_TRUE(first.ok());
  // Fast path has only 20 Mb/s residual left; 50 Mb/s must go bottom.
  const Result<PathId> second = tc.allocate_path(SliceId{2}, d.src, d.dst,
                                                 DataRate::mbps(50.0), Duration::millis(20.0));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(tc.find_path(second.value())->route.total_delay, Duration::millis(10.0));
}

TEST(TransportController, ResizeGrowAndShrink) {
  Diamond d;
  TransportController tc(std::move(d.topo), Rng(3));
  const Result<PathId> path = tc.allocate_path(SliceId{1}, d.src, d.dst,
                                               DataRate::mbps(40.0), Duration::millis(5.0));
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(tc.resize_path(path.value(), DataRate::mbps(90.0)).ok());
  EXPECT_DOUBLE_EQ(tc.find_path(path.value())->reserved.as_mbps(), 90.0);
  // Growing past the 100 Mb/s links fails and leaves state unchanged.
  EXPECT_EQ(tc.resize_path(path.value(), DataRate::mbps(150.0)).error().code,
            Errc::insufficient_capacity);
  EXPECT_DOUBLE_EQ(tc.find_path(path.value())->reserved.as_mbps(), 90.0);
  EXPECT_TRUE(tc.resize_path(path.value(), DataRate::mbps(10.0)).ok());
  const LinkId first_link = tc.find_path(path.value())->route.links[0];
  EXPECT_DOUBLE_EQ(tc.reserved_on(first_link).as_mbps(), 10.0);
}

TEST(TransportController, ReleaseFreesEverything) {
  Diamond d;
  TransportController tc(std::move(d.topo), Rng(3));
  const Result<PathId> path = tc.allocate_path(SliceId{1}, d.src, d.dst,
                                               DataRate::mbps(40.0), Duration::millis(5.0));
  ASSERT_TRUE(path.ok());
  const LinkId used = tc.find_path(path.value())->route.links[0];
  ASSERT_TRUE(tc.release_path(path.value()).ok());
  EXPECT_EQ(tc.find_path(path.value()), nullptr);
  EXPECT_DOUBLE_EQ(tc.reserved_on(used).as_mbps(), 0.0);
  EXPECT_TRUE(tc.flow_table().rules_for(SliceId{1}).empty());
  EXPECT_EQ(tc.release_path(path.value()).error().code, Errc::not_found);
}

TEST(TransportController, ServeEpochCapsAtReservation) {
  Diamond d;
  TransportController tc(std::move(d.topo), Rng(3));
  const Result<PathId> path = tc.allocate_path(SliceId{1}, d.src, d.dst,
                                               DataRate::mbps(40.0), Duration::millis(5.0));
  ASSERT_TRUE(path.ok());
  const std::vector<std::pair<PathId, DataRate>> demands = {
      {path.value(), DataRate::mbps(60.0)}};
  const auto reports = tc.serve_epoch(demands, SimTime::from_seconds(1.0));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_LE(reports[0].served.as_mbps(), 40.0 + 1e-9);
  EXPECT_GT(reports[0].experienced_delay, Duration::zero());
}

TEST(TransportController, FadingDegradationTriggersReroute) {
  // mmWave primary + fiber alternate: after enough epochs a deep fade
  // must have pushed at least one reroute onto the fiber path.
  Topology topo;
  const NodeId s = topo.add_node("s", NodeKind::enb_gateway);
  const NodeId t = topo.add_node("t", NodeKind::core_gateway);
  topo.add_link(s, t, LinkTechnology::mmwave, DataRate::mbps(1000.0), Duration::millis(1.0));
  topo.add_link(s, t, LinkTechnology::fiber, DataRate::mbps(1000.0), Duration::millis(3.0));
  TransportController tc(std::move(topo), Rng(23));

  const Result<PathId> path = tc.allocate_path(SliceId{1}, s, t, DataRate::mbps(500.0),
                                               Duration::millis(10.0));
  ASSERT_TRUE(path.ok());
  const std::vector<std::pair<PathId, DataRate>> demands = {
      {path.value(), DataRate::mbps(450.0)}};
  for (int i = 0; i < 2000 && tc.reroutes() == 0; ++i) {
    (void)tc.serve_epoch(demands, SimTime::from_seconds(i));
  }
  EXPECT_GT(tc.reroutes(), 0u);
}

TEST(TransportController, RestApiTopologyAndPaths) {
  Diamond d;
  const NodeId src = d.src;
  const NodeId dst = d.dst;
  TransportController tc(std::move(d.topo), Rng(3));
  net::RestBus bus;
  bus.register_service("transport", tc.make_router());

  const Result<json::Value> topo_doc = bus.get_json("transport", "/topology");
  ASSERT_TRUE(topo_doc.ok());
  EXPECT_EQ(topo_doc.value().find("nodes")->as_array().size(), 4u);
  EXPECT_EQ(topo_doc.value().find("links")->as_array().size(), 4u);

  json::Value req;
  req["slice"] = 9;
  req["src"] = static_cast<double>(src.value());
  req["dst"] = static_cast<double>(dst.value());
  req["rate_mbps"] = 30.0;
  req["max_delay_ms"] = 5.0;
  const Result<json::Value> created = bus.call_json("transport", net::Method::post, "/paths", req);
  ASSERT_TRUE(created.ok()) << created.error().message;
  const auto path_id = static_cast<std::uint64_t>(created.value().find("path")->as_number());
  EXPECT_EQ(created.value().find("hops")->as_int(), 2);

  json::Value resize;
  resize["rate_mbps"] = 50.0;
  ASSERT_TRUE(bus.call_json("transport", net::Method::put,
                            "/paths/" + std::to_string(path_id), resize).ok());
  ASSERT_TRUE(bus.call_json("transport", net::Method::del,
                            "/paths/" + std::to_string(path_id), json::Value(nullptr)).ok());
  EXPECT_FALSE(bus.call_json("transport", net::Method::del,
                             "/paths/" + std::to_string(path_id), json::Value(nullptr)).ok());
}

}  // namespace
}  // namespace slices::transport
