// Mobility & handover subsystem: direct Field mechanics, the
// controller's batched handover path, determinism of mobile scenarios
// (thread-count invariance, record/replay parity, cross-region roaming
// through the federation), and the zero-allocation contract of the
// steady-state step+apply loop.
//
// Like epoch_alloc_test, this binary overrides global operator
// new/delete to count allocations on every thread — it must stay its
// own test executable.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "federation/runner.hpp"
#include "mobility/field.hpp"
#include "ran/cell.hpp"
#include "ran/controller.hpp"
#include "scenario/recorder.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};
std::atomic<bool> g_counting{false};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace slices {
namespace {

/// RAII window during which global allocations are counted.
class AllocationCounter {
 public:
  AllocationCounter() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~AllocationCounter() { g_counting.store(false, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t count() const {
    return g_allocations.load(std::memory_order_relaxed);
  }
};

/// A small RAN + Field pair: 16 cells, `plmns` installed, population
/// spawned through one sync_population call.
struct FieldFixture {
  ran::RanController ran;  // no registry: telemetry growth is out of scope
  std::vector<PlmnId> plmns;
  std::unique_ptr<mobility::Field> field;

  explicit FieldFixture(std::size_t n_plmns, std::size_t ues_per_slice,
                        std::uint64_t seed = 7) {
    for (std::size_t c = 0; c < 16; ++c) {
      ran.add_cell(ran::Cell(CellId{c + 1}, "cell-" + std::to_string(c),
                             ran::Bandwidth::mhz20, ran::SharingPolicy::pooled));
    }
    for (std::size_t p = 0; p < n_plmns; ++p) {
      const PlmnId plmn{p + 1};
      EXPECT_TRUE(ran.install_plmn(plmn).ok());
      plmns.push_back(plmn);
    }
    mobility::FieldConfig config;
    config.seed = seed;
    config.ues_per_slice = ues_per_slice;
    field = std::make_unique<mobility::Field>(config, &ran);
    field->sync_population(plmns, [](PlmnId) { return 0.0; });
  }

  ran::HandoverStats epoch(int minute) {
    const SimTime now = SimTime::from_micros(static_cast<std::int64_t>(minute) * 60'000'000);
    field->step(now);
    return field->apply(now);
  }
};

// ------------------------------------------------------- Field basics

TEST(MobilityField, SpawnsOnePopulationPerLivePlmn) {
  FieldFixture fx(3, 40);
  EXPECT_EQ(fx.field->population(), 120u);
  // Every spawned UE is really attached in the RAN.
  std::size_t attached = 0;
  for (const PlmnId plmn : fx.plmns) attached += fx.ran.attached_ues(plmn);
  EXPECT_EQ(attached, 120u);
  // A second sync with the same set is a no-op.
  fx.field->sync_population(fx.plmns, [](PlmnId) { return 0.0; });
  EXPECT_EQ(fx.field->population(), 120u);
}

TEST(MobilityField, SyncDrainsDeadPlmns) {
  FieldFixture fx(3, 40);
  ASSERT_EQ(fx.field->population(), 120u);
  // PLMN 2's slice tears down: only 1 and 3 stay live.
  const std::vector<PlmnId> live{PlmnId{1}, PlmnId{3}};
  fx.field->sync_population(live, [](PlmnId) { return 0.0; });
  EXPECT_EQ(fx.field->population(), 80u);
  EXPECT_EQ(fx.ran.attached_ues(PlmnId{2}), 0u);
}

TEST(MobilityField, WalkProducesHandoversDeterministically) {
  FieldFixture a(2, 60);
  FieldFixture b(2, 60);
  std::uint64_t ho_a = 0, ho_b = 0;
  for (int minute = 1; minute <= 30; ++minute) {
    ho_a += a.epoch(minute).successes;
    ho_b += b.epoch(minute).successes;
  }
  EXPECT_GT(ho_a, 0u) << "a 30-minute walk must cross cell boundaries";
  EXPECT_EQ(ho_a, ho_b) << "same seed, same walk, same handovers";
  EXPECT_EQ(a.ran.handover_totals().attempts, b.ran.handover_totals().attempts);
  // A different seed walks differently.
  FieldFixture c(2, 60, /*seed=*/8);
  std::uint64_t ho_c = 0;
  for (int minute = 1; minute <= 30; ++minute) ho_c += c.epoch(minute).successes;
  EXPECT_NE(ho_a, ho_c);
}

TEST(MobilityField, StadiumStormPullsUesTowardTheFocusCell) {
  FieldFixture fx(2, 100);
  fx.field->add_storm(mobility::StormKind::stadium_ingress, SimTime::from_micros(0),
                      SimTime::from_micros(3'600'000'000), /*fraction=*/0.8,
                      /*cell_index=*/5);
  EXPECT_EQ(fx.field->storm_count(), 1u);
  for (int minute = 1; minute <= 60; ++minute) (void)fx.epoch(minute);
  // The focus cell holds far more than the uniform share (200/16 ≈ 12).
  const ran::Cell& focus = fx.ran.cell_at(5);
  EXPECT_GT(focus.attached_total(), 60u);
}

// ----------------------------------------------- apply_handovers path

TEST(RanHandover, BatchMovesUesAndCountsOutcomes) {
  ran::RanController ran;
  ran.add_cell(ran::Cell(CellId{1}, "a", ran::Bandwidth::mhz20, ran::SharingPolicy::pooled));
  ran.add_cell(ran::Cell(CellId{2}, "b", ran::Bandwidth::mhz20, ran::SharingPolicy::pooled));
  const PlmnId plmn{1};
  ASSERT_TRUE(ran.install_plmn(plmn).ok());
  const Result<UeId> ue = ran.attach_ue_at(CellId{1}, plmn, ran::Cqi{10});
  ASSERT_TRUE(ue.ok());

  const std::vector<ran::HandoverRequest> batch{
      {ue.value(), CellId{2}},   // moves
      {ue.value(), CellId{2}},   // already there after the first -> drop
      {UeId{999}, CellId{2}},    // unknown UE -> drop
      {ue.value(), CellId{77}},  // unknown cell -> drop
  };
  std::vector<std::uint8_t> outcomes(batch.size(), 0xff);
  const ran::HandoverStats stats =
      ran.apply_handovers(batch, SimTime::from_micros(1), outcomes);
  EXPECT_EQ(stats.attempts, 4u);
  EXPECT_EQ(stats.successes, 1u);
  EXPECT_EQ(stats.drops, 3u);
  EXPECT_EQ(outcomes[0], 1u);
  EXPECT_EQ(outcomes[1], 0u);
  EXPECT_EQ(outcomes[2], 0u);
  EXPECT_EQ(outcomes[3], 0u);
  EXPECT_EQ(ran.ue_cell(ue.value()), CellId{2});
  EXPECT_EQ(ran.handover_totals().attempts, 4u);
}

// ------------------------------------------------ zero-alloc contract

TEST(MobilityAlloc, SteadyStateStepAndApplyAllocateNothing) {
  FieldFixture fx(3, 400);  // 1200 UEs on 16 cells: every epoch hands over
  // Warm-up: grow the transition batch and controller scratch to their
  // high-water marks.
  for (int minute = 1; minute <= 60; ++minute) (void)fx.epoch(minute);
  AllocationCounter counter;
  std::uint64_t handovers = 0;
  for (int minute = 61; minute <= 80; ++minute) handovers += fx.epoch(minute).successes;
  EXPECT_GT(handovers, 0u) << "the guard must observe real handover work";
  EXPECT_EQ(counter.count(), 0u)
      << "steady-state Field::step + Field::apply must not touch the heap";
}

// --------------------------------------------- fig2 scenario parity

constexpr const char* kFig2Mobility = R"({
  "name": "mobility_fig2",
  "seed": 11,
  "duration_hours": 6,
  "topology": "fig2",
  "orchestrator": {"monitoring_period_minutes": 5, "overbooking": {"enabled": true}},
  "workload": {"arrivals_per_hour": 2.0, "min_duration_hours": 2, "max_duration_hours": 5},
  "mobility": {
    "cell_spacing_m": 400,
    "ues_per_slice": 30,
    "speed_classes": {"automotive": 14, "cloud_gaming": 0.9},
    "storms": [
      {"kind": "stadium_ingress", "at_hours": 1, "duration_minutes": 60,
       "fraction": 0.6, "cell": "b"},
      {"kind": "stadium_egress", "at_hours": 2.5, "duration_minutes": 45,
       "fraction": 0.6, "cell": "b"}
    ]
  },
  "targets": {"min_admission_rate": 0.1}
})";

scenario::Scenario parse_fig2() {
  Result<scenario::Scenario> parsed = scenario::parse_scenario(kFig2Mobility);
  EXPECT_TRUE(parsed.ok()) << (parsed.ok() ? "" : parsed.error().message);
  return parsed.ok() ? std::move(parsed.value()) : scenario::Scenario{};
}

scenario::Scorecard run_fig2(scenario::RunOptions options,
                             scenario::Scenario scenario = parse_fig2()) {
  scenario::ScenarioRunner runner(std::move(scenario), options);
  Result<scenario::Scorecard> card = runner.run();
  EXPECT_TRUE(card.ok()) << (card.ok() ? "" : card.error().message);
  return card.ok() ? std::move(card.value()) : scenario::Scorecard{};
}

TEST(MobilityScenario, ScorecardCarriesHandoverCounters) {
  const scenario::Scorecard card = run_fig2({});
  EXPECT_TRUE(card.mobility_enabled);
  EXPECT_GT(card.handover_attempts, 0u);
  EXPECT_EQ(card.handover_attempts, card.handover_successes + card.handover_drops);
  EXPECT_NE(card.serialize().find("\"mobility\""), std::string::npos);
}

TEST(MobilityScenario, ThreadCountDoesNotChangeTheScorecard) {
  scenario::RunOptions one, three, four;
  one.epoch_threads = 1;
  three.epoch_threads = 3;
  four.epoch_threads = 4;
  const std::string serial = run_fig2(one).serialize();
  EXPECT_EQ(serial, run_fig2(three).serialize());
  EXPECT_EQ(serial, run_fig2(four).serialize());
}

TEST(MobilityScenario, RecordedRunReplaysToTheSameScorecard) {
  const std::string path = testing::TempDir() + "/mobility_replay.journal";
  scenario::RunOptions recording;
  recording.record_path = path;
  const std::string original = run_fig2(recording).serialize();

  Result<scenario::Scenario> replayed = scenario::load_recording(path);
  ASSERT_TRUE(replayed.ok()) << replayed.error().message;
  EXPECT_FALSE(replayed.value().generate_arrivals);
  EXPECT_TRUE(replayed.value().mobility.enabled)
      << "the journal must preserve the mobility block";

  scenario::RunOptions threaded;
  threaded.epoch_threads = 3;
  EXPECT_EQ(run_fig2(threaded, std::move(replayed.value())).serialize(), original);
  std::remove(path.c_str());
}

// ------------------------------------------- metro roaming parity

constexpr const char* kMetroMobility = R"({
  "name": "mobility_metro",
  "seed": 17,
  "duration_hours": 6,
  "topology": "metro",
  "federation": {
    "regions": 2,
    "cells_per_region": 4,
    "edge_dcs_per_region": 1,
    "hosts_per_dc": 2,
    "backbone": "ring",
    "backbone_gbps": 40
  },
  "orchestrator": {"monitoring_period_minutes": 5, "overbooking": {"enabled": true}},
  "workload": {"arrivals_per_hour": 3.0, "min_duration_hours": 2, "max_duration_hours": 5},
  "mobility": {
    "cell_spacing_m": 400,
    "ues_per_slice": 40,
    "speed_classes": {"automotive": 14},
    "storms": [
      {"kind": "commuter_wave", "at_hours": 1, "duration_minutes": 120, "fraction": 0.6},
      {"kind": "stadium_ingress", "at_hours": 3.5, "duration_minutes": 60,
       "fraction": 0.5, "cell": "c2", "region": "r1"}
    ]
  },
  "targets": {"min_admission_rate": 0.1}
})";

scenario::Scenario parse_metro() {
  Result<scenario::Scenario> parsed = scenario::parse_scenario(kMetroMobility);
  EXPECT_TRUE(parsed.ok()) << (parsed.ok() ? "" : parsed.error().message);
  return parsed.ok() ? std::move(parsed.value()) : scenario::Scenario{};
}

federation::FederatedScorecard run_metro(federation::FederatedRunOptions options,
                                         scenario::Scenario scenario = parse_metro()) {
  federation::FederatedRunner runner(std::move(scenario), options);
  Result<federation::FederatedScorecard> card = runner.run();
  EXPECT_TRUE(card.ok()) << (card.ok() ? "" : card.error().message);
  return card.ok() ? std::move(card.value()) : federation::FederatedScorecard{};
}

TEST(MobilityFederation, CommuterWaveRoamsAcrossRegionsDeterministically) {
  federation::FederatedRunOptions one;
  one.epoch_threads = 1;
  const federation::FederatedScorecard card = run_metro(one);
  EXPECT_TRUE(card.mobility_enabled);
  EXPECT_GT(card.handover_successes, 0u) << "intra-region handovers must happen";
  EXPECT_GT(card.roam_attempts, 0u) << "the commuter wave must reach the border";
  EXPECT_GT(card.roam_admitted, 0u) << "the neighbour region must re-attach roamers";
  ASSERT_EQ(card.regions.size(), 2u);

  federation::FederatedRunOptions four;
  four.epoch_threads = 4;
  EXPECT_EQ(run_metro(four).serialize(), card.serialize());
}

TEST(MobilityFederation, RecordedMetroRunReplaysToTheSameScorecard) {
  const std::string path = testing::TempDir() + "/mobility_metro_replay.journal";
  federation::FederatedRunOptions recording;
  recording.record_path = path;
  const std::string original = run_metro(recording).serialize();

  Result<scenario::Scenario> replayed = scenario::load_recording(path);
  ASSERT_TRUE(replayed.ok()) << replayed.error().message;
  EXPECT_FALSE(replayed.value().generate_arrivals);
  EXPECT_TRUE(replayed.value().mobility.enabled);

  federation::FederatedRunOptions threaded;
  threaded.epoch_threads = 3;
  EXPECT_EQ(run_metro(threaded, std::move(replayed.value())).serialize(), original);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace slices
