// Unit tests for the HTTP/1.1 message codec.

#include <gtest/gtest.h>

#include "net/http.hpp"

namespace slices::net {
namespace {

TEST(HttpMethod, ParseKnownMethods) {
  EXPECT_EQ(parse_method("GET"), Method::get);
  EXPECT_EQ(parse_method("POST"), Method::post);
  EXPECT_EQ(parse_method("PUT"), Method::put);
  EXPECT_EQ(parse_method("DELETE"), Method::del);
  EXPECT_EQ(parse_method("PATCH"), Method::patch);
  EXPECT_EQ(parse_method("BREW"), std::nullopt);
  EXPECT_EQ(parse_method("get"), std::nullopt);  // methods are case-sensitive
}

TEST(HttpRequest, EncodeProducesWireFormat) {
  Request req;
  req.method = Method::post;
  req.target = "/slices";
  req.headers.insert_or_assign("Content-Type", "application/json");
  req.body = R"({"x":1})";
  const std::string wire = req.encode();
  EXPECT_EQ(wire.substr(0, 25), "POST /slices HTTP/1.1\r\nCo");
  EXPECT_NE(wire.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{\"x\":1}"), std::string::npos);
}

TEST(HttpRequest, RoundTrip) {
  Request req;
  req.method = Method::put;
  req.target = "/allocations/42?force=1";
  req.headers.insert_or_assign("X-Trace", "abc");
  req.body = "payload";
  const Result<Request> parsed = parse_request(req.encode());
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().method, Method::put);
  EXPECT_EQ(parsed.value().target, "/allocations/42?force=1");
  EXPECT_EQ(parsed.value().body, "payload");
  EXPECT_EQ(parsed.value().headers.at("X-Trace"), "abc");
}

TEST(HttpRequest, HeadersAreCaseInsensitive) {
  const Result<Request> parsed =
      parse_request("GET / HTTP/1.1\r\ncontent-length: 0\r\nX-Thing: v\r\n\r\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().headers.find("x-thing")->second, "v");
  EXPECT_EQ(parsed.value().headers.find("X-THING")->second, "v");
}

TEST(HttpRequest, EmptyBodyWithoutContentLength) {
  const Result<Request> parsed = parse_request("GET /x HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().body.empty());
}

class HttpRequestRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(HttpRequestRejects, MalformedRequests) {
  const Result<Request> parsed = parse_request(GetParam());
  ASSERT_FALSE(parsed.ok()) << "accepted: " << GetParam();
  EXPECT_EQ(parsed.error().code, Errc::protocol_error);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, HttpRequestRejects,
    ::testing::Values(
        "",                                           // empty
        "GET /x HTTP/1.1",                            // no header terminator
        "BREW /x HTTP/1.1\r\n\r\n",                   // unknown method
        "GET /x HTTP/2\r\n\r\n",                      // unsupported version
        "GET x HTTP/1.1\r\n\r\n",                     // not origin-form
        "GET  HTTP/1.1\r\n\r\n",                      // missing target
        "GET /x HTTP/1.1\r\nBadHeader\r\n\r\n",       // field without colon
        "GET /x HTTP/1.1\r\n: v\r\n\r\n",             // empty field name
        "GET /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nabc",    // short body
        "GET /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nabc",    // long body
        "GET /x HTTP/1.1\r\nContent-Length: x\r\n\r\n",       // bad length
        "GET /x HTTP/1.1\r\n\r\nbody"));              // body w/o length

TEST(HttpResponse, RoundTrip) {
  Response resp = Response::json(Status::created, R"({"id":9})");
  const Result<Response> parsed = parse_response(resp.encode());
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().status, Status::created);
  EXPECT_EQ(parsed.value().body, R"({"id":9})");
  EXPECT_EQ(parsed.value().headers.at("Content-Type"), "application/json");
}

TEST(HttpResponse, FromErrorMapsStatusAndEscapes) {
  const Response resp =
      Response::from_error(make_error(Errc::insufficient_capacity, "only \"3\" left"));
  EXPECT_EQ(resp.status, Status::conflict);
  EXPECT_NE(resp.body.find("insufficient_capacity"), std::string::npos);
  EXPECT_NE(resp.body.find("\\\"3\\\""), std::string::npos);
}

TEST(HttpResponse, RejectsMalformedStatusLine) {
  EXPECT_FALSE(parse_response("NOPE 200 OK\r\n\r\n").ok());
  EXPECT_FALSE(parse_response("HTTP/1.1 9 X\r\n\r\n").ok());
  EXPECT_FALSE(parse_response("HTTP/1.1\r\n\r\n").ok());
}

TEST(HttpStatus, ErrcMappingIsConsistent) {
  // Round-trippable pairs: the client recovers the server-side category.
  for (const Errc code : {Errc::invalid_argument, Errc::not_found, Errc::conflict,
                          Errc::sla_unsatisfiable, Errc::unavailable}) {
    EXPECT_EQ(errc_from_status(status_from_errc(code)), code);
  }
  // Capacity shortage surfaces as conflict on the wire.
  EXPECT_EQ(status_from_errc(Errc::insufficient_capacity), Status::conflict);
  EXPECT_EQ(status_from_errc(Errc::internal), Status::internal_error);
}

TEST(HttpStatus, ReasonPhrases) {
  EXPECT_EQ(reason_phrase(Status::ok), "OK");
  EXPECT_EQ(reason_phrase(Status::not_found), "Not Found");
  EXPECT_EQ(reason_phrase(Status::service_unavailable), "Service Unavailable");
}

}  // namespace
}  // namespace slices::net
