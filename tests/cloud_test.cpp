// Unit tests for the cloud substrate: placement, oversubscription, Heat
// stacks (atomicity), the cloud controller and its REST facade.

#include <gtest/gtest.h>

#include "cloud/controller.hpp"
#include "cloud/datacenter.hpp"
#include "cloud/heat.hpp"
#include "net/rest_bus.hpp"

namespace slices::cloud {
namespace {

Flavor small() { return {"small", ComputeCapacity{2.0, 2048.0, 20.0}}; }
Flavor large() { return {"large", ComputeCapacity{12.0, 16384.0, 100.0}}; }

Datacenter make_dc(double ratio = 1.0) {
  Datacenter dc(DatacenterId{1}, "dc", DatacenterKind::edge, ratio);
  dc.add_host("h1", ComputeCapacity{16.0, 32768.0, 500.0});
  dc.add_host("h2", ComputeCapacity{16.0, 32768.0, 500.0});
  return dc;
}

// --- Datacenter / placement --------------------------------------------------

TEST(Datacenter, CapacityAggregation) {
  Datacenter dc = make_dc();
  EXPECT_DOUBLE_EQ(dc.total_capacity().vcpus, 32.0);
  EXPECT_DOUBLE_EQ(dc.free_capacity().vcpus, 32.0);
  EXPECT_TRUE(dc.can_fit(large().footprint));
  EXPECT_FALSE(dc.can_fit(ComputeCapacity{17.0, 1024.0, 10.0}));  // > one host
}

TEST(Datacenter, BootAndDeleteVm) {
  Datacenter dc = make_dc();
  const Result<VmId> vm = dc.boot_vm("vm1", small());
  ASSERT_TRUE(vm.ok());
  EXPECT_EQ(dc.vm_count(), 1u);
  EXPECT_DOUBLE_EQ(dc.used_capacity().vcpus, 2.0);
  ASSERT_NE(dc.find_vm(vm.value()), nullptr);
  EXPECT_TRUE(dc.delete_vm(vm.value()).ok());
  EXPECT_DOUBLE_EQ(dc.used_capacity().vcpus, 0.0);
  EXPECT_EQ(dc.delete_vm(vm.value()).error().code, Errc::not_found);
}

TEST(Datacenter, RejectsWhenNoHostFits) {
  Datacenter dc = make_dc();
  // Fill both hosts with 14 vCPUs each; a 12-vCPU VM no longer fits.
  ASSERT_TRUE(dc.boot_vm("a", Flavor{"f", ComputeCapacity{14.0, 1024.0, 10.0}}).ok());
  ASSERT_TRUE(dc.boot_vm("b", Flavor{"f", ComputeCapacity{14.0, 1024.0, 10.0}}).ok());
  const Result<VmId> vm = dc.boot_vm("c", large());
  ASSERT_FALSE(vm.ok());
  EXPECT_EQ(vm.error().code, Errc::insufficient_capacity);
}

TEST(Datacenter, MemoryIsNeverOversubscribed) {
  Datacenter dc(DatacenterId{1}, "dc", DatacenterKind::core, /*ratio=*/4.0);
  dc.add_host("h", ComputeCapacity{4.0, 8192.0, 100.0});
  // vCPU ratio allows 16 scheduled vCPUs, but memory still caps.
  ASSERT_TRUE(dc.boot_vm("a", Flavor{"f", ComputeCapacity{8.0, 4096.0, 10.0}}).ok());
  ASSERT_TRUE(dc.boot_vm("b", Flavor{"f", ComputeCapacity{8.0, 4096.0, 10.0}}).ok());
  // CPU would still fit (16 scheduled), memory would not.
  EXPECT_FALSE(dc.boot_vm("c", Flavor{"f", ComputeCapacity{0.5, 1024.0, 1.0}}).ok());
}

TEST(Datacenter, CpuOversubscriptionRatioRaisesCapacity) {
  Datacenter strict = make_dc(1.0);
  Datacenter loose = make_dc(2.0);
  const Flavor big{"big", ComputeCapacity{10.0, 1024.0, 10.0}};
  // 3 x 10 vCPU on 2x16 physical: strict fits only 2, loose fits 3.
  ASSERT_TRUE(strict.boot_vm("a", big).ok());
  ASSERT_TRUE(strict.boot_vm("b", big).ok());
  EXPECT_FALSE(strict.boot_vm("c", big).ok());
  ASSERT_TRUE(loose.boot_vm("a", big).ok());
  ASSERT_TRUE(loose.boot_vm("b", big).ok());
  EXPECT_TRUE(loose.boot_vm("c", big).ok());
}

TEST(Placement, PoliciesChooseDifferentHosts) {
  // h1 partially used, h2 empty: best_fit -> h1, worst_fit -> h2.
  const auto build = [] {
    Datacenter dc(DatacenterId{1}, "dc", DatacenterKind::edge);
    dc.add_host("h1", ComputeCapacity{16.0, 32768.0, 500.0});
    dc.add_host("h2", ComputeCapacity{16.0, 32768.0, 500.0});
    const Result<VmId> seed = dc.boot_vm("seed", Flavor{"f", ComputeCapacity{8.0, 1024.0, 10.0}},
                                         PlacementPolicy::first_fit);
    EXPECT_TRUE(seed.ok());
    return dc;
  };

  Datacenter best = build();
  const Result<VmId> bf = best.boot_vm("x", small(), PlacementPolicy::best_fit);
  ASSERT_TRUE(bf.ok());
  EXPECT_EQ(best.find_vm(bf.value())->host, best.hosts()[0].id);

  Datacenter worst = build();
  const Result<VmId> wf = worst.boot_vm("x", small(), PlacementPolicy::worst_fit);
  ASSERT_TRUE(wf.ok());
  EXPECT_EQ(worst.find_vm(wf.value())->host, worst.hosts()[1].id);
}

// --- StackEngine -----------------------------------------------------------------

TEST(StackEngine, CreateAndDeleteStack) {
  Datacenter dc = make_dc();
  StackEngine engine({&dc});
  StackTemplate tmpl;
  tmpl.name = "app";
  tmpl.resources = {{"web", small()}, {"db", small()}};
  EXPECT_DOUBLE_EQ(tmpl.footprint().vcpus, 4.0);

  const Result<StackId> stack = engine.create_stack(dc.id(), tmpl);
  ASSERT_TRUE(stack.ok());
  EXPECT_EQ(engine.stack_count(), 1u);
  EXPECT_EQ(dc.vm_count(), 2u);
  ASSERT_NE(engine.find_stack(stack.value()), nullptr);
  EXPECT_EQ(engine.find_stack(stack.value())->resources.size(), 2u);

  ASSERT_TRUE(engine.delete_stack(stack.value()).ok());
  EXPECT_EQ(dc.vm_count(), 0u);
  EXPECT_DOUBLE_EQ(dc.used_capacity().vcpus, 0.0);
  EXPECT_EQ(engine.delete_stack(stack.value()).error().code, Errc::not_found);
}

TEST(StackEngine, CreationIsAtomic) {
  Datacenter dc(DatacenterId{1}, "dc", DatacenterKind::edge);
  dc.add_host("h", ComputeCapacity{8.0, 32768.0, 500.0});
  StackEngine engine({&dc});
  StackTemplate tmpl;
  tmpl.name = "too-big";
  tmpl.resources = {{"a", Flavor{"f", ComputeCapacity{6.0, 1024.0, 10.0}}},
                    {"b", Flavor{"f", ComputeCapacity{6.0, 1024.0, 10.0}}}};
  const Result<StackId> stack = engine.create_stack(dc.id(), tmpl);
  ASSERT_FALSE(stack.ok());
  EXPECT_EQ(stack.error().code, Errc::insufficient_capacity);
  // Rollback: the first VM must not linger.
  EXPECT_EQ(dc.vm_count(), 0u);
  EXPECT_DOUBLE_EQ(dc.used_capacity().vcpus, 0.0);
}

TEST(StackEngine, UnknownDatacenterRejected) {
  Datacenter dc = make_dc();
  StackEngine engine({&dc});
  EXPECT_EQ(engine.create_stack(DatacenterId{99}, StackTemplate{}).error().code,
            Errc::not_found);
}

TEST(DeployTimeModel, ScalesWithVmCount) {
  const DeployTimeModel model;
  StackTemplate one;
  one.resources = {{"a", small()}};
  StackTemplate four;
  four.resources = {{"a", small()}, {"b", small()}, {"c", small()}, {"d", small()}};
  EXPECT_GT(model.estimate(four), model.estimate(one));
  EXPECT_EQ(model.estimate(four) - model.estimate(one), model.per_vm * 3.0);
}

// --- CloudController --------------------------------------------------------------

CloudController make_controller(telemetry::MonitorRegistry* reg = nullptr) {
  CloudController controller(reg);
  const DatacenterId edge = controller.add_datacenter("edge", DatacenterKind::edge);
  controller.add_host(edge, "e1", ComputeCapacity{16.0, 32768.0, 500.0});
  const DatacenterId core = controller.add_datacenter("core", DatacenterKind::core, 2.0);
  controller.add_host(core, "c1", ComputeCapacity{64.0, 262144.0, 4000.0});
  controller.finalize();
  return controller;
}

TEST(CloudController, ChooseDatacenterPrefersCore) {
  CloudController controller = make_controller();
  const ComputeCapacity footprint{4.0, 4096.0, 40.0};
  const auto chosen = controller.choose_datacenter(footprint, /*require_edge=*/false);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(controller.find_datacenter(*chosen)->kind(), DatacenterKind::core);
}

TEST(CloudController, RequireEdgeRestrictsChoice) {
  CloudController controller = make_controller();
  const auto chosen =
      controller.choose_datacenter(ComputeCapacity{4.0, 4096.0, 40.0}, /*require_edge=*/true);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(controller.find_datacenter(*chosen)->kind(), DatacenterKind::edge);
  // Bigger than the edge host: nothing qualifies when edge is required.
  EXPECT_FALSE(controller.choose_datacenter(ComputeCapacity{32.0, 4096.0, 40.0}, true)
                   .has_value());
}

TEST(CloudController, FallsBackToEdgeWhenCoreFull) {
  CloudController controller = make_controller();
  const Datacenter* core = controller.find_datacenter_by_name("core");
  ASSERT_NE(core, nullptr);
  // Exhaust the core (128 schedulable vCPUs via ratio 2.0).
  StackTemplate filler;
  filler.name = "filler";
  filler.resources = {{"x", Flavor{"f", ComputeCapacity{128.0, 65536.0, 100.0}}}};
  ASSERT_TRUE(controller.create_stack(core->id(), filler).ok());
  const auto chosen =
      controller.choose_datacenter(ComputeCapacity{8.0, 8192.0, 50.0}, false);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(controller.find_datacenter(*chosen)->kind(), DatacenterKind::edge);
}

TEST(CloudController, RecordEpochPublishesUtilization) {
  telemetry::MonitorRegistry registry;
  CloudController controller = make_controller(&registry);
  controller.record_epoch(SimTime::from_seconds(10.0));
  const Datacenter* edge = controller.find_datacenter_by_name("edge");
  const std::string key = "cloud.dc." + std::to_string(edge->id().value()) + ".utilization";
  ASSERT_NE(registry.find_series(key), nullptr);
  EXPECT_DOUBLE_EQ(registry.find_gauge(key)->value(), 0.0);
}

TEST(CloudController, RestApiStackLifecycle) {
  CloudController controller = make_controller();
  net::RestBus bus;
  bus.register_service("cloud", controller.make_router());

  const Result<json::Value> dcs = bus.get_json("cloud", "/datacenters");
  ASSERT_TRUE(dcs.ok());
  ASSERT_EQ(dcs.value().find("datacenters")->as_array().size(), 2u);

  const auto core_id = static_cast<std::uint64_t>(
      dcs.value().find("datacenters")->as_array()[1].find("id")->as_number());

  json::Value req;
  req["datacenter"] = static_cast<double>(core_id);
  req["name"] = "demo-stack";
  json::Array resources;
  json::Value vm;
  vm["name"] = "app";
  vm["vcpus"] = 4.0;
  vm["memory_mb"] = 4096.0;
  vm["disk_gb"] = 40.0;
  resources.push_back(vm);
  req["resources"] = resources;

  const Result<json::Value> created = bus.call_json("cloud", net::Method::post, "/stacks", req);
  ASSERT_TRUE(created.ok()) << created.error().message;
  EXPECT_GT(created.value().find("deploy_seconds")->as_number(), 0.0);
  const auto stack_id =
      static_cast<std::uint64_t>(created.value().find("stack")->as_number());

  ASSERT_TRUE(bus.call_json("cloud", net::Method::del,
                            "/stacks/" + std::to_string(stack_id), json::Value(nullptr)).ok());
  EXPECT_FALSE(bus.call_json("cloud", net::Method::del,
                             "/stacks/" + std::to_string(stack_id), json::Value(nullptr)).ok());
}

}  // namespace
}  // namespace slices::cloud
