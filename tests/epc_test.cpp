// Unit tests for the virtualized EPC: templates, deployment lifecycle,
// attach gating and resource accounting.

#include <gtest/gtest.h>

#include "cloud/controller.hpp"
#include "epc/epc.hpp"

namespace slices::epc {
namespace {

struct Fixture {
  cloud::CloudController cloud;
  DatacenterId dc;
  EpcManager manager{&cloud};

  Fixture() {
    dc = cloud.add_datacenter("core", cloud::DatacenterKind::core);
    cloud.add_host(dc, "h1", ComputeCapacity{64.0, 262144.0, 4000.0});
    cloud.finalize();
  }
};

TEST(EpcTemplate, HasFourVnfs) {
  const cloud::StackTemplate tmpl = epc_stack_template(SliceId{1}, DataRate::mbps(20.0));
  ASSERT_EQ(tmpl.resources.size(), 4u);
  EXPECT_EQ(tmpl.resources[0].name, "mme");
  EXPECT_EQ(tmpl.resources[1].name, "hss");
  EXPECT_EQ(tmpl.resources[2].name, "spgw_c");
  EXPECT_EQ(tmpl.resources[3].name, "spgw_u");
  EXPECT_NE(tmpl.name.find("epc-slice-1"), std::string::npos);
}

TEST(EpcTemplate, SpgwUScalesWithContractedRate) {
  const cloud::Flavor small = default_flavor(VnfKind::spgw_u, DataRate::mbps(10.0));
  const cloud::Flavor big = default_flavor(VnfKind::spgw_u, DataRate::mbps(200.0));
  EXPECT_LT(small.footprint.vcpus, big.footprint.vcpus);
  EXPECT_DOUBLE_EQ(small.footprint.vcpus, 1.0);
  EXPECT_DOUBLE_EQ(big.footprint.vcpus, 8.0);
  // Control-plane VNFs do not scale with rate.
  EXPECT_EQ(default_flavor(VnfKind::mme, DataRate::mbps(10.0)).footprint.vcpus,
            default_flavor(VnfKind::mme, DataRate::mbps(200.0)).footprint.vcpus);
}

TEST(EpcManager, DeployActivateRemoveLifecycle) {
  Fixture f;
  const Result<Duration> deploy = f.manager.deploy(SliceId{1}, f.dc, DataRate::mbps(20.0));
  ASSERT_TRUE(deploy.ok());
  // "After few seconds": 4 VNFs at ~2 s each plus base.
  EXPECT_GT(deploy.value(), Duration::seconds(5.0));
  EXPECT_LT(deploy.value(), Duration::seconds(30.0));

  const EpcInstance* instance = f.manager.find(SliceId{1});
  ASSERT_NE(instance, nullptr);
  EXPECT_EQ(instance->state, EpcState::deploying);

  ASSERT_TRUE(f.manager.activate(SliceId{1}).ok());
  EXPECT_EQ(f.manager.find(SliceId{1})->state, EpcState::active);
  EXPECT_EQ(f.manager.activate(SliceId{1}).error().code, Errc::conflict);

  ASSERT_TRUE(f.manager.remove(SliceId{1}).ok());
  EXPECT_EQ(f.manager.find(SliceId{1}), nullptr);
  EXPECT_EQ(f.manager.remove(SliceId{1}).error().code, Errc::not_found);
  // Stack resources were freed.
  EXPECT_DOUBLE_EQ(f.cloud.find_datacenter(f.dc)->used_capacity().vcpus, 0.0);
}

TEST(EpcManager, DuplicateDeployRejected) {
  Fixture f;
  ASSERT_TRUE(f.manager.deploy(SliceId{1}, f.dc, DataRate::mbps(20.0)).ok());
  EXPECT_EQ(f.manager.deploy(SliceId{1}, f.dc, DataRate::mbps(20.0)).error().code,
            Errc::conflict);
}

TEST(EpcManager, DeployFailsWhenDatacenterFull) {
  Fixture f;
  // A slice needing ~40 spgw-u vCPUs on top of control plane: the host
  // has 64, so the second such EPC cannot fit.
  ASSERT_TRUE(f.manager.deploy(SliceId{1}, f.dc, DataRate::mbps(900.0)).ok());
  const Result<Duration> second = f.manager.deploy(SliceId{2}, f.dc, DataRate::mbps(900.0));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, Errc::insufficient_capacity);
  EXPECT_EQ(f.manager.find(SliceId{2}), nullptr);
}

TEST(EpcManager, AttachGatedOnActivation) {
  Fixture f;
  // No EPC at all.
  EXPECT_EQ(f.manager.attach_ue(SliceId{1}).error().code, Errc::not_found);

  ASSERT_TRUE(f.manager.deploy(SliceId{1}, f.dc, DataRate::mbps(20.0)).ok());
  // Still deploying — the demo's "after few seconds" gating.
  EXPECT_EQ(f.manager.attach_ue(SliceId{1}).error().code, Errc::unavailable);

  ASSERT_TRUE(f.manager.activate(SliceId{1}).ok());
  const Result<Duration> latency = f.manager.attach_ue(SliceId{1});
  ASSERT_TRUE(latency.ok());
  EXPECT_EQ(latency.value(), f.manager.timings().attach + f.manager.timings().bearer_setup);
  EXPECT_EQ(f.manager.find(SliceId{1})->attached_ues, 1u);
  EXPECT_EQ(f.manager.find(SliceId{1})->active_bearers, 1u);
}

TEST(EpcManager, DetachAccounting) {
  Fixture f;
  ASSERT_TRUE(f.manager.deploy(SliceId{1}, f.dc, DataRate::mbps(20.0)).ok());
  ASSERT_TRUE(f.manager.activate(SliceId{1}).ok());
  EXPECT_EQ(f.manager.detach_ue(SliceId{1}).error().code, Errc::invalid_argument);
  ASSERT_TRUE(f.manager.attach_ue(SliceId{1}).ok());
  EXPECT_TRUE(f.manager.detach_ue(SliceId{1}).ok());
  EXPECT_EQ(f.manager.find(SliceId{1})->attached_ues, 0u);
}

TEST(EpcManager, IndependentInstancesPerSlice) {
  Fixture f;
  ASSERT_TRUE(f.manager.deploy(SliceId{1}, f.dc, DataRate::mbps(20.0)).ok());
  ASSERT_TRUE(f.manager.deploy(SliceId{2}, f.dc, DataRate::mbps(40.0)).ok());
  EXPECT_EQ(f.manager.instance_count(), 2u);
  ASSERT_TRUE(f.manager.activate(SliceId{1}).ok());
  EXPECT_EQ(f.manager.find(SliceId{1})->state, EpcState::active);
  EXPECT_EQ(f.manager.find(SliceId{2})->state, EpcState::deploying);
  ASSERT_TRUE(f.manager.remove(SliceId{1}).ok());
  EXPECT_EQ(f.manager.instance_count(), 1u);
  EXPECT_NE(f.manager.find(SliceId{2}), nullptr);
}

}  // namespace
}  // namespace slices::epc
