// Tests for the dashboard renderers and JSON snapshot.

#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "dashboard/dashboard.hpp"
#include "dashboard/table.hpp"

namespace slices::dashboard {
namespace {

TEST(TextTable, RendersAlignedBox) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta-long", "23456"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha     | 1     |"), std::string::npos);
  EXPECT_NE(out.find("+-----------+-------+"), std::string::npos);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(5.0, 0), "5");
}

struct DashboardFixture : ::testing::Test {
  void SetUp() override {
    tb = core::make_testbed(21);
    (void)tb->orchestrator->submit(
        core::SliceSpec::from_profile(traffic::profile_for(traffic::Vertical::embb_video),
                                      Duration::hours(12.0)),
        traffic::make_traffic(traffic::Vertical::embb_video, Rng(5)));
    // Give the broker learning time before the second request arrives,
    // as in the live demo — the first slice's idle capacity is what
    // admits the second.
    tb->simulator.run_for(Duration::hours(3.0));
    (void)tb->orchestrator->submit(
        core::SliceSpec::from_profile(traffic::profile_for(traffic::Vertical::automotive),
                                      Duration::hours(12.0)),
        traffic::make_traffic(traffic::Vertical::automotive, Rng(6)));
    tb->simulator.run_for(Duration::hours(2.0));
  }

  std::unique_ptr<core::Testbed> tb;
};

TEST_F(DashboardFixture, SlicePanelListsEverySubmission) {
  Dashboard dash(tb.get());
  const std::string panel = dash.render_slices();
  EXPECT_NE(panel.find("embb_video"), std::string::npos);
  EXPECT_NE(panel.find("automotive"), std::string::npos);
  EXPECT_NE(panel.find("active"), std::string::npos);
}

TEST_F(DashboardFixture, DomainPanelShowsAllThreeDomains) {
  Dashboard dash(tb.get());
  const std::string panel = dash.render_domains();
  EXPECT_NE(panel.find("enb-a"), std::string::npos);
  EXPECT_NE(panel.find("mmwave"), std::string::npos);
  EXPECT_NE(panel.find("edge-dc"), std::string::npos);
  EXPECT_NE(panel.find("core-dc"), std::string::npos);
}

TEST_F(DashboardFixture, HeadlineShowsGainAndMoney) {
  Dashboard dash(tb.get());
  const std::string panel = dash.render_headline();
  EXPECT_NE(panel.find("multiplexing gain"), std::string::npos);
  EXPECT_NE(panel.find("net revenue"), std::string::npos);
  // Both slices are active after two hours; the row reads "| 2".
  const std::size_t row = panel.find("active slices");
  ASSERT_NE(row, std::string::npos);
  EXPECT_NE(panel.find("| 2", row), std::string::npos);
}

TEST_F(DashboardFixture, BusPanelShowsControllerTraffic) {
  Dashboard dash(tb.get());
  const std::string panel = dash.render_bus();
  EXPECT_NE(panel.find("ran"), std::string::npos);
  EXPECT_NE(panel.find("transport"), std::string::npos);
  EXPECT_NE(panel.find("cloud"), std::string::npos);
}

TEST_F(DashboardFixture, RenderAllConcatenatesPanels) {
  Dashboard dash(tb.get());
  const std::string all = dash.render_all();
  for (const char* heading : {"== Overbooking gains vs penalties ==", "== Network slices ==",
                              "== Domain utilization ==", "== Recent events ==",
                              "== REST bus =="}) {
    EXPECT_NE(all.find(heading), std::string::npos) << heading;
  }
}

TEST_F(DashboardFixture, SnapshotIsValidJsonWithAllSections) {
  Dashboard dash(tb.get());
  const json::Value snap = dash.snapshot();
  const Result<json::Value> reparsed = json::parse(json::serialize(snap));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_NE(snap.find("headline"), nullptr);
  EXPECT_NE(snap.find("slices"), nullptr);
  EXPECT_NE(snap.find("telemetry"), nullptr);
  EXPECT_EQ(snap.find("slices")->as_array().size(), 2u);
  EXPECT_GE(snap.find("headline")->find("multiplexing_gain")->as_number(), 1.0);
}

}  // namespace
}  // namespace slices::dashboard
