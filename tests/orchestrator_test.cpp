// End-to-end tests of the orchestrator on the Fig. 2 testbed: admission,
// multi-domain embedding with rollback, lifecycle, overbooking effects,
// SLA accounting and the dashboard REST API.

#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "traffic/verticals.hpp"

namespace slices::core {
namespace {

SliceSpec spec_for(traffic::Vertical v, double hours) {
  return SliceSpec::from_profile(traffic::profile_for(v), Duration::hours(hours));
}

std::unique_ptr<traffic::TrafficModel> workload_for(traffic::Vertical v, std::uint64_t seed) {
  return traffic::make_traffic(v, Rng(seed));
}

TEST(Orchestrator, AdmitInstallActivateExpireLifecycle) {
  auto tb = make_testbed(1);
  const RequestId request = tb->orchestrator->submit(
      spec_for(traffic::Vertical::embb_video, 2.0),
      workload_for(traffic::Vertical::embb_video, 7));

  const SliceRecord* record = tb->orchestrator->find_by_request(request);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->state, SliceState::installing);

  // Domains are configured immediately; the slice is serving only after
  // the install timeline elapses.
  EXPECT_TRUE(tb->ran.plmn_installed(record->embedding.plmn));
  EXPECT_NE(tb->ran.find_allocation(record->embedding.plmn), nullptr);
  ASSERT_EQ(record->embedding.paths.size(), 1u);
  EXPECT_NE(tb->transport->find_path(record->embedding.paths.front()), nullptr);
  EXPECT_NE(tb->epc->find(record->id), nullptr);

  tb->simulator.run_for(Duration::seconds(30.0));
  EXPECT_EQ(record->state, SliceState::active);
  EXPECT_EQ(tb->epc->find(record->id)->state, epc::EpcState::active);

  // Runs to expiry; everything is released.
  tb->simulator.run_for(Duration::hours(3.0));
  EXPECT_EQ(record->state, SliceState::expired);
  EXPECT_FALSE(tb->ran.plmn_installed(record->embedding.plmn));
  EXPECT_EQ(tb->epc->find(record->id), nullptr);
  EXPECT_EQ(tb->ran.find_cell(tb->cell_a)->reserved_prbs().value, 0);
  EXPECT_TRUE(tb->transport->flow_table().rules_for(record->id).empty());
}

TEST(Orchestrator, InstallTimelineMatchesDemoScale) {
  auto tb = make_testbed(2);
  (void)tb->orchestrator->submit(spec_for(traffic::Vertical::embb_video, 1.0));
  const InstallTimeline timeline = tb->orchestrator->last_install_timeline();
  // "After few seconds" — dominated by the EPC stack deployment.
  EXPECT_GT(timeline.total(), Duration::seconds(5.0));
  EXPECT_LT(timeline.total(), Duration::seconds(60.0));
  EXPECT_GT(timeline.epc_deploy, timeline.plmn_install);
  EXPECT_GT(timeline.epc_deploy, timeline.path_setup);
}

TEST(Orchestrator, RejectsWhenRadioExhaustedAndRollsBackCleanly) {
  OrchestratorConfig config;
  config.overbooking.enabled = false;
  auto tb = make_testbed(3, config);

  // Fill the RAN: each 20 MHz cell at CQI 10 carries ~41 Mb/s.
  const double total = tb->ran.total_capacity().as_mbps();
  SliceSpec big = spec_for(traffic::Vertical::embb_video, 4.0);
  big.expected_throughput = DataRate::mbps(total * 0.7);
  ASSERT_EQ(tb->orchestrator->find_by_request(tb->orchestrator->submit(big))->state,
            SliceState::installing);

  const std::size_t stacks_before = tb->cloud.engine().stack_count();
  const int prbs_before = tb->ran.find_cell(tb->cell_a)->reserved_prbs().value +
                          tb->ran.find_cell(tb->cell_b)->reserved_prbs().value;

  SliceSpec second = spec_for(traffic::Vertical::embb_video, 4.0);
  second.expected_throughput = DataRate::mbps(total * 0.7);
  const RequestId rejected = tb->orchestrator->submit(second);
  EXPECT_EQ(tb->orchestrator->find_by_request(rejected)->state, SliceState::rejected);

  // Rollback: no partial state left anywhere.
  EXPECT_EQ(tb->cloud.engine().stack_count(), stacks_before);
  EXPECT_EQ(tb->ran.find_cell(tb->cell_a)->reserved_prbs().value +
                tb->ran.find_cell(tb->cell_b)->reserved_prbs().value,
            prbs_before);
  const OrchestratorSummary summary = tb->orchestrator->summary();
  EXPECT_EQ(summary.admitted_total, 1u);
  EXPECT_EQ(summary.rejected_total, 1u);
}

TEST(Orchestrator, EdgeRequirementRejectsWhenEdgeFull) {
  auto tb = make_testbed(4);
  // Exhaust the edge DC (64 vCPUs over two 32-vCPU hosts).
  cloud::StackTemplate filler;
  filler.name = "filler";
  filler.resources = {{"a", cloud::Flavor{"f", ComputeCapacity{30.0, 1024.0, 10.0}}},
                      {"b", cloud::Flavor{"f", ComputeCapacity{30.0, 1024.0, 10.0}}}};
  ASSERT_TRUE(tb->cloud.create_stack(tb->edge_dc, filler).ok());

  // Automotive requires the edge; it must be rejected now.
  const RequestId request =
      tb->orchestrator->submit(spec_for(traffic::Vertical::automotive, 2.0));
  EXPECT_EQ(tb->orchestrator->find_by_request(request)->state, SliceState::rejected);

  // A core-eligible vertical still gets in.
  const RequestId ok = tb->orchestrator->submit(spec_for(traffic::Vertical::iot_metering, 2.0));
  EXPECT_EQ(tb->orchestrator->find_by_request(ok)->state, SliceState::installing);
}

TEST(Orchestrator, LatencyBoundSelectsDatacenterAndPath) {
  auto tb = make_testbed(5);
  const RequestId request =
      tb->orchestrator->submit(spec_for(traffic::Vertical::automotive, 2.0));
  const SliceRecord* record = tb->orchestrator->find_by_request(request);
  ASSERT_EQ(record->state, SliceState::installing);
  EXPECT_EQ(record->embedding.datacenter, tb->edge_dc);
  const transport::PathReservation* path =
      tb->transport->find_path(record->embedding.paths.front());
  ASSERT_NE(path, nullptr);
  EXPECT_LE(path->route.total_delay, record->spec.max_latency);
}

TEST(Orchestrator, EdgePlacementGetsBreakoutLeg) {
  auto tb = make_testbed(17);
  // Automotive requires the edge -> two transport legs: access at the
  // contract rate, breakout to the core at the configured fraction.
  const RequestId request =
      tb->orchestrator->submit(spec_for(traffic::Vertical::automotive, 2.0));
  const SliceRecord* record = tb->orchestrator->find_by_request(request);
  ASSERT_EQ(record->state, SliceState::installing);
  ASSERT_EQ(record->embedding.paths.size(), 2u);

  const transport::PathReservation* access =
      tb->transport->find_path(record->embedding.paths[0]);
  const transport::PathReservation* breakout =
      tb->transport->find_path(record->embedding.paths[1]);
  ASSERT_NE(access, nullptr);
  ASSERT_NE(breakout, nullptr);
  EXPECT_EQ(access->dst, tb->edge_gateway);
  EXPECT_EQ(breakout->src, tb->edge_gateway);
  EXPECT_EQ(breakout->dst, tb->core_gateway);
  EXPECT_DOUBLE_EQ(access->reserved.as_mbps(), record->spec.expected_throughput.as_mbps());
  EXPECT_DOUBLE_EQ(
      breakout->reserved.as_mbps(),
      record->spec.expected_throughput.as_mbps() *
          tb->orchestrator->config().edge_breakout_fraction);

  // Core placements keep a single leg.
  const RequestId core_req =
      tb->orchestrator->submit(spec_for(traffic::Vertical::iot_metering, 2.0));
  EXPECT_EQ(tb->orchestrator->find_by_request(core_req)->embedding.paths.size(), 1u);

  // Teardown releases both legs.
  ASSERT_TRUE(tb->orchestrator->terminate(record->id).ok());
  EXPECT_TRUE(tb->transport->paths_of(record->id).empty());
}

TEST(Orchestrator, TerminateReleasesEarly) {
  auto tb = make_testbed(6);
  const RequestId request = tb->orchestrator->submit(
      spec_for(traffic::Vertical::embb_video, 10.0),
      workload_for(traffic::Vertical::embb_video, 3));
  const SliceRecord* record = tb->orchestrator->find_by_request(request);
  tb->simulator.run_for(Duration::minutes(60.0));
  ASSERT_EQ(record->state, SliceState::active);

  ASSERT_TRUE(tb->orchestrator->terminate(record->id).ok());
  EXPECT_EQ(record->state, SliceState::terminated);
  EXPECT_EQ(tb->epc->find(record->id), nullptr);
  EXPECT_EQ(tb->ran.find_cell(tb->cell_a)->reserved_prbs().value, 0);
  EXPECT_FALSE(tb->orchestrator->terminate(record->id).ok());
  EXPECT_EQ(tb->orchestrator->terminate(SliceId{999}).error().code, Errc::not_found);
}

TEST(Orchestrator, OverbookingShrinksReservationsOfIdleSlices) {
  OrchestratorConfig config;
  config.overbooking.warmup_observations = 4;
  auto tb = make_testbed(7, config);

  // A slice that contracts 60 Mb/s but offers ~6.
  SliceSpec spec = spec_for(traffic::Vertical::embb_video, 48.0);
  const RequestId request = tb->orchestrator->submit(
      spec, std::make_unique<traffic::ConstantTraffic>(6.0));
  const SliceRecord* record = tb->orchestrator->find_by_request(request);
  ASSERT_EQ(record->state, SliceState::installing);

  tb->simulator.run_for(Duration::hours(8.0));
  ASSERT_EQ(record->state, SliceState::active);
  EXPECT_LT(record->reserved, record->spec.expected_throughput * 0.5);
  EXPECT_GT(tb->orchestrator->summary().multiplexing_gain, 1.5);
}

TEST(Orchestrator, ParallelEpochServingMatchesSingleThreaded) {
  // Same scenario at epoch_threads 1 and 4 — the pooled epoch path must
  // produce bit-identical aggregates (the contract determinism_test pins
  // network-wide; this is the orchestrator-level spot check, and the
  // scenario TSan runs to race-check the sharded serving).
  const auto run = [](std::size_t threads) {
    OrchestratorConfig config;
    config.overbooking.warmup_observations = 4;
    config.epoch_threads = threads;
    auto tb = make_testbed(11, config);
    for (std::uint64_t i = 0; i < 3; ++i) {
      SliceSpec spec = spec_for(traffic::Vertical::embb_video, 24.0);
      spec.expected_throughput = DataRate::mbps(10.0);
      (void)tb->orchestrator->submit(
          spec, workload_for(traffic::Vertical::embb_video, 100 + i));
      tb->simulator.run_for(Duration::hours(1.0));
    }
    tb->simulator.run_for(Duration::hours(12.0));
    return tb->orchestrator->summary();
  };

  const OrchestratorSummary solo = run(1);
  const OrchestratorSummary pooled = run(4);
  EXPECT_EQ(solo.active_slices, pooled.active_slices);
  EXPECT_EQ(solo.admitted_total, pooled.admitted_total);
  EXPECT_EQ(solo.reserved_total, pooled.reserved_total);
  EXPECT_EQ(solo.earned, pooled.earned);
  EXPECT_EQ(solo.penalties, pooled.penalties);
  EXPECT_EQ(solo.violation_epochs, pooled.violation_epochs);
  EXPECT_EQ(solo.reconfigurations, pooled.reconfigurations);
}

TEST(Orchestrator, OverbookingAdmitsMoreSlicesThanPeakReservation) {
  const auto count_admitted = [](bool overbooking) {
    OrchestratorConfig config;
    config.overbooking.enabled = overbooking;
    config.overbooking.warmup_observations = 4;
    auto tb = make_testbed(8, config);

    // Lightly loaded long-lived slices contracting most of the RAN.
    std::size_t admitted = 0;
    for (int i = 0; i < 8; ++i) {
      SliceSpec spec = spec_for(traffic::Vertical::embb_video, 72.0);
      spec.expected_throughput = DataRate::mbps(20.0);
      const RequestId request = tb->orchestrator->submit(
          spec, std::make_unique<traffic::ConstantTraffic>(2.0));
      if (tb->orchestrator->find_by_request(request)->state != SliceState::rejected) {
        ++admitted;
      }
      // Give the broker time to learn before the next request arrives.
      tb->simulator.run_for(Duration::hours(3.0));
    }
    return admitted;
  };

  const std::size_t with_ob = count_admitted(true);
  const std::size_t without_ob = count_admitted(false);
  EXPECT_GT(with_ob, without_ob);
  // With overbooking the radio is no longer binding; the MOCN broadcast
  // list (6 PLMNs per cell, the slice<->PLMN mapping of the demo) is.
  EXPECT_EQ(with_ob, 6u);
  // Without overbooking the ~69 Mb/s RAN fits only three 20 Mb/s peaks.
  EXPECT_EQ(without_ob, 3u);
}

TEST(Orchestrator, SlaViolationsAreChargedWhenDemandExceedsService) {
  OrchestratorConfig config;
  // Aggressive overbooking with zero safety to force violations.
  config.overbooking.risk_quantile = 0.0;
  config.overbooking.floor_fraction = 0.01;
  config.overbooking.warmup_observations = 4;
  config.overbooking.headroom = 1.0;
  auto tb = make_testbed(9, config);

  // Bursty e-health traffic is unforecastable: quiet then spiking.
  const RequestId request = tb->orchestrator->submit(
      spec_for(traffic::Vertical::ehealth, 48.0),
      workload_for(traffic::Vertical::ehealth, 17));
  const SliceRecord* record = tb->orchestrator->find_by_request(request);
  ASSERT_EQ(record->state, SliceState::installing);

  tb->simulator.run_for(Duration::hours(47.0));
  const OrchestratorSummary summary = tb->orchestrator->summary();
  EXPECT_GT(summary.violation_epochs, 0u);
  EXPECT_GT(summary.penalties, Money::zero());
  EXPECT_EQ(summary.penalties,
            record->spec.penalty_per_violation * static_cast<double>(summary.violation_epochs));
  // The demo's economics: gains should still dominate penalties here.
  EXPECT_GT(summary.net, Money::zero());
}

TEST(Orchestrator, RevenueAccruesPerActiveHour) {
  auto tb = make_testbed(10);
  SliceSpec spec = spec_for(traffic::Vertical::iot_metering, 4.0);
  const RequestId request =
      tb->orchestrator->submit(spec, workload_for(traffic::Vertical::iot_metering, 5));
  const SliceRecord* record = tb->orchestrator->find_by_request(request);
  tb->simulator.run_for(Duration::hours(6.0));
  ASSERT_EQ(record->state, SliceState::expired);
  const SliceLedgerEntry* entry = tb->orchestrator->ledger().find(record->id);
  ASSERT_NE(entry, nullptr);
  // ~4 h at the profile price, +- one epoch of accrual skew.
  const double expected = traffic::profile_for(traffic::Vertical::iot_metering).price_per_hour * 4.0;
  EXPECT_NEAR(entry->earned.as_units(), expected, expected * 0.10);
}

TEST(Orchestrator, RestDashboardApi) {
  auto tb = make_testbed(11);

  // Submit through the REST facade, exactly like the demo dashboard.
  json::Value request;
  request["vertical"] = "ehealth";
  request["duration_hours"] = 2.0;
  request["price_per_hour"] = 99.0;
  const Result<json::Value> created =
      tb->bus.call_json("orchestrator", net::Method::post, "/slices", request);
  ASSERT_TRUE(created.ok()) << created.error().message;
  EXPECT_EQ(created.value().find("state")->as_string(), "installing");
  const auto slice_id =
      static_cast<std::uint64_t>(created.value().find("slice")->as_number());

  const Result<json::Value> listed = tb->bus.get_json("orchestrator", "/slices");
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed.value().find("slices")->as_array().size(), 1u);

  const Result<json::Value> one =
      tb->bus.get_json("orchestrator", "/slices/" + std::to_string(slice_id));
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value().find("vertical")->as_string(), "ehealth");
  EXPECT_DOUBLE_EQ(one.value().find("contracted_mbps")->as_number(), 10.0);

  const Result<json::Value> report = tb->bus.get_json("orchestrator", "/report");
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report.value().find("admitted_total")->as_number(), 1.0);

  // Terminate over REST.
  ASSERT_TRUE(tb->bus.call_json("orchestrator", net::Method::del,
                                "/slices/" + std::to_string(slice_id),
                                json::Value(nullptr)).ok());
  EXPECT_EQ(tb->bus.get_json("orchestrator", "/slices/" + std::to_string(slice_id))
                .value()
                .find("state")
                ->as_string(),
            "terminated");

  // Unknown vertical and unknown slice produce proper errors.
  json::Value bad;
  bad["vertical"] = "underwater-basket-weaving";
  bad["duration_hours"] = 1.0;
  EXPECT_FALSE(tb->bus.call_json("orchestrator", net::Method::post, "/slices", bad).ok());
  EXPECT_FALSE(tb->bus.get_json("orchestrator", "/slices/424242").ok());
}

TEST(Orchestrator, RejectedSubmissionReturns409OverRest) {
  OrchestratorConfig config;
  config.overbooking.enabled = false;
  auto tb = make_testbed(12, config);

  json::Value request;
  request["vertical"] = "embb_video";
  request["duration_hours"] = 2.0;
  request["throughput_mbps"] = 100000.0;  // impossible
  const Result<json::Value> resp =
      tb->bus.call_json("orchestrator", net::Method::post, "/slices", request);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.error().code, Errc::conflict);
}

TEST(Orchestrator, MonitoringPollsDomainsOverRest) {
  auto tb = make_testbed(13);
  (void)tb->orchestrator->submit(spec_for(traffic::Vertical::embb_video, 4.0),
                                 workload_for(traffic::Vertical::embb_video, 1));
  tb->simulator.run_for(Duration::hours(1.0));
  // Every epoch polls /metrics of ran, transport and cloud.
  const auto stats = tb->bus.stats();
  for (const char* domain : {"ran", "transport", "cloud"}) {
    const auto it = stats.find(domain);
    ASSERT_NE(it, stats.end()) << domain;
    EXPECT_GE(it->second.requests, 4u) << domain;
    EXPECT_EQ(it->second.responses_error, 0u) << domain;
  }
}

TEST(Orchestrator, BatchedAdmissionAuctionsPendingRequests) {
  OrchestratorConfig config;
  config.admission_window = Duration::hours(1.0);
  config.admission_policy = "knapsack_revenue";
  config.overbooking.enabled = false;
  auto tb = make_testbed(15, config);

  // Three requests that cannot all fit (~69 Mb/s RAN): a low-value fat
  // one and two high-value ones. The knapsack auction must prefer value,
  // not arrival order.
  SliceSpec cheap_fat = spec_for(traffic::Vertical::embb_video, 10.0);
  cheap_fat.expected_throughput = DataRate::mbps(60.0);
  cheap_fat.price_per_hour = Money::units(1.0);
  const RequestId fat = tb->orchestrator->submit(cheap_fat);

  SliceSpec valuable_a = spec_for(traffic::Vertical::cloud_gaming, 10.0);
  valuable_a.expected_throughput = DataRate::mbps(30.0);
  const RequestId a = tb->orchestrator->submit(valuable_a);

  SliceSpec valuable_b = spec_for(traffic::Vertical::automotive, 10.0);
  valuable_b.expected_throughput = DataRate::mbps(20.0);
  const RequestId b = tb->orchestrator->submit(valuable_b);

  // Nothing is decided before the auction fires.
  EXPECT_EQ(tb->orchestrator->find_by_request(fat)->state, SliceState::pending);
  EXPECT_EQ(tb->orchestrator->find_by_request(a)->state, SliceState::pending);

  tb->simulator.run_for(Duration::hours(1.5));
  EXPECT_EQ(tb->orchestrator->find_by_request(fat)->state, SliceState::rejected);
  EXPECT_EQ(tb->orchestrator->find_by_request(a)->state, SliceState::active);
  EXPECT_EQ(tb->orchestrator->find_by_request(b)->state, SliceState::active);

  // An FCFS broker on the same sequence admits the fat request first
  // and starves the valuable pair.
  OrchestratorConfig fcfs_config = config;
  fcfs_config.admission_policy = "fcfs";
  auto tb2 = make_testbed(15, fcfs_config);
  const RequestId fat2 = tb2->orchestrator->submit(cheap_fat);
  const RequestId a2 = tb2->orchestrator->submit(valuable_a);
  (void)tb2->orchestrator->submit(valuable_b);
  tb2->simulator.run_for(Duration::hours(1.5));
  EXPECT_EQ(tb2->orchestrator->find_by_request(fat2)->state, SliceState::active);
  EXPECT_EQ(tb2->orchestrator->find_by_request(a2)->state, SliceState::rejected);
}

TEST(Orchestrator, PatientRequestsWaitForCapacity) {
  OrchestratorConfig config;
  config.admission_window = Duration::hours(1.0);
  config.admission_patience = Duration::hours(8.0);
  config.overbooking.enabled = false;
  auto tb = make_testbed(18, config);

  // A short-lived but very valuable slice fills the RAN (the auction
  // must prefer it); a patient second request loses the first auctions
  // but lands once the first slice expires.
  SliceSpec big = spec_for(traffic::Vertical::embb_video, 2.0);
  big.expected_throughput = DataRate::mbps(50.0);
  big.price_per_hour = Money::units(1000.0);
  (void)tb->orchestrator->submit(big);

  SliceSpec waiting = spec_for(traffic::Vertical::cloud_gaming, 4.0);
  waiting.expected_throughput = DataRate::mbps(40.0);
  const RequestId patient = tb->orchestrator->submit(waiting);

  tb->simulator.run_for(Duration::hours(1.5));
  // First auction happened: the big slice is in, the patient one queued.
  EXPECT_EQ(tb->orchestrator->find_by_request(patient)->state, SliceState::pending);

  tb->simulator.run_for(Duration::hours(3.0));  // big slice expired at ~2 h
  EXPECT_EQ(tb->orchestrator->find_by_request(patient)->state, SliceState::active);

  // Without patience the same sequence rejects immediately.
  OrchestratorConfig impatient = config;
  impatient.admission_patience = Duration::zero();
  auto tb2 = make_testbed(18, impatient);
  (void)tb2->orchestrator->submit(big);
  const RequestId bounced = tb2->orchestrator->submit(waiting);
  tb2->simulator.run_for(Duration::hours(1.5));
  EXPECT_EQ(tb2->orchestrator->find_by_request(bounced)->state, SliceState::rejected);
}

TEST(Orchestrator, PatienceDeadlineEventuallyRejects) {
  OrchestratorConfig config;
  config.admission_window = Duration::hours(1.0);
  config.admission_patience = Duration::hours(3.0);
  config.overbooking.enabled = false;
  auto tb = make_testbed(19, config);

  SliceSpec big = spec_for(traffic::Vertical::embb_video, 100.0);  // never expires
  big.expected_throughput = DataRate::mbps(50.0);
  (void)tb->orchestrator->submit(big);
  SliceSpec waiting = spec_for(traffic::Vertical::cloud_gaming, 4.0);
  waiting.expected_throughput = DataRate::mbps(40.0);
  const RequestId doomed = tb->orchestrator->submit(waiting);

  tb->simulator.run_for(Duration::hours(2.5));
  EXPECT_EQ(tb->orchestrator->find_by_request(doomed)->state, SliceState::pending);
  tb->simulator.run_for(Duration::hours(2.0));  // patience exceeded
  EXPECT_EQ(tb->orchestrator->find_by_request(doomed)->state, SliceState::rejected);
}

TEST(Orchestrator, InstallJitterVariesTimelines) {
  auto tb = make_testbed(16);
  std::set<std::int64_t> totals;
  for (int i = 0; i < 5; ++i) {
    const RequestId request =
        tb->orchestrator->submit(spec_for(traffic::Vertical::iot_metering, 1.0));
    const SliceRecord* record = tb->orchestrator->find_by_request(request);
    ASSERT_EQ(record->state, SliceState::installing);
    totals.insert(tb->orchestrator->last_install_timeline().total().as_micros());
    ASSERT_TRUE(tb->orchestrator->terminate(record->id).ok());
  }
  EXPECT_GT(totals.size(), 1u);  // jitter produces distinct timelines
}

TEST(Orchestrator, OverbookingShrinksBothTransportLegsProportionally) {
  OrchestratorConfig config;
  config.overbooking.warmup_observations = 4;
  auto tb = make_testbed(20, config);

  // Edge-placed slice (two legs) with near-idle demand.
  SliceSpec spec = spec_for(traffic::Vertical::automotive, 48.0);
  const RequestId request =
      tb->orchestrator->submit(spec, std::make_unique<traffic::ConstantTraffic>(2.0));
  const SliceRecord* record = tb->orchestrator->find_by_request(request);
  ASSERT_EQ(record->embedding.paths.size(), 2u);

  tb->simulator.run_for(Duration::hours(6.0));
  ASSERT_EQ(record->state, SliceState::active);
  ASSERT_LT(record->reserved, record->spec.expected_throughput * 0.5);  // shrunk

  const transport::PathReservation* access =
      tb->transport->find_path(record->embedding.paths[0]);
  const transport::PathReservation* breakout =
      tb->transport->find_path(record->embedding.paths[1]);
  EXPECT_NEAR(access->reserved.as_mbps(), record->reserved.as_mbps(), 1e-6);
  EXPECT_NEAR(breakout->reserved.as_mbps(),
              record->reserved.as_mbps() * tb->orchestrator->config().edge_breakout_fraction,
              1e-6);
}

TEST(Orchestrator, MonitoringSurvivesControllerLoss) {
  auto tb = make_testbed(21);
  (void)tb->orchestrator->submit(spec_for(traffic::Vertical::iot_metering, 12.0),
                                 workload_for(traffic::Vertical::iot_metering, 2));
  tb->simulator.run_for(Duration::hours(1.0));

  // The RAN controller's REST endpoint vanishes mid-run (crash). The
  // orchestration loop must keep running: serving, SLA accounting and
  // the other domains' polls continue.
  tb->bus.unregister_service("ran");
  tb->simulator.run_for(Duration::hours(3.0));

  const OrchestratorSummary summary = tb->orchestrator->summary();
  EXPECT_EQ(summary.active_slices, 1u);
  EXPECT_GT(summary.earned, Money::zero());
  // Transport/cloud polls kept flowing.
  EXPECT_GT(tb->bus.stats().at("transport").requests, 12u);
}

TEST(Orchestrator, SummaryGainIsOneWithoutOverbooking) {
  OrchestratorConfig config;
  config.overbooking.enabled = false;
  auto tb = make_testbed(14, config);
  (void)tb->orchestrator->submit(spec_for(traffic::Vertical::embb_video, 12.0),
                                 std::make_unique<traffic::ConstantTraffic>(1.0));
  tb->simulator.run_for(Duration::hours(6.0));
  const OrchestratorSummary summary = tb->orchestrator->summary();
  EXPECT_EQ(summary.active_slices, 1u);
  EXPECT_NEAR(summary.multiplexing_gain, 1.0, 1e-9);
}

}  // namespace
}  // namespace slices::core
