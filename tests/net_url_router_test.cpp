// Unit tests for URL parsing and REST routing.

#include <gtest/gtest.h>

#include "net/router.hpp"
#include "net/url.hpp"

namespace slices::net {
namespace {

// --- percent encoding/decoding ---------------------------------------------

TEST(Url, PercentDecodeBasics) {
  EXPECT_EQ(percent_decode("plain").value(), "plain");
  EXPECT_EQ(percent_decode("a%20b").value(), "a b");
  EXPECT_EQ(percent_decode("a+b").value(), "a b");
  EXPECT_EQ(percent_decode("%2Fetc%2F").value(), "/etc/");
  EXPECT_EQ(percent_decode("%41%62").value(), "Ab");
}

TEST(Url, PercentDecodeRejectsBadEscapes) {
  EXPECT_FALSE(percent_decode("%").ok());
  EXPECT_FALSE(percent_decode("%2").ok());
  EXPECT_FALSE(percent_decode("%zz").ok());
  EXPECT_FALSE(percent_decode("ok%2").ok());
}

TEST(Url, PercentEncodeRoundTrip) {
  const std::string original = "slice name/with specials?&=#%";
  EXPECT_EQ(percent_decode(percent_encode(original)).value(), original);
}

TEST(Url, PercentEncodeLeavesUnreserved) {
  EXPECT_EQ(percent_encode("AZaz09-._~"), "AZaz09-._~");
  EXPECT_EQ(percent_encode(" "), "%20");
}

// --- target parsing -----------------------------------------------------------

TEST(Url, ParseTargetSegmentsAndQuery) {
  const Result<Target> t = parse_target("/slices/42/usage?window=16&verbose=1");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t.value().segments.size(), 3u);
  EXPECT_EQ(t.value().segments[0], "slices");
  EXPECT_EQ(t.value().segments[1], "42");
  EXPECT_EQ(t.value().segments[2], "usage");
  EXPECT_EQ(t.value().query.at("window"), "16");
  EXPECT_EQ(t.value().query.at("verbose"), "1");
  EXPECT_EQ(t.value().path(), "/slices/42/usage");
}

TEST(Url, ParseRootTarget) {
  const Result<Target> t = parse_target("/");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t.value().segments.empty());
  EXPECT_EQ(t.value().path(), "/");
}

TEST(Url, ParseTargetDecodesSegments) {
  const Result<Target> t = parse_target("/a%20b/c?k%20ey=v%26al");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().segments[0], "a b");
  EXPECT_EQ(t.value().query.at("k ey"), "v&al");
}

TEST(Url, ParseTargetRejectsBadShapes) {
  EXPECT_FALSE(parse_target("").ok());
  EXPECT_FALSE(parse_target("relative/path").ok());
  EXPECT_FALSE(parse_target("//double").ok());
  EXPECT_FALSE(parse_target("/a//b").ok());
  EXPECT_FALSE(parse_target("/bad%zz").ok());
}

TEST(Url, QueryWithoutValueAndEmptyPairs) {
  const Result<Target> t = parse_target("/x?flag&&k=v");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().query.at("flag"), "");
  EXPECT_EQ(t.value().query.at("k"), "v");
}

// --- routing ---------------------------------------------------------------------

Request make_request(Method m, std::string target, std::string body = {}) {
  Request req;
  req.method = m;
  req.target = std::move(target);
  req.body = std::move(body);
  return req;
}

TEST(Router, ExactMatchDispatches) {
  Router router;
  router.add(Method::get, "/health",
             [](const RouteContext&) { return Response::json(Status::ok, "\"up\""); });
  const Response resp = router.dispatch(make_request(Method::get, "/health"));
  EXPECT_EQ(resp.status, Status::ok);
  EXPECT_EQ(resp.body, "\"up\"");
}

TEST(Router, PathParamsAreCaptured) {
  Router router;
  router.add(Method::get, "/slices/{id}/cells/{cell}", [](const RouteContext& ctx) {
    return Response::json(Status::ok, "\"" + ctx.param("id").value() + ":" +
                                          ctx.param("cell").value() + "\"");
  });
  const Response resp = router.dispatch(make_request(Method::get, "/slices/7/cells/2"));
  EXPECT_EQ(resp.body, "\"7:2\"");
}

TEST(Router, IdParamValidation) {
  Router router;
  router.add(Method::get, "/slices/{id}", [](const RouteContext& ctx) {
    const Result<std::uint64_t> id = ctx.id_param("id");
    if (!id.ok()) return Response::from_error(id.error());
    return Response::json(Status::ok, std::to_string(id.value()));
  });
  EXPECT_EQ(router.dispatch(make_request(Method::get, "/slices/15")).body, "15");
  EXPECT_EQ(router.dispatch(make_request(Method::get, "/slices/abc")).status,
            Status::bad_request);
  EXPECT_EQ(router.dispatch(make_request(Method::get, "/slices/-3")).status,
            Status::bad_request);
}

TEST(Router, UnknownPathIs404) {
  Router router;
  router.add(Method::get, "/a", [](const RouteContext&) {
    return Response::json(Status::ok, "{}");
  });
  EXPECT_EQ(router.dispatch(make_request(Method::get, "/b")).status, Status::not_found);
}

TEST(Router, WrongMethodOnKnownPathIs404WithHint) {
  Router router;
  router.add(Method::get, "/a", [](const RouteContext&) {
    return Response::json(Status::ok, "{}");
  });
  const Response resp = router.dispatch(make_request(Method::post, "/a"));
  EXPECT_EQ(resp.status, Status::not_found);
  EXPECT_NE(resp.body.find("method not allowed"), std::string::npos);
}

TEST(Router, MalformedTargetIs400) {
  Router router;
  router.add(Method::get, "/a", [](const RouteContext&) {
    return Response::json(Status::ok, "{}");
  });
  EXPECT_EQ(router.dispatch(make_request(Method::get, "/a%zz")).status, Status::bad_request);
}

TEST(Router, FirstMatchWins) {
  Router router;
  router.add(Method::get, "/slices/all", [](const RouteContext&) {
    return Response::json(Status::ok, "\"literal\"");
  });
  router.add(Method::get, "/slices/{id}", [](const RouteContext&) {
    return Response::json(Status::ok, "\"pattern\"");
  });
  EXPECT_EQ(router.dispatch(make_request(Method::get, "/slices/all")).body, "\"literal\"");
  EXPECT_EQ(router.dispatch(make_request(Method::get, "/slices/5")).body, "\"pattern\"");
}

TEST(Router, QueryParamsReachHandler) {
  Router router;
  router.add(Method::get, "/metrics", [](const RouteContext& ctx) {
    const auto it = ctx.query.find("window");
    return Response::json(Status::ok,
                          it == ctx.query.end() ? "\"none\"" : "\"" + it->second + "\"");
  });
  EXPECT_EQ(router.dispatch(make_request(Method::get, "/metrics?window=32")).body, "\"32\"");
  EXPECT_EQ(router.dispatch(make_request(Method::get, "/metrics")).body, "\"none\"");
}

TEST(Router, SegmentCountMustMatch) {
  Router router;
  router.add(Method::get, "/a/{x}", [](const RouteContext&) {
    return Response::json(Status::ok, "{}");
  });
  EXPECT_EQ(router.dispatch(make_request(Method::get, "/a")).status, Status::not_found);
  EXPECT_EQ(router.dispatch(make_request(Method::get, "/a/1/2")).status, Status::not_found);
}

}  // namespace
}  // namespace slices::net
