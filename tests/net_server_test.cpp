// Tests for the real-socket HTTP server and client (loopback).

#include <gtest/gtest.h>

#include <thread>

#include "net/http_server.hpp"

namespace slices::net {
namespace {

std::shared_ptr<Router> demo_router() {
  auto router = std::make_shared<Router>();
  router->add(Method::get, "/ping", [](const RouteContext&) {
    return Response::json(Status::ok, "\"pong\"");
  });
  router->add(Method::post, "/echo", [](const RouteContext& ctx) {
    return Response::json(Status::ok, ctx.request->body);
  });
  router->add(Method::get, "/things/{id}", [](const RouteContext& ctx) {
    return Response::json(Status::ok, "\"thing-" + ctx.param("id").value() + "\"");
  });
  return router;
}

/// Serves exactly `n` connections on a background thread.
struct ServerFixture {
  explicit ServerFixture(int n) {
    Result<std::unique_ptr<HttpServer>> bound = HttpServer::bind(demo_router(), 0);
    EXPECT_TRUE(bound.ok()) << bound.error().message;
    server = std::move(bound).value();
    port = server->port();
    thread = std::thread([this, n] {
      for (int i = 0; i < n; ++i) {
        if (!server->serve_one().ok()) break;
      }
    });
  }
  ~ServerFixture() {
    server->stop();
    if (thread.joinable()) thread.join();
  }

  std::unique_ptr<HttpServer> server;
  std::uint16_t port = 0;
  std::thread thread;
};

Request get(std::string target) {
  Request req;
  req.method = Method::get;
  req.target = std::move(target);
  return req;
}

TEST(HttpServer, BindsEphemeralPort) {
  Result<std::unique_ptr<HttpServer>> server = HttpServer::bind(demo_router(), 0);
  ASSERT_TRUE(server.ok()) << server.error().message;
  EXPECT_GT(server.value()->port(), 0);
}

TEST(HttpServer, GetRoundTripOverRealSockets) {
  ServerFixture fixture(1);
  const Result<Response> resp = http_request(fixture.port, get("/ping"));
  ASSERT_TRUE(resp.ok()) << resp.error().message;
  EXPECT_EQ(resp.value().status, Status::ok);
  EXPECT_EQ(resp.value().body, "\"pong\"");
  EXPECT_EQ(resp.value().headers.at("Connection"), "close");
}

TEST(HttpServer, PostBodyRoundTrip) {
  ServerFixture fixture(1);
  Request req;
  req.method = Method::post;
  req.target = "/echo";
  req.body = R"({"rate_mbps":25.5,"name":"slice"})";
  const Result<Response> resp = http_request(fixture.port, req);
  ASSERT_TRUE(resp.ok()) << resp.error().message;
  EXPECT_EQ(resp.value().body, req.body);
}

TEST(HttpServer, LargeBodyRoundTrip) {
  ServerFixture fixture(1);
  Request req;
  req.method = Method::post;
  req.target = "/echo";
  req.body.assign(512 * 1024, 'x');  // spans many TCP segments
  const Result<Response> resp = http_request(fixture.port, req);
  ASSERT_TRUE(resp.ok()) << resp.error().message;
  EXPECT_EQ(resp.value().body.size(), req.body.size());
}

TEST(HttpServer, PathParamsWorkOverTheWire) {
  ServerFixture fixture(1);
  const Result<Response> resp = http_request(fixture.port, get("/things/42"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().body, "\"thing-42\"");
}

TEST(HttpServer, UnknownRouteIs404) {
  ServerFixture fixture(1);
  const Result<Response> resp = http_request(fixture.port, get("/nope"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().status, Status::not_found);
}

TEST(HttpServer, MalformedRequestGets400) {
  ServerFixture fixture(1);
  Result<TcpConnection> conn = connect_loopback(fixture.port);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.value().send_all("NONSENSE\r\n\r\n").ok());
  conn.value().shutdown_write();
  std::string wire;
  while (true) {
    Result<std::string> chunk = conn.value().receive_some();
    ASSERT_TRUE(chunk.ok());
    if (chunk.value().empty()) break;
    wire += chunk.value();
  }
  const Result<Response> resp = parse_response(wire);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().status, Status::bad_request);
}

TEST(HttpServer, SequentialConnections) {
  ServerFixture fixture(5);
  for (int i = 0; i < 5; ++i) {
    const Result<Response> resp = http_request(fixture.port, get("/ping"));
    ASSERT_TRUE(resp.ok()) << "iteration " << i << ": " << resp.error().message;
    EXPECT_EQ(resp.value().body, "\"pong\"");
  }
  EXPECT_EQ(fixture.server->connections_served(), 5u);
}

TEST(HttpServer, StopUnblocksRun) {
  Result<std::unique_ptr<HttpServer>> bound = HttpServer::bind(demo_router(), 0);
  ASSERT_TRUE(bound.ok());
  HttpServer& server = *bound.value();
  std::thread runner([&server] { server.run(); });
  // Serve one real request, then stop.
  const Result<Response> resp = http_request(server.port(), get("/ping"));
  ASSERT_TRUE(resp.ok());
  server.stop();
  runner.join();
  EXPECT_GE(server.connections_served(), 1u);
}

TEST(TcpListener, PortZeroGivesDistinctPorts) {
  Result<TcpListener> a = TcpListener::bind_loopback(0);
  Result<TcpListener> b = TcpListener::bind_loopback(0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().port(), b.value().port());
}

TEST(TcpConnection, ConnectToClosedPortFails) {
  // Bind then immediately close to get a (very likely) dead port.
  Result<TcpListener> probe = TcpListener::bind_loopback(0);
  ASSERT_TRUE(probe.ok());
  const std::uint16_t dead = probe.value().port();
  probe.value().close();
  const Result<TcpConnection> conn = connect_loopback(dead);
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.error().code, Errc::unavailable);
}

}  // namespace
}  // namespace slices::net
