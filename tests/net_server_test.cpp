// Tests for the real-socket HTTP server and client (loopback).

#include <gtest/gtest.h>

#include <thread>

#include "core/testbed.hpp"
#include "json/value.hpp"
#include "net/http_server.hpp"
#include "telemetry/trace.hpp"

namespace slices::net {
namespace {

std::shared_ptr<Router> demo_router() {
  auto router = std::make_shared<Router>();
  router->add(Method::get, "/ping", [](const RouteContext&) {
    return Response::json(Status::ok, "\"pong\"");
  });
  router->add(Method::post, "/echo", [](const RouteContext& ctx) {
    return Response::json(Status::ok, ctx.request->body);
  });
  router->add(Method::get, "/things/{id}", [](const RouteContext& ctx) {
    return Response::json(Status::ok, "\"thing-" + ctx.param("id").value() + "\"");
  });
  return router;
}

/// Serves exactly `n` connections on a background thread.
struct ServerFixture {
  explicit ServerFixture(int n) {
    Result<std::unique_ptr<HttpServer>> bound = HttpServer::bind(demo_router(), 0);
    EXPECT_TRUE(bound.ok()) << bound.error().message;
    server = std::move(bound).value();
    port = server->port();
    thread = std::thread([this, n] {
      for (int i = 0; i < n; ++i) {
        if (!server->serve_one().ok()) break;
      }
    });
  }
  ~ServerFixture() {
    server->stop();
    if (thread.joinable()) thread.join();
  }

  std::unique_ptr<HttpServer> server;
  std::uint16_t port = 0;
  std::thread thread;
};

Request get(std::string target) {
  Request req;
  req.method = Method::get;
  req.target = std::move(target);
  return req;
}

TEST(HttpServer, BindsEphemeralPort) {
  Result<std::unique_ptr<HttpServer>> server = HttpServer::bind(demo_router(), 0);
  ASSERT_TRUE(server.ok()) << server.error().message;
  EXPECT_GT(server.value()->port(), 0);
}

TEST(HttpServer, GetRoundTripOverRealSockets) {
  ServerFixture fixture(1);
  const Result<Response> resp = http_request(fixture.port, get("/ping"));
  ASSERT_TRUE(resp.ok()) << resp.error().message;
  EXPECT_EQ(resp.value().status, Status::ok);
  EXPECT_EQ(resp.value().body, "\"pong\"");
  EXPECT_EQ(resp.value().headers.at("Connection"), "close");
}

TEST(HttpServer, PostBodyRoundTrip) {
  ServerFixture fixture(1);
  Request req;
  req.method = Method::post;
  req.target = "/echo";
  req.body = R"({"rate_mbps":25.5,"name":"slice"})";
  const Result<Response> resp = http_request(fixture.port, req);
  ASSERT_TRUE(resp.ok()) << resp.error().message;
  EXPECT_EQ(resp.value().body, req.body);
}

TEST(HttpServer, LargeBodyRoundTrip) {
  ServerFixture fixture(1);
  Request req;
  req.method = Method::post;
  req.target = "/echo";
  req.body.assign(512 * 1024, 'x');  // spans many TCP segments
  const Result<Response> resp = http_request(fixture.port, req);
  ASSERT_TRUE(resp.ok()) << resp.error().message;
  EXPECT_EQ(resp.value().body.size(), req.body.size());
}

TEST(HttpServer, PathParamsWorkOverTheWire) {
  ServerFixture fixture(1);
  const Result<Response> resp = http_request(fixture.port, get("/things/42"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().body, "\"thing-42\"");
}

TEST(HttpServer, UnknownRouteIs404) {
  ServerFixture fixture(1);
  const Result<Response> resp = http_request(fixture.port, get("/nope"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().status, Status::not_found);
}

TEST(HttpServer, MalformedRequestGets400) {
  ServerFixture fixture(1);
  Result<TcpConnection> conn = connect_loopback(fixture.port);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.value().send_all("NONSENSE\r\n\r\n").ok());
  conn.value().shutdown_write();
  std::string wire;
  while (true) {
    Result<std::string> chunk = conn.value().receive_some();
    ASSERT_TRUE(chunk.ok());
    if (chunk.value().empty()) break;
    wire += chunk.value();
  }
  const Result<Response> resp = parse_response(wire);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().status, Status::bad_request);
}

TEST(HttpServer, SequentialConnections) {
  ServerFixture fixture(5);
  for (int i = 0; i < 5; ++i) {
    const Result<Response> resp = http_request(fixture.port, get("/ping"));
    ASSERT_TRUE(resp.ok()) << "iteration " << i << ": " << resp.error().message;
    EXPECT_EQ(resp.value().body, "\"pong\"");
  }
  EXPECT_EQ(fixture.server->connections_served(), 5u);
}

TEST(HttpServer, StopUnblocksRun) {
  Result<std::unique_ptr<HttpServer>> bound = HttpServer::bind(demo_router(), 0);
  ASSERT_TRUE(bound.ok());
  HttpServer& server = *bound.value();
  std::thread runner([&server] { server.run(); });
  // Serve one real request, then stop.
  const Result<Response> resp = http_request(server.port(), get("/ping"));
  ASSERT_TRUE(resp.ok());
  server.stop();
  runner.join();
  EXPECT_GE(server.connections_served(), 1u);
}

// --- orchestrator observability endpoints over real sockets ----------------------

/// Orchestrator testbed served over loopback for `n` connections.
struct OrchestratorServerFixture {
  explicit OrchestratorServerFixture(int n) : tb(core::make_testbed(11)) {
    Result<std::unique_ptr<HttpServer>> bound = HttpServer::bind(tb->orchestrator->make_router(), 0);
    EXPECT_TRUE(bound.ok()) << bound.error().message;
    server = std::move(bound).value();
    port = server->port();
    thread = std::thread([this, n] {
      for (int i = 0; i < n; ++i) {
        if (!server->serve_one().ok()) break;
      }
    });
  }
  ~OrchestratorServerFixture() {
    server->stop();
    if (thread.joinable()) thread.join();
  }

  std::unique_ptr<core::Testbed> tb;
  std::unique_ptr<HttpServer> server;
  std::uint16_t port = 0;
  std::thread thread;
};

TEST(HttpServer, HealthzReportsLivenessOverTheWire) {
  OrchestratorServerFixture fixture(1);
  fixture.tb->simulator.run_for(Duration::seconds(30.0));
  const Result<Response> resp = http_request(fixture.port, get("/healthz"));
  ASSERT_TRUE(resp.ok()) << resp.error().message;
  EXPECT_EQ(resp.value().status, Status::ok);

  const Result<json::Value> doc = json::parse(resp.value().body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().find("status")->as_string(), "ok");
  const json::Value* components = doc.value().find("components");
  ASSERT_NE(components, nullptr);
  EXPECT_TRUE(components->find("ran")->as_bool());
  EXPECT_TRUE(components->find("transport")->as_bool());
  EXPECT_TRUE(components->find("cloud")->as_bool());
  EXPECT_FALSE(doc.value().find("last_epoch")->find("stale")->as_bool());
  ASSERT_NE(doc.value().find("trace"), nullptr);
}

TEST(HttpServer, TraceDumpAndClearOverTheWire) {
  telemetry::trace::set_enabled(true);
  telemetry::trace::set_wall_clock(false);
  telemetry::trace::clear();

  OrchestratorServerFixture fixture(3);
  // Run past a couple of 15-minute monitoring periods so the control
  // thread records epoch spans.
  fixture.tb->simulator.run_for(Duration::minutes(35.0));
  ASSERT_GT(telemetry::trace::Tracer::instance().span_count(), 0u);

  // Dump with ?clear=1: returns the spans, then empties the buffer.
  const Result<Response> dump = http_request(fixture.port, get("/trace?clear=1"));
  ASSERT_TRUE(dump.ok()) << dump.error().message;
  EXPECT_EQ(dump.value().status, Status::ok);
  const Result<json::Value> doc = json::parse(dump.value().body);
  ASSERT_TRUE(doc.ok());
  const json::Value* events = doc.value().find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_FALSE(events->as_array().empty());
  bool saw_epoch = false;
  for (const json::Value& event : events->as_array()) {
    if (event.find("name")->as_string() == "orch.serve_epoch") saw_epoch = true;
  }
  EXPECT_TRUE(saw_epoch);
  EXPECT_EQ(telemetry::trace::Tracer::instance().span_count(), 0u);

  // Plain dump after the clear: well-formed but empty.
  const Result<Response> empty = http_request(fixture.port, get("/trace"));
  ASSERT_TRUE(empty.ok());
  const Result<json::Value> empty_doc = json::parse(empty.value().body);
  ASSERT_TRUE(empty_doc.ok());
  EXPECT_TRUE(empty_doc.value().find("traceEvents")->as_array().empty());

  // DELETE reports how many spans it dropped (none left by now).
  Request del;
  del.method = Method::del;
  del.target = "/trace";
  const Result<Response> deleted = http_request(fixture.port, del);
  ASSERT_TRUE(deleted.ok());
  const Result<json::Value> del_doc = json::parse(deleted.value().body);
  ASSERT_TRUE(del_doc.ok());
  EXPECT_DOUBLE_EQ(del_doc.value().find("cleared_spans")->as_number(), 0.0);

  telemetry::trace::set_enabled(false);
  telemetry::trace::clear();
}

TEST(TcpListener, PortZeroGivesDistinctPorts) {
  Result<TcpListener> a = TcpListener::bind_loopback(0);
  Result<TcpListener> b = TcpListener::bind_loopback(0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().port(), b.value().port());
}

TEST(TcpConnection, ConnectToClosedPortFails) {
  // Bind then immediately close to get a (very likely) dead port.
  Result<TcpListener> probe = TcpListener::bind_loopback(0);
  ASSERT_TRUE(probe.ok());
  const std::uint16_t dead = probe.value().port();
  probe.value().close();
  const Result<TcpConnection> conn = connect_loopback(dead);
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.error().code, Errc::unavailable);
}

}  // namespace
}  // namespace slices::net
