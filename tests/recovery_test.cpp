// Crash-recovery replay on the full Fig. 2 testbed: the round-trip
// property state(orchestrator) == state(recover(snapshot + journal)) —
// including after a torn tail write — plus timer resurrection, the
// RAN PRB-map regression and the /store REST endpoints
// (docs/persistence.md).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "core/testbed.hpp"
#include "store/store.hpp"
#include "traffic/model.hpp"

namespace slices {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("slices_recovery_test_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

core::SliceSpec spec_for(traffic::Vertical vertical, double hours, double mbps) {
  core::SliceSpec spec =
      core::SliceSpec::from_profile(traffic::profile_for(vertical), Duration::hours(hours));
  spec.expected_throughput = DataRate::mbps(mbps);
  return spec;
}

/// Drive a testbed through a busy stretch of life: admits (with demand
/// workloads), epochs with accrual + overbooking, a resize, a rejection
/// and an operator teardown. Returns after ~2h of simulated time.
void exercise(core::Testbed& tb) {
  tb.orchestrator->submit(spec_for(traffic::Vertical::embb_video, 24.0, 30.0),
                          std::make_unique<traffic::ConstantTraffic>(12.0));
  tb.orchestrator->submit(spec_for(traffic::Vertical::automotive, 12.0, 15.0),
                          std::make_unique<traffic::ConstantTraffic>(6.0));
  const RequestId doomed =
      tb.orchestrator->submit(spec_for(traffic::Vertical::iot_metering, 6.0, 5.0));
  tb.simulator.run_for(Duration::minutes(40.0));  // install + two epochs

  const core::SliceRecord* second = tb.orchestrator->find_by_request(doomed);
  ASSERT_NE(second, nullptr);
  ASSERT_TRUE(tb.orchestrator->terminate(second->id).ok());

  // A request the substrate cannot possibly fit -> journaled reject.
  tb.orchestrator->submit(spec_for(traffic::Vertical::embb_video, 1.0, 1e6));

  const core::SliceRecord* first = tb.orchestrator->find_by_request(RequestId{1});
  ASSERT_NE(first, nullptr);
  ASSERT_TRUE(tb.orchestrator->resize_slice(first->id, DataRate::mbps(25.0)).ok());
  tb.simulator.run_for(Duration::minutes(80.0));
}

struct StoredTestbed {
  std::unique_ptr<core::Testbed> tb;
  std::unique_ptr<store::StateStore> store;
};

StoredTestbed make_stored_testbed(std::uint64_t seed, const std::string& directory,
                                  std::size_t snapshot_every = 0) {
  StoredTestbed out;
  out.tb = core::make_testbed(seed);
  out.store = std::make_unique<store::StateStore>(
      store::StoreConfig{.directory = directory, .snapshot_every_records = snapshot_every},
      &out.tb->registry);
  EXPECT_TRUE(out.store->open().ok());
  out.tb->orchestrator->attach_store(out.store.get());
  return out;
}

TEST(Recovery, JournalReplayReproducesStateExactly) {
  const fs::path dir = fresh_dir("roundtrip");
  std::string before;
  {
    StoredTestbed live = make_stored_testbed(71, dir.string());
    exercise(*live.tb);
    before = json::serialize(live.tb->orchestrator->state_json());
  }  // crash: process gone, only the journal survives

  StoredTestbed revived = make_stored_testbed(71, dir.string());
  const Result<core::RecoveryStats> stats = revived.tb->orchestrator->recover_from_store();
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats.value().had_snapshot);
  EXPECT_GT(stats.value().events_replayed, 0u);
  EXPECT_EQ(stats.value().reinstall_failures, 0u);
  EXPECT_EQ(json::serialize(revived.tb->orchestrator->state_json()), before);
}

TEST(Recovery, SnapshotPlusJournalTailReproducesStateExactly) {
  const fs::path dir = fresh_dir("snapshot_tail");
  std::string before;
  {
    StoredTestbed live = make_stored_testbed(72, dir.string());
    live.tb->orchestrator->submit(spec_for(traffic::Vertical::embb_video, 24.0, 30.0),
                                  std::make_unique<traffic::ConstantTraffic>(12.0));
    live.tb->simulator.run_for(Duration::minutes(40.0));
    ASSERT_TRUE(live.tb->orchestrator->snapshot_now().ok());
    // Post-snapshot life lands in the journal tail.
    live.tb->orchestrator->submit(spec_for(traffic::Vertical::automotive, 12.0, 15.0),
                                  std::make_unique<traffic::ConstantTraffic>(6.0));
    live.tb->simulator.run_for(Duration::minutes(40.0));
    before = json::serialize(live.tb->orchestrator->state_json());
  }

  StoredTestbed revived = make_stored_testbed(72, dir.string());
  const Result<core::RecoveryStats> stats = revived.tb->orchestrator->recover_from_store();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats.value().had_snapshot);
  EXPECT_GT(stats.value().events_replayed, 0u);
  EXPECT_EQ(json::serialize(revived.tb->orchestrator->state_json()), before);
}

TEST(Recovery, TornTailWriteStillReproducesStateExactly) {
  const fs::path dir = fresh_dir("torn_tail");
  std::string before;
  {
    StoredTestbed live = make_stored_testbed(73, dir.string());
    exercise(*live.tb);
    before = json::serialize(live.tb->orchestrator->state_json());
  }
  // The crash tore the record being appended: half a frame at the tail.
  {
    std::ofstream out(dir / "journal.wal", std::ios::binary | std::ios::app);
    const char partial[] = {0x33, 0x02, 0x00, 0x00, 0x7f, 0x01};
    out.write(partial, sizeof(partial));
  }

  StoredTestbed revived = make_stored_testbed(73, dir.string());
  const Result<core::RecoveryStats> stats = revived.tb->orchestrator->recover_from_store();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats.value().journal_truncated);
  EXPECT_EQ(stats.value().reinstall_failures, 0u);
  EXPECT_EQ(json::serialize(revived.tb->orchestrator->state_json()), before);
}

TEST(Recovery, InstallingSliceActivatesAndActiveSliceExpiresAfterRecovery) {
  const fs::path dir = fresh_dir("timers");
  SimTime activates_at;
  SimTime ends_at;
  SliceId installing_id;
  SliceId active_id;
  {
    StoredTestbed live = make_stored_testbed(74, dir.string());
    const RequestId r1 =
        live.tb->orchestrator->submit(spec_for(traffic::Vertical::embb_video, 2.0, 20.0));
    live.tb->simulator.run_for(Duration::seconds(30.0));
    const RequestId r2 =
        live.tb->orchestrator->submit(spec_for(traffic::Vertical::automotive, 3.0, 10.0));
    // r2 is still installing when the process dies.
    const core::SliceRecord* active = live.tb->orchestrator->find_by_request(r1);
    const core::SliceRecord* installing = live.tb->orchestrator->find_by_request(r2);
    ASSERT_EQ(active->state, core::SliceState::active);
    ASSERT_EQ(installing->state, core::SliceState::installing);
    active_id = active->id;
    ends_at = active->ends_at;
    installing_id = installing->id;
    activates_at = installing->activates_at;
  }

  StoredTestbed revived = make_stored_testbed(74, dir.string());
  ASSERT_TRUE(revived.tb->orchestrator->recover_from_store().ok());
  const core::SliceRecord* installing = revived.tb->orchestrator->find_slice(installing_id);
  ASSERT_NE(installing, nullptr);
  EXPECT_EQ(installing->state, core::SliceState::installing);

  // The resurrected activation timer fires at the journaled instant.
  revived.tb->simulator.run_until(activates_at);
  EXPECT_EQ(installing->state, core::SliceState::active);
  EXPECT_EQ(installing->active_at, activates_at);

  // And the active slice still expires exactly on schedule.
  revived.tb->simulator.run_until(ends_at);
  EXPECT_EQ(revived.tb->orchestrator->find_slice(active_id)->state,
            core::SliceState::expired);
}

// Regression for the RAN controller's promise that "existing
// reservations stay installed and resume on recovery"
// (src/ran/controller.hpp): after a store-driven recovery the
// re-installed per-cell PRB maps must match the pre-failure
// reservations exactly.
TEST(Recovery, ReinstalledPrbMapsMatchPreFailureReservations) {
  const fs::path dir = fresh_dir("prb_maps");
  std::map<PlmnId, std::map<CellId, PrbCount>> before;
  {
    StoredTestbed live = make_stored_testbed(75, dir.string());
    live.tb->orchestrator->submit(spec_for(traffic::Vertical::embb_video, 24.0, 30.0));
    live.tb->orchestrator->submit(spec_for(traffic::Vertical::automotive, 12.0, 15.0));
    live.tb->simulator.run_for(Duration::seconds(30.0));
    for (const core::SliceRecord* record : live.tb->orchestrator->all_slices()) {
      ASSERT_EQ(record->state, core::SliceState::active);
      const ran::RanAllocation* alloc =
          live.tb->ran.find_allocation(record->embedding.plmn);
      ASSERT_NE(alloc, nullptr);
      before.emplace(record->embedding.plmn, alloc->per_cell);
    }
    ASSERT_EQ(before.size(), 2u);
  }

  StoredTestbed revived = make_stored_testbed(75, dir.string());
  ASSERT_TRUE(revived.tb->orchestrator->recover_from_store().ok());
  for (const auto& [plmn, per_cell] : before) {
    const ran::RanAllocation* alloc = revived.tb->ran.find_allocation(plmn);
    ASSERT_NE(alloc, nullptr);
    EXPECT_EQ(alloc->per_cell, per_cell) << "PRB map diverged for PLMN " << plmn.value();
  }
}

TEST(Recovery, TransportPathsKeepTheirIdsAndReservations) {
  const fs::path dir = fresh_dir("path_ids");
  std::vector<PathId> paths;
  DataRate reserved;
  {
    StoredTestbed live = make_stored_testbed(76, dir.string());
    const RequestId r =
        live.tb->orchestrator->submit(spec_for(traffic::Vertical::embb_video, 24.0, 30.0));
    live.tb->simulator.run_for(Duration::seconds(30.0));
    const core::SliceRecord* record = live.tb->orchestrator->find_by_request(r);
    paths = record->embedding.paths;
    reserved = record->reserved;
    ASSERT_FALSE(paths.empty());
  }

  StoredTestbed revived = make_stored_testbed(76, dir.string());
  ASSERT_TRUE(revived.tb->orchestrator->recover_from_store().ok());
  const transport::PathReservation* path = revived.tb->transport->find_path(paths.front());
  ASSERT_NE(path, nullptr);
  EXPECT_EQ(path->reserved, reserved);
  // New allocations never collide with the restored ids.
  const Result<PathId> fresh = revived.tb->transport->allocate_path(
      SliceId{999}, revived.tb->ran_gateway, revived.tb->core_gateway, DataRate::mbps(1.0),
      Duration::millis(50.0));
  ASSERT_TRUE(fresh.ok());
  for (const PathId old : paths) EXPECT_NE(fresh.value(), old);
}

TEST(Recovery, AutoSnapshotCadenceCutsSnapshotsDuringOperation) {
  const fs::path dir = fresh_dir("auto_snapshot");
  StoredTestbed live = make_stored_testbed(77, dir.string(), /*snapshot_every=*/4);
  exercise(*live.tb);
  EXPECT_GT(live.store->snapshots_written(), 0u);
  // The journal only holds the short tail since the last snapshot.
  EXPECT_LT(live.store->journal_records(), 4u + 1u);
}

TEST(Recovery, RestEndpointsDriveTheStore) {
  const fs::path dir = fresh_dir("rest");
  StoredTestbed live = make_stored_testbed(78, dir.string());
  live.tb->orchestrator->submit(spec_for(traffic::Vertical::embb_video, 24.0, 30.0));
  live.tb->simulator.run_for(Duration::seconds(30.0));

  const Result<json::Value> status =
      live.tb->bus.get_json("orchestrator", "/store/status");
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(status.value().find("open")->as_bool());
  EXPECT_GT(status.value().find("journal")->find("records")->as_number(), 0.0);

  const Result<json::Value> snap =
      live.tb->bus.call_json("orchestrator", net::Method::post, "/store/snapshot", json::Value(nullptr));
  ASSERT_TRUE(snap.ok());
  EXPECT_GT(snap.value().find("snapshot_seq")->as_number(), 0.0);

  // More journaled life, then a second snapshot at a higher sequence —
  // the first snapshot file becomes compactable.
  live.tb->orchestrator->submit(spec_for(traffic::Vertical::automotive, 12.0, 15.0));
  live.tb->simulator.run_for(Duration::seconds(30.0));
  ASSERT_TRUE(
      live.tb->bus.call_json("orchestrator", net::Method::post, "/store/snapshot", json::Value(nullptr)).ok());
  const Result<json::Value> compact =
      live.tb->bus.call_json("orchestrator", net::Method::post, "/store/compact", json::Value(nullptr));
  ASSERT_TRUE(compact.ok());
  EXPECT_GT(compact.value().find("bytes_reclaimed")->as_number(), 0.0);

  // Restoring into an orchestrator that already holds state is refused.
  const Result<json::Value> restore =
      live.tb->bus.call_json("orchestrator", net::Method::post, "/store/restore", json::Value(nullptr));
  ASSERT_FALSE(restore.ok());
  EXPECT_EQ(restore.error().code, Errc::conflict);

  // Without a store attached the endpoints answer 503, not a crash.
  auto bare = core::make_testbed(79);
  const Result<json::Value> none =
      bare->bus.get_json("orchestrator", "/store/status");
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.error().code, Errc::unavailable);
}

TEST(Recovery, RestRestoreRebuildsStateOnFreshTestbed) {
  const fs::path dir = fresh_dir("rest_restore");
  std::string before;
  {
    StoredTestbed live = make_stored_testbed(80, dir.string());
    live.tb->orchestrator->submit(spec_for(traffic::Vertical::embb_video, 24.0, 30.0));
    live.tb->simulator.run_for(Duration::seconds(30.0));
    before = json::serialize(live.tb->orchestrator->state_json());
  }
  StoredTestbed revived = make_stored_testbed(80, dir.string());
  const Result<json::Value> restored =
      revived.tb->bus.call_json("orchestrator", net::Method::post, "/store/restore", json::Value(nullptr));
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ(restored.value().find("reinstall_failures")->as_number(), 0.0);
  EXPECT_EQ(json::serialize(revived.tb->orchestrator->state_json()), before);

  const Result<json::Value> status =
      revived.tb->bus.get_json("orchestrator", "/store/status");
  ASSERT_TRUE(status.ok());
  ASSERT_NE(status.value().find("last_recovery"), nullptr);
  EXPECT_DOUBLE_EQ(
      status.value().find("last_recovery")->find("reinstall_failures")->as_number(), 0.0);
}

TEST(Recovery, WithoutStoreAttachedRecoveryIsUnavailable) {
  auto tb = core::make_testbed(81);
  const Result<core::RecoveryStats> stats = tb->orchestrator->recover_from_store();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.error().code, Errc::unavailable);
}

}  // namespace
}  // namespace slices
