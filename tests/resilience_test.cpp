// Failure-injection tests: link outages in the transport domain, cell
// outages in the RAN, topology generators, tenant-initiated slice
// resizing, and orchestrator kill-and-recover via the durable store on
// the full testbed.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "core/testbed.hpp"
#include "store/store.hpp"
#include "telemetry/trace.hpp"
#include "traffic/model.hpp"
#include "transport/generators.hpp"

namespace slices {
namespace {

// --- topology generators ----------------------------------------------------

TEST(Generators, AggregationTreeShape) {
  const transport::GeneratedTopology g = transport::make_aggregation_tree(6, 3);
  EXPECT_EQ(g.ran_gateways.size(), 6u);
  EXPECT_EQ(g.edge_gateways.size(), 2u);  // ceil(6/3) aggregation switches
  // nodes: core-sw + core-gw + 2*(agg + edge) + 6 leaves = 12
  EXPECT_EQ(g.topology.node_count(), 12u);
  // Every RAN gateway can reach the core gateway.
  const transport::ResidualFn residual = [](const transport::Link& link) {
    return link.nominal_capacity;
  };
  for (const NodeId gw : g.ran_gateways) {
    EXPECT_TRUE(transport::find_route(g.topology, gw, g.core_gateway,
                                      DataRate::mbps(10.0), residual)
                    .has_value());
  }
}

TEST(Generators, AggregationTreeRoundsUpSwitches) {
  const transport::GeneratedTopology g = transport::make_aggregation_tree(7, 3);
  EXPECT_EQ(g.edge_gateways.size(), 3u);
}

TEST(Generators, MetroRingHasTwoDisjointDirections) {
  const transport::GeneratedTopology g = transport::make_metro_ring(6);
  EXPECT_EQ(g.ran_gateways.size(), 6u);
  const transport::ResidualFn residual = [](const transport::Link& link) {
    return link.nominal_capacity;
  };
  // Remove any one ring direction mentally: with one ring link vetoed,
  // a route must still exist (the other way round).
  const auto baseline = transport::find_route(g.topology, g.ran_gateways[1],
                                              g.core_gateway, DataRate::mbps(10.0), residual);
  ASSERT_TRUE(baseline.has_value());
  ASSERT_FALSE(baseline->links.empty());
  const LinkId vetoed = baseline->links[1];  // a ring link on the best path
  const transport::ResidualFn vetoing = [vetoed](const transport::Link& link) {
    return link.id == vetoed ? DataRate::zero() : link.nominal_capacity;
  };
  const auto detour = transport::find_route(g.topology, g.ran_gateways[1], g.core_gateway,
                                            DataRate::mbps(10.0), vetoing);
  ASSERT_TRUE(detour.has_value());
  EXPECT_NE(detour->links, baseline->links);
}

// --- transport link outage -----------------------------------------------------

TEST(LinkOutage, DownLinkCarriesNothingAndRepairRoutesAround) {
  transport::Topology topo;
  const NodeId s = topo.add_node("s", transport::NodeKind::enb_gateway);
  const NodeId t = topo.add_node("t", transport::NodeKind::core_gateway);
  const LinkId primary = topo.add_link(s, t, transport::LinkTechnology::fiber,
                                       DataRate::mbps(1000.0), Duration::millis(1.0));
  topo.add_link(s, t, transport::LinkTechnology::fiber, DataRate::mbps(1000.0),
                Duration::millis(3.0));
  transport::TransportController tc(std::move(topo), Rng(1));

  const Result<PathId> path = tc.allocate_path(SliceId{1}, s, t, DataRate::mbps(100.0),
                                               Duration::millis(10.0));
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(tc.find_path(path.value())->route.links.front(), primary);

  ASSERT_TRUE(tc.set_link_up(primary, false).ok());
  EXPECT_FALSE(tc.link_up(primary));
  EXPECT_DOUBLE_EQ(tc.current_capacity(*tc.topology().find_link(primary)).as_mbps(), 0.0);

  // First epoch after the outage: nothing served, then repaired.
  const std::vector<std::pair<PathId, DataRate>> demands = {
      {path.value(), DataRate::mbps(80.0)}};
  const auto reports = tc.serve_epoch(demands, SimTime::from_seconds(1.0));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_DOUBLE_EQ(reports[0].served.as_mbps(), 0.0);
  EXPECT_TRUE(reports[0].degraded);
  EXPECT_EQ(tc.reroutes(), 1u);
  EXPECT_NE(tc.find_path(path.value())->route.links.front(), primary);

  // Next epoch flows over the detour.
  const auto after = tc.serve_epoch(demands, SimTime::from_seconds(2.0));
  EXPECT_NEAR(after[0].served.as_mbps(), 80.0, 1e-6);

  // Recovery brings the link back into planning.
  ASSERT_TRUE(tc.set_link_up(primary, true).ok());
  EXPECT_GT(tc.residual(*tc.topology().find_link(primary)).as_mbps(), 0.0);
  EXPECT_EQ(tc.set_link_up(LinkId{999}, false).error().code, Errc::not_found);
}

TEST(LinkOutage, NewAllocationsAvoidDownLinks) {
  transport::Topology topo;
  const NodeId s = topo.add_node("s", transport::NodeKind::enb_gateway);
  const NodeId t = topo.add_node("t", transport::NodeKind::core_gateway);
  const LinkId only = topo.add_link(s, t, transport::LinkTechnology::fiber,
                                    DataRate::mbps(1000.0), Duration::millis(1.0));
  transport::TransportController tc(std::move(topo), Rng(1));
  ASSERT_TRUE(tc.set_link_up(only, false).ok());
  const Result<PathId> path = tc.allocate_path(SliceId{1}, s, t, DataRate::mbps(10.0),
                                               Duration::millis(10.0));
  ASSERT_FALSE(path.ok());
  EXPECT_EQ(path.error().code, Errc::insufficient_capacity);
}

// --- RAN cell outage --------------------------------------------------------------

TEST(CellOutage, InactiveCellServesNothingAndCapacityDrops) {
  ran::RanController controller;
  controller.add_cell(
      ran::Cell(CellId{1}, "a", ran::Bandwidth::mhz20, ran::SharingPolicy::pooled));
  controller.add_cell(
      ran::Cell(CellId{2}, "b", ran::Bandwidth::mhz20, ran::SharingPolicy::pooled));
  ASSERT_TRUE(controller.install_plmn(PlmnId{1}).ok());
  ASSERT_TRUE(controller.set_allocation(PlmnId{1}, DataRate::mbps(30.0)).ok());

  const DataRate before = controller.total_capacity();
  ASSERT_TRUE(controller.set_cell_active(CellId{1}, false).ok());
  EXPECT_FALSE(controller.cell_active(CellId{1}));
  EXPECT_NEAR(controller.total_capacity().as_mbps(), before.as_mbps() / 2.0, 1e-6);

  // Demand splits equally over both cells (no UEs); the dead cell's
  // half goes unserved.
  const std::vector<std::pair<PlmnId, DataRate>> demands = {{PlmnId{1}, DataRate::mbps(20.0)}};
  const auto reports = controller.serve_epoch(demands, SimTime::from_seconds(1.0));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_NEAR(reports[0].served.as_mbps() + reports[0].unserved.as_mbps(), 20.0, 1e-6);
  EXPECT_NEAR(reports[0].unserved.as_mbps(), 10.0, 1.0);

  // Recovery restores everything.
  ASSERT_TRUE(controller.set_cell_active(CellId{1}, true).ok());
  const auto healed = controller.serve_epoch(demands, SimTime::from_seconds(2.0));
  EXPECT_NEAR(healed[0].served.as_mbps(), 20.0, 0.5);
  EXPECT_EQ(controller.set_cell_active(CellId{9}, false).error().code, Errc::not_found);
}

TEST(CellOutage, AllocationPlanningSkipsInactiveCells) {
  ran::RanController controller;
  controller.add_cell(
      ran::Cell(CellId{1}, "a", ran::Bandwidth::mhz20, ran::SharingPolicy::pooled));
  controller.add_cell(
      ran::Cell(CellId{2}, "b", ran::Bandwidth::mhz20, ran::SharingPolicy::pooled));
  ASSERT_TRUE(controller.install_plmn(PlmnId{1}).ok());
  ASSERT_TRUE(controller.set_cell_active(CellId{1}, false).ok());

  const Result<ran::RanAllocation> alloc =
      controller.set_allocation(PlmnId{1}, DataRate::mbps(20.0));
  ASSERT_TRUE(alloc.ok());
  EXPECT_FALSE(alloc.value().per_cell.contains(CellId{1}));
  EXPECT_TRUE(alloc.value().per_cell.contains(CellId{2}));

  // More than one live cell can carry must fail.
  const double one_cell = ran::throughput_of(PrbCount{100}, ran::Cqi{10}).as_mbps();
  EXPECT_FALSE(controller.set_allocation(PlmnId{1}, DataRate::mbps(one_cell * 1.5)).ok());
}

// --- slice resizing on the full testbed ----------------------------------------

TEST(ResizeSlice, GrowShrinkAndAtomicFailure) {
  core::OrchestratorConfig config;
  config.overbooking.enabled = false;
  auto tb = core::make_testbed(51, config);

  core::SliceSpec spec = core::SliceSpec::from_profile(
      traffic::profile_for(traffic::Vertical::embb_video), Duration::hours(24.0));
  spec.expected_throughput = DataRate::mbps(20.0);
  const RequestId request = tb->orchestrator->submit(spec);
  const core::SliceRecord* record = tb->orchestrator->find_by_request(request);
  tb->simulator.run_for(Duration::seconds(30.0));
  ASSERT_EQ(record->state, core::SliceState::active);

  // Not-yet-active and unknown slices are rejected.
  EXPECT_EQ(tb->orchestrator->resize_slice(SliceId{999}, DataRate::mbps(5.0)).error().code,
            Errc::not_found);
  EXPECT_EQ(tb->orchestrator->resize_slice(record->id, DataRate::zero()).error().code,
            Errc::invalid_argument);

  // Grow within capacity.
  ASSERT_TRUE(tb->orchestrator->resize_slice(record->id, DataRate::mbps(40.0)).ok());
  EXPECT_DOUBLE_EQ(record->spec.expected_throughput.as_mbps(), 40.0);
  EXPECT_DOUBLE_EQ(record->reserved.as_mbps(), 40.0);
  const transport::PathReservation* path =
      tb->transport->find_path(record->embedding.paths.front());
  EXPECT_DOUBLE_EQ(path->reserved.as_mbps(), 40.0);

  // Shrink.
  ASSERT_TRUE(tb->orchestrator->resize_slice(record->id, DataRate::mbps(10.0)).ok());
  EXPECT_DOUBLE_EQ(record->reserved.as_mbps(), 10.0);

  // Grow beyond the whole RAN fails atomically.
  const Result<void> too_big =
      tb->orchestrator->resize_slice(record->id, DataRate::mbps(100000.0));
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.error().code, Errc::insufficient_capacity);
  EXPECT_DOUBLE_EQ(record->spec.expected_throughput.as_mbps(), 10.0);
  EXPECT_DOUBLE_EQ(record->reserved.as_mbps(), 10.0);
  EXPECT_DOUBLE_EQ(tb->transport->find_path(record->embedding.paths.front())
                       ->reserved.as_mbps(),
                   10.0);
}

TEST(ResizeSlice, WorksOverRestPatch) {
  auto tb = core::make_testbed(52);
  json::Value body;
  body["vertical"] = "iot_metering";
  body["duration_hours"] = 4.0;
  const Result<json::Value> created =
      tb->bus.call_json("orchestrator", net::Method::post, "/slices", body);
  ASSERT_TRUE(created.ok());
  const auto id = static_cast<std::uint64_t>(created.value().find("slice")->as_number());
  tb->simulator.run_for(Duration::seconds(30.0));

  json::Value patch;
  patch["throughput_mbps"] = 5.0;
  ASSERT_TRUE(tb->bus.call_json("orchestrator", net::Method::patch,
                                "/slices/" + std::to_string(id), patch)
                  .ok());
  const core::SliceRecord* record = tb->orchestrator->find_slice(SliceId{id});
  EXPECT_DOUBLE_EQ(record->spec.expected_throughput.as_mbps(), 5.0);
}

// --- operator health / trace surface --------------------------------------------

// The slicectl `health` and `trace dump` subcommands are thin wrappers
// over GET /healthz and GET /trace; drive the same routes over the bus
// and check they reflect injected failures.
TEST(HealthSurface, HealthzAndTraceDumpReflectOrchestratorState) {
  telemetry::trace::set_enabled(true);
  telemetry::trace::set_wall_clock(false);
  telemetry::trace::clear();

  auto tb = core::make_testbed(54);
  json::Value body;
  body["vertical"] = "embb_video";
  body["duration_hours"] = 2.0;
  ASSERT_TRUE(tb->bus.call_json("orchestrator", net::Method::post, "/slices", body).ok());
  tb->simulator.run_for(Duration::minutes(35.0));  // past two monitoring periods

  // slicectl health: everything up, epochs fresh.
  const Result<json::Value> health = tb->bus.get_json("orchestrator", "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().find("status")->as_string(), "ok");
  EXPECT_TRUE(health.value().find("components")->find("ran")->as_bool());
  EXPECT_TRUE(health.value().find("last_epoch")->find("ran")->as_bool());
  EXPECT_FALSE(health.value().find("journal")->find("attached")->as_bool());
  EXPECT_TRUE(health.value().find("trace")->find("enabled")->as_bool());
  EXPECT_GT(health.value().find("trace")->find("spans")->as_number(), 0.0);

  // slicectl trace dump: spans from the epoch loop and the admission.
  const Result<json::Value> dump = tb->bus.get_json("orchestrator", "/trace");
  ASSERT_TRUE(dump.ok());
  bool saw_epoch = false;
  bool saw_admit = false;
  for (const json::Value& event : dump.value().find("traceEvents")->as_array()) {
    const std::string& name = event.find("name")->as_string();
    saw_epoch = saw_epoch || name == "orch.serve_epoch";
    saw_admit = saw_admit || name == "orch.admit.decide";
  }
  EXPECT_TRUE(saw_epoch);
  EXPECT_TRUE(saw_admit);

  // An attached-but-unopened store is a journal failure: degraded.
  store::StateStore store(store::StoreConfig{.directory = ""}, &tb->registry);
  tb->orchestrator->attach_store(&store);
  const Result<json::Value> degraded = tb->bus.get_json("orchestrator", "/healthz");
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(degraded.value().find("status")->as_string(), "degraded");
  EXPECT_TRUE(degraded.value().find("journal")->find("attached")->as_bool());
  EXPECT_FALSE(degraded.value().find("journal")->find("open")->as_bool());

  telemetry::trace::set_enabled(false);
  telemetry::trace::clear();
}

// --- orchestrator kill-and-recover ----------------------------------------------

TEST(KillAndRecover, ServiceResumesFromJournalAfterOrchestratorLoss) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "slices_kill_recover_test";
  std::filesystem::remove_all(dir);

  Money earned_before;
  SliceId slice;
  SimTime ends_at;
  {
    auto tb = core::make_testbed(53);
    store::StateStore store(store::StoreConfig{.directory = dir.string()}, &tb->registry);
    ASSERT_TRUE(store.open().ok());
    tb->orchestrator->attach_store(&store);

    core::SliceSpec spec = core::SliceSpec::from_profile(
        traffic::profile_for(traffic::Vertical::embb_video), Duration::hours(2.0));
    spec.expected_throughput = DataRate::mbps(25.0);
    const RequestId request = tb->orchestrator->submit(
        spec, std::make_unique<traffic::ConstantTraffic>(10.0));
    tb->simulator.run_for(Duration::minutes(30.0));

    const core::SliceRecord* record = tb->orchestrator->find_by_request(request);
    ASSERT_EQ(record->state, core::SliceState::active);
    slice = record->id;
    ends_at = record->ends_at;
    earned_before = tb->orchestrator->ledger().total_earned();
    EXPECT_GT(earned_before.as_cents(), 0);
  }  // the whole process — orchestrator, controllers, simulator — is gone

  auto tb = core::make_testbed(53);
  store::StateStore store(store::StoreConfig{.directory = dir.string()}, &tb->registry);
  ASSERT_TRUE(store.open().ok());
  tb->orchestrator->attach_store(&store);
  const Result<core::RecoveryStats> stats = tb->orchestrator->recover_from_store();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().reinstalled, 1u);
  EXPECT_EQ(stats.value().reinstall_failures, 0u);

  // The recovered ledger carries the pre-crash earnings, and the slice
  // keeps accruing revenue once epochs resume.
  const core::SliceRecord* record = tb->orchestrator->find_slice(slice);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->state, core::SliceState::active);
  EXPECT_EQ(tb->orchestrator->ledger().total_earned(), earned_before);
  tb->simulator.run_for(Duration::minutes(30.0));
  EXPECT_GT(tb->orchestrator->ledger().total_earned().as_cents(),
            earned_before.as_cents());

  // And it still expires exactly when the original contract said.
  tb->simulator.run_until(ends_at);
  EXPECT_EQ(record->state, core::SliceState::expired);
}

}  // namespace
}  // namespace slices
