// Unit + property tests for the forecasting engine: online models,
// residual tracking, backtesting, model selection, demand estimation.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "common/rng.hpp"
#include "forecast/ar.hpp"
#include "forecast/backtest.hpp"
#include "forecast/demand_estimator.hpp"
#include "forecast/forecaster.hpp"
#include "forecast/residual.hpp"

namespace slices::forecast {
namespace {

std::vector<double> constant_series(double v, std::size_t n) {
  return std::vector<double>(n, v);
}

std::vector<double> linear_series(double start, double slope, std::size_t n) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = start + slope * static_cast<double>(i);
  return out;
}

std::vector<double> seasonal_series(double mean, double amplitude, std::size_t period,
                                    std::size_t n, double noise = 0.0,
                                    std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double angle =
        2.0 * std::numbers::pi * static_cast<double>(i % period) / static_cast<double>(period);
    out[i] = mean + amplitude * std::sin(angle) + noise * rng.normal();
  }
  return out;
}

void feed(Forecaster& model, const std::vector<double>& series) {
  for (const double v : series) model.observe(v);
}

// --- individual models -------------------------------------------------------

TEST(NaiveForecaster, PredictsLastValue) {
  NaiveForecaster model;
  EXPECT_FALSE(model.ready());
  model.observe(5.0);
  EXPECT_TRUE(model.ready());
  model.observe(7.0);
  EXPECT_DOUBLE_EQ(model.predict(1), 7.0);
  EXPECT_DOUBLE_EQ(model.predict(10), 7.0);
}

TEST(MovingAverageForecaster, AveragesWindow) {
  MovingAverageForecaster model(3);
  feed(model, {1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(model.predict(1), 3.0);  // (2+3+4)/3
}

TEST(MovingAverageForecaster, ShortHistoryUsesWhatExists) {
  MovingAverageForecaster model(10);
  feed(model, {4.0, 6.0});
  EXPECT_DOUBLE_EQ(model.predict(1), 5.0);
}

TEST(EwmaForecaster, ConvergesToConstant) {
  EwmaForecaster model(0.3);
  feed(model, constant_series(12.0, 50));
  EXPECT_NEAR(model.predict(1), 12.0, 1e-6);
}

TEST(EwmaForecaster, FirstObservationSeedsLevel) {
  EwmaForecaster model(0.2);
  model.observe(10.0);
  EXPECT_DOUBLE_EQ(model.predict(1), 10.0);
}

TEST(HoltForecaster, TracksLinearTrendExactly) {
  HoltForecaster model(0.5, 0.5);
  feed(model, linear_series(10.0, 2.0, 60));
  // On a noiseless ramp Holt locks the slope: h-step forecast continues it.
  const double last = 10.0 + 2.0 * 59.0;
  EXPECT_NEAR(model.predict(1), last + 2.0, 0.1);
  EXPECT_NEAR(model.predict(5), last + 10.0, 0.5);
}

TEST(HoltForecaster, ReadyAfterTwoObservations) {
  HoltForecaster model(0.4, 0.1);
  model.observe(1.0);
  EXPECT_FALSE(model.ready());
  model.observe(2.0);
  EXPECT_TRUE(model.ready());
}

TEST(SeasonalNaive, RepeatsLastSeasonExactly) {
  const std::size_t period = 6;
  SeasonalNaiveForecaster model(period);
  const std::vector<double> season{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  feed(model, season);
  ASSERT_TRUE(model.ready());
  for (std::size_t h = 1; h <= period; ++h) {
    EXPECT_DOUBLE_EQ(model.predict(h), season[h - 1]) << "h=" << h;
  }
}

TEST(SeasonalNaive, TracksRollingSeasonAfterWrap) {
  SeasonalNaiveForecaster model(3);
  feed(model, {1.0, 2.0, 3.0});   // first season
  feed(model, {10.0, 20.0});      // overwrite two oldest
  // One period ahead should be the sample one season old: 3.0 came 3
  // periods before the next step? Next expected phase repeats 3.0,
  // then 10.0, then 20.0.
  EXPECT_DOUBLE_EQ(model.predict(1), 3.0);
  EXPECT_DOUBLE_EQ(model.predict(2), 10.0);
  EXPECT_DOUBLE_EQ(model.predict(3), 20.0);
}

TEST(SeasonalNaive, PerfectOnPureSeasonalBacktest) {
  const std::vector<double> series = seasonal_series(50.0, 20.0, 12, 12 * 20);
  const BacktestReport report = backtest(SeasonalNaiveForecaster(12), series);
  EXPECT_NEAR(report.rmse, 0.0, 1e-9);
}

TEST(SeasonalNaive, NotReadyBeforeFullSeason) {
  SeasonalNaiveForecaster model(4);
  feed(model, {1.0, 2.0, 3.0});
  EXPECT_FALSE(model.ready());
  model.observe(4.0);
  EXPECT_TRUE(model.ready());
}

TEST(HoltWinters, ReadyAfterOneSeason) {
  HoltWintersForecaster model(0.4, 0.05, 0.3, 8);
  for (int i = 0; i < 7; ++i) {
    model.observe(static_cast<double>(i));
    EXPECT_FALSE(model.ready());
  }
  model.observe(7.0);
  EXPECT_TRUE(model.ready());
}

TEST(HoltWinters, LearnsPureSeasonalPattern) {
  const std::size_t period = 12;
  HoltWintersForecaster model(0.3, 0.02, 0.4, period);
  const std::vector<double> series = seasonal_series(50.0, 20.0, period, period * 20);
  feed(model, series);
  // Forecast one full season ahead and compare with the true pattern.
  for (std::size_t h = 1; h <= period; ++h) {
    const double truth = series[series.size() - period + h - 1];
    EXPECT_NEAR(model.predict(h), truth, 2.0) << "h=" << h;
  }
}

TEST(HoltWinters, BeatsNaiveOnSeasonalTraffic) {
  const std::vector<double> series = seasonal_series(100.0, 40.0, 24, 24 * 30, 2.0);
  const BacktestReport hw =
      backtest(HoltWintersForecaster(0.4, 0.05, 0.3, 24), series);
  const BacktestReport naive = backtest(NaiveForecaster{}, series);
  EXPECT_LT(hw.rmse, naive.rmse * 0.6);
}

// Property sweep: every model family must produce finite forecasts on
// every canonical signal shape.
struct ModelCase {
  const char* label;
  std::unique_ptr<Forecaster> (*make)();
};

class AllModels : public ::testing::TestWithParam<ModelCase> {};

TEST_P(AllModels, FiniteForecastsOnCanonicalSignals) {
  const std::vector<std::vector<double>> signals = {
      constant_series(5.0, 100), linear_series(1.0, 0.5, 100),
      seasonal_series(10.0, 4.0, 24, 120, 0.5), constant_series(0.0, 100)};
  for (const auto& signal : signals) {
    std::unique_ptr<Forecaster> model = GetParam().make();
    feed(*model, signal);
    ASSERT_TRUE(model->ready());
    for (const std::size_t h : {1u, 4u, 24u}) {
      EXPECT_TRUE(std::isfinite(model->predict(h)))
          << GetParam().label << " h=" << h;
    }
  }
}

TEST_P(AllModels, MakeEmptyResetsState) {
  std::unique_ptr<Forecaster> model = GetParam().make();
  feed(*model, constant_series(9.0, 64));
  const std::unique_ptr<Forecaster> fresh = model->make_empty();
  EXPECT_FALSE(fresh->ready());
  EXPECT_EQ(fresh->name(), model->name());
}

INSTANTIATE_TEST_SUITE_P(
    Families, AllModels,
    ::testing::Values(
        ModelCase{"naive", [] { return std::unique_ptr<Forecaster>(new NaiveForecaster()); }},
        ModelCase{"sma",
                  [] { return std::unique_ptr<Forecaster>(new MovingAverageForecaster(8)); }},
        ModelCase{"ewma", [] { return std::unique_ptr<Forecaster>(new EwmaForecaster(0.3)); }},
        ModelCase{"holt",
                  [] { return std::unique_ptr<Forecaster>(new HoltForecaster(0.4, 0.1)); }},
        ModelCase{"holt_winters",
                  [] {
                    return std::unique_ptr<Forecaster>(
                        new HoltWintersForecaster(0.4, 0.05, 0.3, 24));
                  }}),
    [](const ::testing::TestParamInfo<ModelCase>& info) { return info.param.label; });

// --- ArForecaster -----------------------------------------------------------------

TEST(ArForecaster, RecoversAr1Coefficient) {
  // x_t = 5 + 0.7 x_{t-1} + noise: RLS must find ~[5, 0.7].
  ArForecaster model(1, 1.0);
  Rng rng(3);
  double x = 20.0;
  for (int i = 0; i < 3000; ++i) {
    model.observe(x);
    x = 5.0 + 0.7 * x + rng.normal(0.0, 0.3);
  }
  ASSERT_TRUE(model.ready());
  EXPECT_NEAR(model.coefficients()[1], 0.7, 0.05);
  EXPECT_NEAR(model.coefficients()[0], 5.0, 1.0);
  // Long-horizon forecast approaches the process mean 5/(1-0.7).
  EXPECT_NEAR(model.predict(200), 5.0 / 0.3, 1.5);
}

TEST(ArForecaster, ConstantSeriesConverges) {
  ArForecaster model(2);
  for (int i = 0; i < 100; ++i) model.observe(12.0);
  ASSERT_TRUE(model.ready());
  EXPECT_NEAR(model.predict(1), 12.0, 0.2);
  EXPECT_NEAR(model.predict(8), 12.0, 0.5);
}

TEST(ArForecaster, NotReadyUntilWarm) {
  ArForecaster model(3);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(model.ready());
    model.observe(static_cast<double>(i));
  }
}

TEST(ArForecaster, MakeEmptyResets) {
  ArForecaster model(2);
  for (int i = 0; i < 50; ++i) model.observe(3.0);
  const auto fresh = model.make_empty();
  EXPECT_FALSE(fresh->ready());
  EXPECT_EQ(fresh->name(), "ar_rls");
}

TEST(ArForecaster, BeatsNaiveOnAutocorrelatedTraffic) {
  // A strongly mean-reverting AR(1) process: exploit the correlation.
  Rng rng(8);
  std::vector<double> series;
  double x = 50.0;
  for (int i = 0; i < 2000; ++i) {
    series.push_back(x);
    x = 25.0 + 0.5 * x + rng.normal(0.0, 2.0);
  }
  const BacktestReport ar = backtest(ArForecaster(1, 1.0), series);
  const BacktestReport naive = backtest(NaiveForecaster{}, series);
  EXPECT_LT(ar.rmse, naive.rmse);
}

// --- ResidualTracker -----------------------------------------------------------

TEST(ResidualTracker, QuantileOfKnownResiduals) {
  ResidualTracker tracker(64);
  for (int i = 1; i <= 100; ++i) tracker.record(static_cast<double>(i));  // keeps 37..100
  EXPECT_EQ(tracker.size(), 64u);
  EXPECT_DOUBLE_EQ(tracker.quantile(0.0), 37.0);
  EXPECT_DOUBLE_EQ(tracker.quantile(1.0), 100.0);
}

TEST(ResidualTracker, SafetyMarginNeverNegative) {
  ResidualTracker tracker;
  for (int i = 0; i < 50; ++i) tracker.record(-5.0);  // model over-forecasts
  EXPECT_DOUBLE_EQ(tracker.safety_margin(0.95), 0.0);
  EXPECT_DOUBLE_EQ(ResidualTracker{}.safety_margin(0.95), 0.0);  // empty
}

TEST(ResidualTracker, MarginGrowsWithQuantile) {
  ResidualTracker tracker;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) tracker.record(rng.normal(0.0, 3.0));
  EXPECT_LE(tracker.safety_margin(0.5), tracker.safety_margin(0.9));
  EXPECT_LE(tracker.safety_margin(0.9), tracker.safety_margin(0.99));
}

// --- backtest -------------------------------------------------------------------

TEST(Backtest, PerfectModelHasZeroError) {
  const BacktestReport report = backtest(NaiveForecaster{}, constant_series(10.0, 50));
  EXPECT_EQ(report.evaluated, 49u);  // first sample warms up
  EXPECT_DOUBLE_EQ(report.mae, 0.0);
  EXPECT_DOUBLE_EQ(report.rmse, 0.0);
  EXPECT_DOUBLE_EQ(report.upper_bound_violation_rate, 0.0);
}

TEST(Backtest, ViolationRateRoughlyMatchesQuantile) {
  const std::vector<double> series = seasonal_series(100.0, 30.0, 24, 24 * 60, 5.0);
  const BacktestReport report =
      backtest(HoltWintersForecaster(0.4, 0.05, 0.3, 24), series, /*q=*/0.9);
  // With a 0.9 safety quantile, ~10% of actuals may exceed the bound.
  EXPECT_LT(report.upper_bound_violation_rate, 0.2);
  EXPECT_GT(report.upper_bound_violation_rate, 0.01);
}

TEST(Backtest, BiasDetectsSystematicUnderforecast) {
  const BacktestReport report = backtest(NaiveForecaster{}, linear_series(0.0, 1.0, 100));
  EXPECT_NEAR(report.bias, 1.0, 1e-9);  // naive lags a ramp by one slope
}

TEST(CompareModels, RanksByRmseBestFirst) {
  const std::vector<double> series = seasonal_series(80.0, 30.0, 24, 24 * 30, 1.0);
  const auto reports = compare_models(default_candidates(24), series);
  ASSERT_GE(reports.size(), 5u);
  EXPECT_EQ(reports.front().model, "holt_winters");
  for (std::size_t i = 0; i + 1 < reports.size(); ++i) {
    EXPECT_LE(reports[i].rmse, reports[i + 1].rmse);
  }
}

// --- DemandEstimator -------------------------------------------------------------

TEST(DemandEstimator, UpperBoundCoversForecast) {
  DemandEstimator estimator(std::make_unique<EwmaForecaster>(0.3));
  Rng rng(9);
  for (int i = 0; i < 200; ++i) estimator.observe(rng.normal(40.0, 5.0));
  ASSERT_TRUE(estimator.ready());
  const double point = estimator.predict(1);
  EXPECT_GE(estimator.upper_bound(0.95, 1), point);
  EXPECT_GE(estimator.upper_bound(0.95, 4), estimator.upper_bound(0.0, 4) - 1e-9);
}

TEST(DemandEstimator, UpperBoundIsMaxOverHorizon) {
  // Rising trend: longer horizon must raise the bound.
  DemandEstimator estimator(std::make_unique<HoltForecaster>(0.5, 0.5));
  for (int i = 0; i < 50; ++i) estimator.observe(10.0 + 2.0 * i);
  EXPECT_GT(estimator.upper_bound(0.5, 8), estimator.upper_bound(0.5, 1));
}

TEST(DemandEstimator, NeverNegative) {
  DemandEstimator estimator(std::make_unique<HoltForecaster>(0.5, 0.5));
  for (int i = 0; i < 50; ++i) estimator.observe(100.0 - 2.0 * i);  // falling to 2
  EXPECT_GE(estimator.upper_bound(0.95, 24), 0.0);
}

TEST(DemandEstimator, AdaptiveReselectsOnSeasonalData) {
  DemandEstimator estimator = DemandEstimator::adaptive(24);
  const std::vector<double> series = seasonal_series(60.0, 25.0, 24, 24 * 20, 1.0);
  for (const double v : series) estimator.observe(v);
  EXPECT_EQ(estimator.model_name(), "holt_winters");
  EXPECT_EQ(estimator.observations(), series.size());
}

TEST(DemandEstimator, LastObservationTracked) {
  DemandEstimator estimator(std::make_unique<NaiveForecaster>());
  EXPECT_DOUBLE_EQ(estimator.last_observation(), 0.0);
  estimator.observe(3.5);
  EXPECT_DOUBLE_EQ(estimator.last_observation(), 3.5);
}

}  // namespace
}  // namespace slices::forecast
