// Unit + property tests for the overbooking engine.

#include <gtest/gtest.h>

#include <numbers>

#include "common/rng.hpp"
#include "core/overbooking.hpp"

namespace slices::core {
namespace {

OverbookingConfig test_config() {
  OverbookingConfig config;
  config.season_length = 24;
  config.warmup_observations = 8;
  return config;
}

void feed_diurnal(OverbookingEngine& engine, SliceId slice, int samples, double mean,
                  double amplitude, std::uint64_t seed = 1) {
  Rng rng(seed);
  for (int i = 0; i < samples; ++i) {
    const double angle = 2.0 * std::numbers::pi * (i % 24) / 24.0;
    engine.observe(slice, mean + amplitude * std::sin(angle) + rng.normal(0.0, 1.0));
  }
}

TEST(OverbookingEngine, UnknownSliceGetsFullContract) {
  OverbookingEngine engine(test_config());
  EXPECT_EQ(engine.target_reservation(SliceId{1}, DataRate::mbps(50.0)), DataRate::mbps(50.0));
  EXPECT_EQ(engine.reclaimable(SliceId{1}, DataRate::mbps(50.0)), DataRate::zero());
}

TEST(OverbookingEngine, WarmupKeepsFullContract) {
  OverbookingEngine engine(test_config());
  engine.track(SliceId{1});
  for (int i = 0; i < 5; ++i) engine.observe(SliceId{1}, 1.0);  // below warmup=8
  EXPECT_EQ(engine.target_reservation(SliceId{1}, DataRate::mbps(50.0)), DataRate::mbps(50.0));
}

TEST(OverbookingEngine, ReclaimsIdleCapacityAfterLearning) {
  OverbookingEngine engine(test_config());
  engine.track(SliceId{1});
  // Contracted 60, actual demand hovers near 10: most is reclaimable.
  feed_diurnal(engine, SliceId{1}, 24 * 10, 10.0, 3.0);
  const DataRate target = engine.target_reservation(SliceId{1}, DataRate::mbps(60.0));
  EXPECT_LT(target, DataRate::mbps(30.0));
  EXPECT_GT(engine.reclaimable(SliceId{1}, DataRate::mbps(60.0)), DataRate::mbps(30.0));
}

TEST(OverbookingEngine, NeverBelowFloorNorAboveContract) {
  OverbookingConfig config = test_config();
  config.floor_fraction = 0.2;
  OverbookingEngine engine(config);

  engine.track(SliceId{1});
  for (int i = 0; i < 100; ++i) engine.observe(SliceId{1}, 0.0);  // zero demand
  const DataRate floor_target = engine.target_reservation(SliceId{1}, DataRate::mbps(50.0));
  EXPECT_EQ(floor_target, DataRate::mbps(10.0));  // 0.2 x 50

  engine.track(SliceId{2});
  for (int i = 0; i < 100; ++i) engine.observe(SliceId{2}, 500.0);  // way over contract
  EXPECT_EQ(engine.target_reservation(SliceId{2}, DataRate::mbps(50.0)), DataRate::mbps(50.0));
}

TEST(OverbookingEngine, DisabledMeansFullContract) {
  OverbookingConfig config = test_config();
  config.enabled = false;
  OverbookingEngine engine(config);
  engine.track(SliceId{1});
  feed_diurnal(engine, SliceId{1}, 24 * 10, 5.0, 2.0);
  EXPECT_EQ(engine.target_reservation(SliceId{1}, DataRate::mbps(60.0)), DataRate::mbps(60.0));
}

TEST(OverbookingEngine, UntrackForgetsHistory) {
  OverbookingEngine engine(test_config());
  engine.track(SliceId{1});
  feed_diurnal(engine, SliceId{1}, 24 * 10, 5.0, 2.0);
  EXPECT_TRUE(engine.tracks(SliceId{1}));
  engine.untrack(SliceId{1});
  EXPECT_FALSE(engine.tracks(SliceId{1}));
  EXPECT_EQ(engine.find(SliceId{1}), nullptr);
  EXPECT_EQ(engine.target_reservation(SliceId{1}, DataRate::mbps(60.0)), DataRate::mbps(60.0));
}

TEST(OverbookingEngine, TrackIsIdempotent) {
  OverbookingEngine engine(test_config());
  engine.track(SliceId{1});
  feed_diurnal(engine, SliceId{1}, 24 * 5, 5.0, 2.0);
  const std::size_t observations = engine.find(SliceId{1})->observations();
  engine.track(SliceId{1});  // must not reset the estimator
  EXPECT_EQ(engine.find(SliceId{1})->observations(), observations);
}

TEST(OverbookingEngine, ObserveOnUntrackedSliceIsIgnored) {
  OverbookingEngine engine(test_config());
  engine.observe(SliceId{9}, 10.0);  // no crash, no state
  EXPECT_FALSE(engine.tracks(SliceId{9}));
}

// Property: the reservation target is monotone in the risk quantile —
// a more conservative broker reserves at least as much.
class RiskSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RiskSweep, TargetMonotoneInRiskQuantile) {
  const std::uint64_t seed = GetParam();
  double previous = -1.0;
  for (const double q : {0.5, 0.75, 0.9, 0.95, 0.99}) {
    OverbookingConfig config = test_config();
    config.risk_quantile = q;
    OverbookingEngine engine(config);
    engine.track(SliceId{1});
    feed_diurnal(engine, SliceId{1}, 24 * 15, 20.0, 8.0, seed);
    const double target = engine.target_reservation(SliceId{1}, DataRate::mbps(60.0)).as_mbps();
    EXPECT_GE(target + 1e-9, previous) << "q=" << q << " seed=" << seed;
    previous = target;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RiskSweep, ::testing::Values(1, 2, 3, 5, 8, 13));

// Property: target covers near-future demand most of the time at a high
// quantile (the safety story of the engine).
TEST(OverbookingEngine, HighQuantileTargetRarelyUndershootsNextDemand) {
  OverbookingConfig config = test_config();
  config.risk_quantile = 0.95;
  OverbookingEngine engine(config);
  engine.track(SliceId{1});

  Rng rng(21);
  int evaluated = 0;
  int undershoot = 0;
  double phase = 0.0;
  for (int i = 0; i < 24 * 40; ++i) {
    const double demand = 20.0 + 8.0 * std::sin(phase) + rng.normal(0.0, 1.5);
    if (engine.find(SliceId{1})->ready() && i > 24 * 4) {
      const double target =
          engine.target_reservation(SliceId{1}, DataRate::mbps(100.0)).as_mbps();
      ++evaluated;
      if (std::max(0.0, demand) > target) ++undershoot;
    }
    engine.observe(SliceId{1}, std::max(0.0, demand));
    phase += 2.0 * std::numbers::pi / 24.0;
  }
  ASSERT_GT(evaluated, 500);
  EXPECT_LT(static_cast<double>(undershoot) / evaluated, 0.10);
}

}  // namespace
}  // namespace slices::core
