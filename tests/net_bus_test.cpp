// Unit tests for the in-process REST bus.

#include <gtest/gtest.h>

#include <memory>

#include "net/rest_bus.hpp"

namespace slices::net {
namespace {

std::shared_ptr<Router> echo_service() {
  auto router = std::make_shared<Router>();
  router->add(Method::post, "/echo", [](const RouteContext& ctx) {
    return Response::json(Status::ok, ctx.request->body);
  });
  router->add(Method::get, "/fail", [](const RouteContext&) {
    return Response::from_error(make_error(Errc::insufficient_capacity, "full"));
  });
  router->add(Method::get, "/value", [](const RouteContext&) {
    return Response::json(Status::ok, R"({"v":41})");
  });
  return router;
}

TEST(RestBus, UnknownServiceIsUnavailable) {
  RestBus bus;
  Request req;
  const Result<Response> resp = bus.call("ghost", req);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.error().code, Errc::unavailable);
}

TEST(RestBus, RegisterAndCallRoundTripsThroughWire) {
  RestBus bus;
  bus.register_service("svc", echo_service());
  ASSERT_TRUE(bus.has_service("svc"));

  Request req;
  req.method = Method::post;
  req.target = "/echo";
  req.body = R"({"hello":"world"})";
  const Result<Response> resp = bus.call("svc", req);
  ASSERT_TRUE(resp.ok()) << resp.error().message;
  EXPECT_EQ(resp.value().status, Status::ok);
  EXPECT_EQ(resp.value().body, R"({"hello":"world"})");
}

TEST(RestBus, UnregisterRemovesService) {
  RestBus bus;
  bus.register_service("svc", echo_service());
  bus.unregister_service("svc");
  EXPECT_FALSE(bus.has_service("svc"));
  Request req;
  EXPECT_FALSE(bus.call("svc", req).ok());
}

TEST(RestBus, CallJsonParsesSuccessBody) {
  RestBus bus;
  bus.register_service("svc", echo_service());
  const Result<json::Value> v = bus.get_json("svc", "/value");
  ASSERT_TRUE(v.ok()) << v.error().message;
  EXPECT_EQ(v.value().find("v")->as_int(), 41);
}

TEST(RestBus, CallJsonMapsHttpErrorsToErrc) {
  RestBus bus;
  bus.register_service("svc", echo_service());
  const Result<json::Value> v = bus.get_json("svc", "/fail");
  ASSERT_FALSE(v.ok());
  // insufficient_capacity travels as 409 and comes back as conflict.
  EXPECT_EQ(v.error().code, Errc::conflict);
  EXPECT_NE(v.error().message.find("409"), std::string::npos);
}

TEST(RestBus, CallJsonSendsBodyWithContentType) {
  RestBus bus;
  auto router = std::make_shared<Router>();
  router->add(Method::post, "/check", [](const RouteContext& ctx) {
    const bool has_type = ctx.request->headers.contains("Content-Type");
    return Response::json(Status::ok, has_type ? "true" : "false");
  });
  bus.register_service("svc", router);

  json::Value body;
  body["x"] = 1;
  const Result<json::Value> v = bus.call_json("svc", Method::post, "/check", body);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().as_bool(), true);
}

TEST(RestBus, StatsCountTrafficPerService) {
  RestBus bus;
  bus.register_service("svc", echo_service());

  Request ok_req;
  ok_req.method = Method::post;
  ok_req.target = "/echo";
  ok_req.body = "{}";
  (void)bus.call("svc", ok_req);
  (void)bus.call("svc", ok_req);
  Request bad_req;
  bad_req.method = Method::get;
  bad_req.target = "/fail";
  (void)bus.call("svc", bad_req);

  const BusStats& stats = bus.stats().at("svc");
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.responses_ok, 2u);
  EXPECT_EQ(stats.responses_error, 1u);
  EXPECT_GT(stats.bytes_tx, 0u);
  EXPECT_GT(stats.bytes_rx, 0u);
}

TEST(RestBus, EmptyResponseBodyBecomesJsonNull) {
  RestBus bus;
  auto router = std::make_shared<Router>();
  router->add(Method::del, "/thing", [](const RouteContext&) {
    Response resp;
    resp.status = Status::no_content;
    return resp;
  });
  bus.register_service("svc", router);
  const Result<json::Value> v = bus.call_json("svc", Method::del, "/thing", json::Value(nullptr));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value().is_null());
}

}  // namespace
}  // namespace slices::net
