// Unit tests for the in-process REST bus.

#include <gtest/gtest.h>

#include <memory>

#include "net/rest_bus.hpp"

namespace slices::net {
namespace {

std::shared_ptr<Router> echo_service() {
  auto router = std::make_shared<Router>();
  router->add(Method::post, "/echo", [](const RouteContext& ctx) {
    return Response::json(Status::ok, ctx.request->body);
  });
  router->add(Method::get, "/fail", [](const RouteContext&) {
    return Response::from_error(make_error(Errc::insufficient_capacity, "full"));
  });
  router->add(Method::get, "/value", [](const RouteContext&) {
    return Response::json(Status::ok, R"({"v":41})");
  });
  return router;
}

TEST(RestBus, UnknownServiceIsUnavailable) {
  RestBus bus;
  Request req;
  const Result<Response> resp = bus.call("ghost", req);
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(resp.error().code, Errc::unavailable);
}

TEST(RestBus, RegisterAndCallRoundTripsThroughWire) {
  RestBus bus;
  bus.register_service("svc", echo_service());
  ASSERT_TRUE(bus.has_service("svc"));

  Request req;
  req.method = Method::post;
  req.target = "/echo";
  req.body = R"({"hello":"world"})";
  const Result<Response> resp = bus.call("svc", req);
  ASSERT_TRUE(resp.ok()) << resp.error().message;
  EXPECT_EQ(resp.value().status, Status::ok);
  EXPECT_EQ(resp.value().body, R"({"hello":"world"})");
}

TEST(RestBus, UnregisterRemovesService) {
  RestBus bus;
  bus.register_service("svc", echo_service());
  bus.unregister_service("svc");
  EXPECT_FALSE(bus.has_service("svc"));
  Request req;
  EXPECT_FALSE(bus.call("svc", req).ok());
}

TEST(RestBus, CallJsonParsesSuccessBody) {
  RestBus bus;
  bus.register_service("svc", echo_service());
  const Result<json::Value> v = bus.get_json("svc", "/value");
  ASSERT_TRUE(v.ok()) << v.error().message;
  EXPECT_EQ(v.value().find("v")->as_int(), 41);
}

TEST(RestBus, CallJsonMapsHttpErrorsToErrc) {
  RestBus bus;
  bus.register_service("svc", echo_service());
  const Result<json::Value> v = bus.get_json("svc", "/fail");
  ASSERT_FALSE(v.ok());
  // insufficient_capacity travels as 409 and comes back as conflict.
  EXPECT_EQ(v.error().code, Errc::conflict);
  EXPECT_NE(v.error().message.find("409"), std::string::npos);
}

TEST(RestBus, CallJsonSendsBodyWithContentType) {
  RestBus bus;
  auto router = std::make_shared<Router>();
  router->add(Method::post, "/check", [](const RouteContext& ctx) {
    const bool has_type = ctx.request->headers.contains("Content-Type");
    return Response::json(Status::ok, has_type ? "true" : "false");
  });
  bus.register_service("svc", router);

  json::Value body;
  body["x"] = 1;
  const Result<json::Value> v = bus.call_json("svc", Method::post, "/check", body);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().as_bool(), true);
}

TEST(RestBus, StatsCountTrafficPerService) {
  RestBus bus;
  bus.register_service("svc", echo_service());

  Request ok_req;
  ok_req.method = Method::post;
  ok_req.target = "/echo";
  ok_req.body = "{}";
  (void)bus.call("svc", ok_req);
  (void)bus.call("svc", ok_req);
  Request bad_req;
  bad_req.method = Method::get;
  bad_req.target = "/fail";
  (void)bus.call("svc", bad_req);

  const BusStats stats = bus.stats().at("svc");
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.responses_ok, 2u);
  EXPECT_EQ(stats.responses_error, 1u);
  EXPECT_GT(stats.bytes_tx, 0u);
  EXPECT_GT(stats.bytes_rx, 0u);
}

TEST(RestBus, FastPathMatchesWirePath) {
  // Same call sequence through an always-encode bus and a mostly-fast-
  // path bus: responses and traffic counters must be indistinguishable.
  RestBus wire_bus;
  wire_bus.set_wire_check_interval(1);  // every call crosses the codec
  RestBus fast_bus;
  fast_bus.set_wire_check_interval(1000);  // only the first call does
  wire_bus.register_service("svc", echo_service());
  fast_bus.register_service("svc", echo_service());

  Request req;
  req.method = Method::post;
  req.target = "/echo";
  req.body = R"({"k":123})";
  for (int i = 0; i < 5; ++i) {
    const Result<Response> from_wire = wire_bus.call("svc", req);
    const Result<Response> from_fast = fast_bus.call("svc", req);
    ASSERT_TRUE(from_wire.ok());
    ASSERT_TRUE(from_fast.ok());
    EXPECT_EQ(from_wire.value().status, from_fast.value().status);
    EXPECT_EQ(from_wire.value().body, from_fast.value().body);
    EXPECT_EQ(from_wire.value().headers.at("Content-Length"),
              from_fast.value().headers.at("Content-Length"));
    EXPECT_EQ(from_wire.value().headers.size(), from_fast.value().headers.size());
  }

  const BusStats wire_stats = wire_bus.stats().at("svc");
  const BusStats fast_stats = fast_bus.stats().at("svc");
  EXPECT_EQ(wire_stats.requests, fast_stats.requests);
  EXPECT_EQ(wire_stats.responses_ok, fast_stats.responses_ok);
  EXPECT_EQ(wire_stats.bytes_tx, fast_stats.bytes_tx);  // exact, not sampled
  EXPECT_EQ(wire_stats.bytes_rx, fast_stats.bytes_rx);
}

TEST(RestBus, WireCheckSamplingExercisesCodec) {
  // A response whose header embeds CRLF survives the fast path but
  // cannot cross the wire — so codec failures surface exactly on the
  // sampled calls, proving those calls really round-trip the codec.
  RestBus bus;
  bus.set_wire_check_interval(2);
  auto router = std::make_shared<Router>();
  router->add(Method::get, "/poison", [](const RouteContext&) {
    Response resp = Response::json(Status::ok, "{}");
    resp.headers.insert_or_assign("X-Poison", "a\r\nb");
    return resp;
  });
  bus.register_service("svc", router);

  Request req;
  req.target = "/poison";
  const Result<Response> first = bus.call("svc", req);   // 1 % 2 == 1 -> wire
  const Result<Response> second = bus.call("svc", req);  // 2 % 2 == 0 -> fast
  const Result<Response> third = bus.call("svc", req);   // 3 % 2 == 1 -> wire
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.error().code, Errc::protocol_error);
  EXPECT_TRUE(second.ok());
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.error().code, Errc::protocol_error);
}

TEST(RestBus, EncodedSizeMatchesEncode) {
  Request req;
  req.method = Method::post;
  req.target = "/slices/42";
  req.headers.insert_or_assign("Content-Type", "application/json");
  req.headers.insert_or_assign("X-Custom", "value");
  req.body = R"({"rate_mbps":12.5})";
  EXPECT_EQ(req.encoded_size(), req.encode().size());

  Request bare;
  EXPECT_EQ(bare.encoded_size(), bare.encode().size());

  Response resp = Response::json(Status::created, R"({"id":7})");
  EXPECT_EQ(resp.encoded_size(), resp.encode().size());

  Response empty;
  empty.status = Status::no_content;
  EXPECT_EQ(empty.encoded_size(), empty.encode().size());

  // Body sizes around digit-count boundaries (9 -> 10 -> 100 bytes).
  for (const std::size_t n : {0u, 9u, 10u, 99u, 100u, 101u}) {
    Response sized;
    sized.body.assign(n, 'x');
    EXPECT_EQ(sized.encoded_size(), sized.encode().size()) << n;
  }
}

TEST(RestBus, EmptyResponseBodyBecomesJsonNull) {
  RestBus bus;
  auto router = std::make_shared<Router>();
  router->add(Method::del, "/thing", [](const RouteContext&) {
    Response resp;
    resp.status = Status::no_content;
    return resp;
  });
  bus.register_service("svc", router);
  const Result<json::Value> v = bus.call_json("svc", Method::del, "/thing", json::Value(nullptr));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value().is_null());
}

}  // namespace
}  // namespace slices::net
