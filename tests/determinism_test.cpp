// Determinism of the parallel epoch pipeline: running the testbed with
// a single-threaded epoch loop and with a worker pool must produce
// bit-identical results — the same OrchestratorSummary, the same
// telemetry series, and the same durable journal — for the same seed.
// This is the contract that lets operators turn on epoch_threads
// without invalidating reproducibility of experiments.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/testbed.hpp"
#include "json/value.hpp"
#include "ran/cell.hpp"
#include "ran/controller.hpp"
#include "store/store.hpp"
#include "telemetry/trace.hpp"
#include "traffic/verticals.hpp"
#include "transport/controller.hpp"
#include "transport/topology.hpp"

namespace slices::core {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  // Keyed by pid: several tests run run_scenario(1), and ctest -j runs
  // them in parallel processes — a shared path would let one test
  // remove_all the directory out from under another's open store.
  const fs::path dir = fs::temp_directory_path() /
                       ("slices_determinism_" + name + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

/// Everything observable a run produces.
struct RunResult {
  OrchestratorSummary summary;
  std::string state_json;      ///< serialized orchestrator state
  std::string telemetry_json;  ///< serialized full registry snapshot
  std::string journal_bytes;   ///< raw journal.wal contents
  std::string trace_json;      ///< Chrome trace export (sim-clock spans)
};

/// One full scenario: admission of three verticals, activation, several
/// monitoring epochs with overbooking adaptation, one early terminate
/// and one natural expiry — enough to touch every journaled op and both
/// active and inactive cell branches.
RunResult run_scenario(std::size_t epoch_threads, bool legacy_ran_path = false) {
  // Tracing stays *enabled* for the whole scenario: spans carry
  // sim-clock timestamps (wall clock off), so the exported trace must
  // be as bit-stable as the journal.
  telemetry::trace::set_enabled(true);
  telemetry::trace::set_wall_clock(false);
  telemetry::trace::clear();

  const fs::path dir = fresh_dir("threads_" + std::to_string(epoch_threads));
  store::StateStore store(store::StoreConfig{.directory = dir.string()});
  EXPECT_TRUE(store.open().ok());

  OrchestratorConfig config;
  config.epoch_threads = epoch_threads;
  auto tb = make_testbed(/*seed=*/77, config);
  tb->ran.set_legacy_epoch_path(legacy_ran_path);
  tb->orchestrator->attach_store(&store);

  const auto submit = [&](traffic::Vertical v, double hours, std::uint64_t seed) {
    return tb->orchestrator->submit(
        SliceSpec::from_profile(traffic::profile_for(v), Duration::hours(hours)),
        traffic::make_traffic(v, Rng(seed)));
  };
  const RequestId video = submit(traffic::Vertical::embb_video, 12.0, 7);
  (void)submit(traffic::Vertical::iot_metering, 2.0, 11);  // expires mid-run
  tb->simulator.run_for(Duration::hours(1.0));
  const RequestId gaming = submit(traffic::Vertical::cloud_gaming, 12.0, 13);
  tb->simulator.run_for(Duration::hours(3.0));

  // Early terminate one slice so the terminate/release path is covered.
  if (const SliceRecord* record = tb->orchestrator->find_by_request(gaming);
      record != nullptr && record->is_live()) {
    EXPECT_TRUE(tb->orchestrator->terminate(record->id).ok());
  }
  tb->simulator.run_for(Duration::hours(2.0));
  EXPECT_NE(tb->orchestrator->find_by_request(video), nullptr);

  RunResult out;
  out.summary = tb->orchestrator->summary();
  out.state_json = json::serialize(tb->orchestrator->state_json());
  out.telemetry_json = json::serialize(tb->registry.snapshot());
  telemetry::trace::Tracer::instance().export_chrome_json(out.trace_json);
  EXPECT_GT(telemetry::trace::Tracer::instance().span_count(), 0u);
  telemetry::trace::set_enabled(false);
  tb.reset();  // orchestrator released before its store
  out.journal_bytes = read_file(dir / "journal.wal");
  EXPECT_FALSE(out.journal_bytes.empty());
  fs::remove_all(dir);
  return out;
}

void expect_identical(const RunResult& base, const RunResult& other) {
  EXPECT_EQ(base.summary.active_slices, other.summary.active_slices);
  EXPECT_EQ(base.summary.installing_slices, other.summary.installing_slices);
  EXPECT_EQ(base.summary.admitted_total, other.summary.admitted_total);
  EXPECT_EQ(base.summary.rejected_total, other.summary.rejected_total);
  EXPECT_EQ(base.summary.contracted_total.bits_per_second(),
            other.summary.contracted_total.bits_per_second());
  EXPECT_EQ(base.summary.reserved_total.bits_per_second(),
            other.summary.reserved_total.bits_per_second());
  EXPECT_EQ(base.summary.multiplexing_gain, other.summary.multiplexing_gain);
  EXPECT_EQ(base.summary.earned.as_cents(), other.summary.earned.as_cents());
  EXPECT_EQ(base.summary.penalties.as_cents(), other.summary.penalties.as_cents());
  EXPECT_EQ(base.summary.net.as_cents(), other.summary.net.as_cents());
  EXPECT_EQ(base.summary.violation_epochs, other.summary.violation_epochs);
  EXPECT_EQ(base.summary.reconfigurations, other.summary.reconfigurations);
  EXPECT_EQ(base.state_json, other.state_json);
  EXPECT_EQ(base.telemetry_json, other.telemetry_json);
  EXPECT_EQ(base.journal_bytes, other.journal_bytes);
  EXPECT_EQ(base.trace_json, other.trace_json);
}

TEST(Determinism, PoolOfFourMatchesSingleThread) {
  const RunResult serial = run_scenario(1);
  const RunResult pooled = run_scenario(4);
  expect_identical(serial, pooled);
}

TEST(Determinism, OddPoolSizeMatchesSingleThread) {
  // A pool size that does not divide the cell count exercises uneven
  // work stealing across the shard boundary.
  const RunResult serial = run_scenario(1);
  const RunResult pooled = run_scenario(3);
  expect_identical(serial, pooled);
}

TEST(Determinism, RepeatedRunIsBitStable) {
  // Same seed, same pool size: the scenario itself must be a pure
  // function of the seed (guards against hidden wall-clock or address
  // dependent behaviour leaking into results).
  const RunResult a = run_scenario(2);
  const RunResult b = run_scenario(2);
  expect_identical(a, b);
}

// --- SoA-vs-legacy parity ---------------------------------------------------
//
// The batched epoch kernel (arena scratch, flat per-cell slabs) must be
// byte-for-byte indistinguishable from the pre-SoA reference path — in
// the full-testbed scorecard, telemetry, journal and trace.

TEST(Determinism, BatchedKernelMatchesLegacyPathSingleThread) {
  const RunResult batched = run_scenario(1, /*legacy_ran_path=*/false);
  const RunResult legacy = run_scenario(1, /*legacy_ran_path=*/true);
  expect_identical(batched, legacy);
}

TEST(Determinism, BatchedKernelMatchesLegacyPathPooled) {
  const RunResult batched = run_scenario(4, /*legacy_ran_path=*/false);
  const RunResult legacy = run_scenario(4, /*legacy_ran_path=*/true);
  expect_identical(batched, legacy);
}

// RAN-level parity at population scale: a controller with tens of cells
// and 10k/100k attached UEs (with detach holes in the columns) must
// produce bit-identical serve reports and telemetry on the batched and
// legacy paths, at every pool size. This is the scorecard the 1M-UE
// bench relies on.
struct RanScorecardOptions {
  std::size_t threads = 1;
  bool legacy_serve = false;
  bool legacy_wander = false;   ///< pre-SoA per-row CQI walk
  bool simd = false;            ///< explicit-SIMD wander apply (needs the build flag)
};

std::string ran_scorecard(std::size_t n_ues, const RanScorecardOptions& opt) {
  const bool simd_before = ran::wander_simd_enabled();
  ran::set_wander_simd_enabled(opt.simd);
  const std::size_t threads = opt.threads;
  telemetry::MonitorRegistry registry;
  ran::RanController ran(&registry);
  constexpr std::size_t kCells = 24;
  for (std::size_t i = 0; i < kCells; ++i) {
    ran.add_cell(ran::Cell(CellId{i + 1}, "cell-" + std::to_string(i),
                           ran::Bandwidth::mhz20, ran::SharingPolicy::pooled));
  }
  constexpr std::size_t kPlmns = 5;
  std::vector<PlmnId> plmns;
  for (std::size_t p = 0; p < kPlmns; ++p) {
    const PlmnId plmn{900 + p};
    EXPECT_TRUE(ran.install_plmn(plmn).ok());
    EXPECT_TRUE(ran.set_allocation(plmn, DataRate::mbps(40.0)).ok());
    plmns.push_back(plmn);
  }

  Rng rng(2026);
  std::vector<UeId> attached;
  attached.reserve(n_ues);
  for (std::size_t i = 0; i < n_ues; ++i) {
    const PlmnId plmn = plmns[rng.uniform_int(0, kPlmns - 1)];
    const ran::Cqi cqi{static_cast<int>(rng.uniform_int(1, 15))};
    const Result<UeId> ue = ran.attach_ue(plmn, cqi);
    EXPECT_TRUE(ue.ok());
    attached.push_back(ue.value());
  }
  // Punch holes: detach ~10% so the SoA free-list/row-reuse machinery
  // is exercised, then attach a fresh batch into the recycled rows.
  for (std::size_t i = 0; i < n_ues / 10; ++i) {
    const std::size_t victim = rng.uniform_int(0, attached.size() - 1);
    (void)ran.detach_ue(attached[victim]);
    attached[victim] = attached.back();
    attached.pop_back();
  }
  for (std::size_t i = 0; i < n_ues / 20; ++i) {
    const PlmnId plmn = plmns[rng.uniform_int(0, kPlmns - 1)];
    (void)ran.attach_ue(plmn, ran::Cqi{static_cast<int>(rng.uniform_int(1, 15))});
  }

  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
    ran.set_thread_pool(pool.get());
  }
  ran.set_legacy_epoch_path(opt.legacy_serve);
  ran.set_legacy_wander_path(opt.legacy_wander);

  std::string card;
  Rng wander_rng(7);
  std::vector<std::pair<PlmnId, DataRate>> demands;
  for (int epoch = 0; epoch < 4; ++epoch) {
    ran.wander_cqis(wander_rng, 0.3);
    demands.clear();
    for (std::size_t p = 0; p < kPlmns; ++p) {
      demands.emplace_back(plmns[p], DataRate::mbps(20.0 + 13.0 * static_cast<double>(p) +
                                                    5.0 * epoch));
    }
    const auto reports =
        ran.serve_epoch(demands, SimTime::from_seconds(epoch * 1.0));
    for (const ran::RanServeReport& r : reports) {
      card += std::to_string(r.plmn.value()) + ":";
      // Hex bit patterns — EQ on these is bit-exactness, not almost-equality.
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%a/%a/%a;", r.demand.bits_per_second(),
                    r.served.bits_per_second(), r.unserved.bits_per_second());
      card += buf;
    }
    card += "\n";
  }
  card += json::serialize(registry.snapshot());
  ran::set_wander_simd_enabled(simd_before);
  return card;
}

std::string ran_scorecard(std::size_t n_ues, std::size_t threads, bool legacy) {
  RanScorecardOptions opt;
  opt.threads = threads;
  opt.legacy_serve = legacy;
  return ran_scorecard(n_ues, opt);
}

TEST(Determinism, RanParity10kUes) {
  const std::string legacy = ran_scorecard(10'000, 1, /*legacy=*/true);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}, std::size_t{4}}) {
    EXPECT_EQ(ran_scorecard(10'000, threads, /*legacy=*/false), legacy)
        << "threads=" << threads;
  }
}

TEST(Determinism, RanParity100kUes) {
  const std::string legacy = ran_scorecard(100'000, 1, /*legacy=*/true);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    EXPECT_EQ(ran_scorecard(100'000, threads, /*legacy=*/false), legacy)
        << "threads=" << threads;
  }
}

// --- Wander kernel determinism ----------------------------------------------
//
// The batched CQI walk consumes one RNG word per four rows and shards
// across cells with pre-forked streams, so its output must not depend on
// the pool size; the explicit-SIMD apply (when compiled in) must be
// bit-identical to the portable scalar core.

TEST(Determinism, WanderVectorizedPoolInvariance) {
  RanScorecardOptions opt;
  const std::string serial = ran_scorecard(20'000, opt);
  for (const std::size_t threads : {std::size_t{3}, std::size_t{4}}) {
    opt.threads = threads;
    EXPECT_EQ(ran_scorecard(20'000, opt), serial) << "threads=" << threads;
  }
}

TEST(Determinism, WanderSimdMatchesScalar) {
  if (!ran::wander_simd_compiled()) {
    GTEST_SKIP() << "built without SLICES_ENABLE_SIMD/AVX2";
  }
  RanScorecardOptions scalar;
  RanScorecardOptions simd;
  simd.simd = true;
  EXPECT_EQ(ran_scorecard(20'000, scalar), ran_scorecard(20'000, simd));
  // And the SIMD apply must stay pool-invariant too.
  simd.threads = 4;
  EXPECT_EQ(ran_scorecard(20'000, scalar), ran_scorecard(20'000, simd));
}

TEST(Determinism, WanderLegacyWalkStillPoolInvariant) {
  RanScorecardOptions opt;
  opt.legacy_wander = true;
  const std::string serial = ran_scorecard(10'000, opt);
  opt.threads = 4;
  EXPECT_EQ(ran_scorecard(10'000, opt), serial);
}

// --- Transport kernel parity ------------------------------------------------
//
// Same contract as the RAN scorecard: the SoA transport serve kernel must
// be byte-identical to the legacy std::map path, at every pool size, over
// a fading substrate that forces scaling and reroutes.

std::string transport_scorecard(std::size_t threads, bool legacy) {
  telemetry::MonitorRegistry registry;
  transport::Topology topo;
  const NodeId s = topo.add_node("s", transport::NodeKind::enb_gateway);
  const NodeId m = topo.add_node("m", transport::NodeKind::openflow_switch);
  const NodeId t = topo.add_node("t", transport::NodeKind::core_gateway);
  topo.add_link(s, m, transport::LinkTechnology::mmwave, DataRate::mbps(10000.0),
                Duration::millis(1.0));
  topo.add_link(m, t, transport::LinkTechnology::uwave, DataRate::mbps(8000.0),
                Duration::millis(1.0));
  topo.add_link(s, t, transport::LinkTechnology::fiber, DataRate::mbps(6000.0),
                Duration::millis(4.0));
  transport::TransportController tc(std::move(topo), Rng(55), &registry);
  tc.set_legacy_epoch_path(legacy);

  std::vector<std::pair<PathId, DataRate>> demands;
  for (std::uint64_t i = 0; i < 160; ++i) {
    const Result<PathId> path = tc.allocate_path(SliceId{1 + i % 9}, s, t,
                                                 DataRate::mbps(25.0), Duration::millis(20.0));
    EXPECT_TRUE(path.ok());
    demands.emplace_back(path.value(), DataRate::mbps(20.0));
  }
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
    tc.set_thread_pool(pool.get());
  }

  std::string card;
  for (int epoch = 0; epoch < 60; ++epoch) {
    const auto reports = tc.serve_epoch(demands, SimTime::from_seconds(epoch * 1.0));
    for (const transport::PathServeReport& r : reports) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%llu:%a/%lld/%d%d;",
                    static_cast<unsigned long long>(r.path.value()),
                    r.served.bits_per_second(),
                    static_cast<long long>(r.experienced_delay.as_micros()),
                    r.delay_violated ? 1 : 0, r.degraded ? 1 : 0);
      card += buf;
    }
    card += "\n";
  }
  card += "reroutes=" + std::to_string(tc.reroutes()) + "\n";
  card += json::serialize(registry.snapshot());
  return card;
}

TEST(Determinism, TransportParityAcrossPoolSizes) {
  const std::string legacy = transport_scorecard(1, /*legacy=*/true);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}, std::size_t{4}}) {
    EXPECT_EQ(transport_scorecard(threads, /*legacy=*/false), legacy)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace slices::core
