// Robustness property tests: the wire-facing parsers (JSON, HTTP
// request/response, URL targets, trace CSV) must never crash and must
// return a typed error — not garbage — for arbitrary byte soup and for
// truncated/mutated valid documents.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "json/value.hpp"
#include "net/http.hpp"
#include "net/url.hpp"
#include "scenario/scenario.hpp"
#include "traffic/trace.hpp"

namespace slices {
namespace {

std::string random_bytes(Rng& rng, std::size_t max_len) {
  const std::size_t len = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(max_len)));
  std::string out(len, '\0');
  for (char& c : out) c = static_cast<char>(rng.uniform_int(0, 255));
  return out;
}

std::string random_printable(Rng& rng, std::size_t max_len) {
  static constexpr char kAlphabet[] =
      "{}[]\",:0123456789.eE+-truefalsnl \t\n\r\\/ufx";
  const std::size_t len = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(max_len)));
  std::string out(len, '\0');
  for (char& c : out) {
    c = kAlphabet[static_cast<std::size_t>(rng.uniform_int(0, sizeof kAlphabet - 2))];
  }
  return out;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, JsonNeverCrashes) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    // Raw bytes and JSON-flavored soup both must parse or error cleanly.
    (void)json::parse(random_bytes(rng, 64));
    const Result<json::Value> r = json::parse(random_printable(rng, 64));
    if (r.ok()) {
      // Whatever parsed must serialize and re-parse to itself.
      const std::string text = json::serialize(r.value());
      const Result<json::Value> again = json::parse(text);
      ASSERT_TRUE(again.ok()) << text;
      EXPECT_EQ(json::serialize(again.value()), text);
    }
  }
}

TEST_P(ParserFuzz, HttpNeverCrashes) {
  Rng rng(GetParam() * 31 + 7);
  for (int i = 0; i < 2000; ++i) {
    (void)net::parse_request(random_bytes(rng, 96));
    (void)net::parse_response(random_bytes(rng, 96));
  }
}

TEST_P(ParserFuzz, TruncatedValidRequestsAlwaysError) {
  net::Request req;
  req.method = net::Method::post;
  req.target = "/slices/7?verbose=1";
  req.headers.insert_or_assign("Content-Type", "application/json");
  req.body = R"({"vertical":"ehealth","duration_hours":4})";
  const std::string wire = req.encode();
  // Every strict prefix must fail (never mis-parse a partial message).
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const Result<net::Request> r = net::parse_request(wire.substr(0, len));
    EXPECT_FALSE(r.ok()) << "accepted a " << len << "-byte prefix";
  }
  EXPECT_TRUE(net::parse_request(wire).ok());
}

TEST_P(ParserFuzz, MutatedValidJsonNeverCrashes) {
  Rng rng(GetParam() * 97 + 3);
  const std::string base =
      R"({"slices":[{"id":1,"rate":12.5,"tags":["a","b"]},null,true],"n":-1e3})";
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = base;
    const std::size_t pos =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(base.size() - 1)));
    mutated[pos] = static_cast<char>(rng.uniform_int(0, 255));
    (void)json::parse(mutated);  // must not crash; outcome may be either
  }
}

TEST_P(ParserFuzz, UrlAndTraceNeverCrash) {
  Rng rng(GetParam() * 13 + 1);
  for (int i = 0; i < 2000; ++i) {
    (void)net::parse_target("/" + random_printable(rng, 32));
    (void)net::percent_decode(random_printable(rng, 32));
    (void)traffic::parse_trace_csv(random_printable(rng, 48));
  }
}

TEST_P(ParserFuzz, ScenarioParserNeverCrashes) {
  Rng rng(GetParam() * 131 + 17);
  for (int i = 0; i < 500; ++i) {
    // Arbitrary bytes and JSON-ish soup: typed error with a message.
    const Result<scenario::Scenario> raw = scenario::parse_scenario(random_bytes(rng, 96));
    if (!raw.ok()) EXPECT_FALSE(raw.error().message.empty());
    (void)scenario::parse_scenario(random_printable(rng, 96));
  }
}

TEST_P(ParserFuzz, MutatedValidScenarioErrorsAreActionable) {
  Rng rng(GetParam() * 211 + 5);
  const std::string base = R"({"name":"fuzz","seed":4,"duration_hours":6,
    "workload":{"arrivals_per_hour":2.0},
    "phases":[{"start_hours":0,"end_hours":3,"arrivals_per_hour":4.0}],
    "events":[{"kind":"link_down","at_hours":1,"link":"mmwave","duration_hours":1}],
    "targets":{"min_admission_rate":0.1}})";
  ASSERT_TRUE(scenario::parse_scenario(base).ok());
  for (int i = 0; i < 1000; ++i) {
    std::string mutated = base;
    const std::size_t pos =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(base.size() - 1)));
    mutated[pos] = static_cast<char>(rng.uniform_int(0, 255));
    const Result<scenario::Scenario> r = scenario::parse_scenario(mutated);
    // Must not crash; a rejection must say what and where went wrong.
    if (!r.ok()) EXPECT_FALSE(r.error().message.empty());
  }
  // Truncations of a valid scenario always error (with line/column).
  for (std::size_t len = 0; len < base.size(); ++len) {
    const Result<scenario::Scenario> r = scenario::parse_scenario(base.substr(0, len));
    ASSERT_FALSE(r.ok()) << "accepted a " << len << "-byte prefix";
    EXPECT_FALSE(r.error().message.empty());
  }
}

TEST_P(ParserFuzz, MutatedMobilityScenarioNeverCrashes) {
  Rng rng(GetParam() * 307 + 11);
  const std::string base = R"({"name":"fuzz_mob","seed":9,"duration_hours":8,
    "topology":"metro","federation":{"regions":2,"cells_per_region":4},
    "workload":{"arrivals_per_hour":2.0},
    "mobility":{"cell_spacing_m":400,"default_speed_mps":1.4,"ues_per_slice":40,
      "cqi_min":5,"cqi_max":15,
      "speed_classes":{"automotive":14,"cloud_gaming":0.9},
      "storms":[
        {"kind":"commuter_wave","at_hours":2,"duration_minutes":90,"fraction":0.5},
        {"kind":"stadium_ingress","at_hours":4,"duration_minutes":60,"fraction":0.4,
         "cell":"c2","region":"r1"},
        {"kind":"stadium_egress","at_hours":5.5,"duration_minutes":45,"fraction":0.4,
         "cell":"c2","region":"r1"}]}})";
  ASSERT_TRUE(scenario::parse_scenario(base).ok());
  for (int i = 0; i < 1000; ++i) {
    std::string mutated = base;
    const std::size_t pos =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(base.size() - 1)));
    mutated[pos] = static_cast<char>(rng.uniform_int(0, 255));
    const Result<scenario::Scenario> r = scenario::parse_scenario(mutated);
    // Must not crash; a rejection must say what and where went wrong.
    if (!r.ok()) EXPECT_FALSE(r.error().message.empty());
  }
}

TEST_P(ParserFuzz, MobilityStormSerializationRoundTrips) {
  const std::string base = R"({"name":"fuzz_mob","seed":9,"duration_hours":8,
    "topology":"metro","federation":{"regions":2,"cells_per_region":4},
    "workload":{"arrivals_per_hour":2.0},
    "mobility":{"ues_per_slice":40,
      "speed_classes":{"automotive":14,"cloud_gaming":0.9},
      "storms":[
        {"kind":"commuter_wave","at_hours":2,"duration_minutes":90,"fraction":0.5},
        {"kind":"stadium_ingress","at_hours":4,"duration_minutes":60,"fraction":0.4,
         "cell":"c2","region":"r1"}]}})";
  const Result<scenario::Scenario> parsed = scenario::parse_scenario(base);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  ASSERT_TRUE(parsed.value().mobility.enabled);
  ASSERT_EQ(parsed.value().mobility.storms.size(), 2u);

  // serialize_scenario is canonical: its output re-parses to a document
  // that serializes byte-identically, with every storm event intact.
  const std::string canonical = scenario::serialize_scenario(parsed.value());
  const Result<scenario::Scenario> again = scenario::parse_scenario(canonical);
  ASSERT_TRUE(again.ok()) << again.error().message;
  EXPECT_EQ(scenario::serialize_scenario(again.value()), canonical);

  const auto& a = parsed.value().mobility;
  const auto& b = again.value().mobility;
  ASSERT_EQ(b.storms.size(), a.storms.size());
  for (std::size_t i = 0; i < a.storms.size(); ++i) {
    EXPECT_EQ(b.storms[i].kind, a.storms[i].kind);
    EXPECT_EQ(b.storms[i].at.as_micros(), a.storms[i].at.as_micros());
    EXPECT_EQ(b.storms[i].duration.as_micros(), a.storms[i].duration.as_micros());
    EXPECT_DOUBLE_EQ(b.storms[i].fraction, a.storms[i].fraction);
    EXPECT_EQ(b.storms[i].cell, a.storms[i].cell);
    EXPECT_EQ(b.storms[i].region, a.storms[i].region);
  }
  EXPECT_EQ(b.speed_classes, a.speed_classes);
  EXPECT_EQ(b.ues_per_slice, a.ues_per_slice);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace slices
