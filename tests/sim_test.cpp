// Unit tests for the discrete-event simulation kernel.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "sim/simulator.hpp"

namespace slices::sim {
namespace {

TEST(Simulator, StartsAtOrigin) {
  Simulator s;
  EXPECT_EQ(s.now(), SimTime::origin());
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(SimTime::from_seconds(3.0), [&] { order.push_back(3); });
  s.schedule_at(SimTime::from_seconds(1.0), [&] { order.push_back(1); });
  s.schedule_at(SimTime::from_seconds(2.0), [&] { order.push_back(2); });
  s.run_until(SimTime::from_seconds(10.0));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), SimTime::from_seconds(10.0));
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(SimTime::from_seconds(1.0), [&order, i] { order.push_back(i); });
  }
  s.run_until(SimTime::from_seconds(1.0));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, RunUntilOnlyRunsDueEvents) {
  Simulator s;
  int fired = 0;
  s.schedule_at(SimTime::from_seconds(1.0), [&] { ++fired; });
  s.schedule_at(SimTime::from_seconds(5.0), [&] { ++fired; });
  EXPECT_EQ(s.run_until(SimTime::from_seconds(2.0)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.pending_events(), 1u);
  EXPECT_EQ(s.now(), SimTime::from_seconds(2.0));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  SimTime fired_at;
  s.schedule_at(SimTime::from_seconds(2.0), [&] {
    s.schedule_after(Duration::seconds(3.0), [&] { fired_at = s.now(); });
  });
  s.run_until(SimTime::from_seconds(10.0));
  EXPECT_EQ(fired_at, SimTime::from_seconds(5.0));
}

TEST(Simulator, PastScheduleClampsToNow) {
  Simulator s;
  s.run_until(SimTime::from_seconds(5.0));
  bool fired = false;
  s.schedule_at(SimTime::from_seconds(1.0), [&] { fired = true; });
  s.run_until(SimTime::from_seconds(5.0));
  EXPECT_TRUE(fired);
  EXPECT_EQ(s.now(), SimTime::from_seconds(5.0));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule_at(SimTime::from_seconds(1.0), [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // double-cancel reports false
  s.run_until(SimTime::from_seconds(2.0));
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator s;
  const EventId id = s.schedule_at(SimTime::from_seconds(1.0), [] {});
  s.run_until(SimTime::from_seconds(2.0));
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator s;
  int fired = 0;
  s.schedule_at(SimTime::from_seconds(1.0), [&] { ++fired; });
  s.schedule_at(SimTime::from_seconds(2.0), [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), SimTime::from_seconds(1.0));
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) s.schedule_after(Duration::seconds(1.0), chain);
  };
  s.schedule_after(Duration::seconds(1.0), chain);
  s.run_until(SimTime::from_seconds(100.0));
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(s.executed_events(), 10u);
}

TEST(Simulator, PeriodicFiresAtPeriod) {
  Simulator s;
  std::vector<double> times;
  s.add_periodic(Duration::seconds(10.0),
                 [&](SimTime t) { times.push_back(t.as_seconds()); });
  s.run_until(SimTime::from_seconds(35.0));
  EXPECT_EQ(times, (std::vector<double>{0.0, 10.0, 20.0, 30.0}));
}

TEST(Simulator, PeriodicWithOffset) {
  Simulator s;
  std::vector<double> times;
  s.add_periodic(Duration::seconds(10.0),
                 [&](SimTime t) { times.push_back(t.as_seconds()); },
                 Duration::seconds(5.0));
  s.run_until(SimTime::from_seconds(26.0));
  EXPECT_EQ(times, (std::vector<double>{5.0, 15.0, 25.0}));
}

TEST(Simulator, RemovePeriodicStopsFirings) {
  Simulator s;
  int fired = 0;
  const PeriodicId id = s.add_periodic(Duration::seconds(1.0), [&](SimTime) { ++fired; });
  s.run_until(SimTime::from_seconds(2.5));
  EXPECT_EQ(fired, 3);  // t=0,1,2
  EXPECT_TRUE(s.remove_periodic(id));
  EXPECT_FALSE(s.remove_periodic(id));
  s.run_until(SimTime::from_seconds(10.0));
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, PeriodicCanRemoveItself) {
  Simulator s;
  int fired = 0;
  PeriodicId id{};
  id = s.add_periodic(Duration::seconds(1.0), [&](SimTime) {
    if (++fired == 3) s.remove_periodic(id);
  });
  s.run_until(SimTime::from_seconds(10.0));
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, CancelInsideCallbackOfSameTimestamp) {
  Simulator s;
  bool second_fired = false;
  EventId second{};
  // Both events share t=1; the first cancels the second before the
  // kernel reaches it, even though it is already due.
  s.schedule_at(SimTime::from_seconds(1.0), [&] { EXPECT_TRUE(s.cancel(second)); });
  second = s.schedule_at(SimTime::from_seconds(1.0), [&] { second_fired = true; });
  s.run_until(SimTime::from_seconds(2.0));
  EXPECT_FALSE(second_fired);
  EXPECT_EQ(s.executed_events(), 1u);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, EventCannotCancelItselfWhileRunning) {
  Simulator s;
  EventId self{};
  bool cancel_result = true;
  self = s.schedule_at(SimTime::from_seconds(1.0), [&] { cancel_result = s.cancel(self); });
  s.run_until(SimTime::from_seconds(2.0));
  EXPECT_FALSE(cancel_result);  // already firing — no longer pending
}

TEST(Simulator, PendingCountIgnoresCancelledEntries) {
  Simulator s;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(s.schedule_at(SimTime::from_seconds(1.0 + i), [] {}));
  }
  // Cancel every id except the last — lazy deletion must not inflate
  // pending_events() and compaction must not lose the survivor.
  for (std::size_t i = 0; i + 1 < ids.size(); ++i) EXPECT_TRUE(s.cancel(ids[i]));
  EXPECT_EQ(s.pending_events(), 1u);
  EXPECT_EQ(s.run_until(SimTime::from_seconds(500.0)), 1u);
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(Simulator, StepSkipsCancelledFront) {
  Simulator s;
  int fired = 0;
  const EventId first = s.schedule_at(SimTime::from_seconds(1.0), [&] { fired = 1; });
  s.schedule_at(SimTime::from_seconds(2.0), [&] { fired = 2; });
  EXPECT_TRUE(s.cancel(first));
  EXPECT_TRUE(s.step());  // must land on the t=2 event, not the corpse
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), SimTime::from_seconds(2.0));
  EXPECT_FALSE(s.step());
}

// Replays a pseudo-random schedule/cancel workload twice from the same
// seed and demands identical execution traces — the reproducibility
// contract the whole testbed rests on.
TEST(Simulator, SeedReplayProducesIdenticalTraces) {
  const auto run_trace = [](std::uint32_t seed) {
    Simulator s;
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> when(0.0, 100.0);
    std::vector<std::pair<double, int>> trace;
    std::vector<EventId> ids;
    for (int i = 0; i < 500; ++i) {
      ids.push_back(s.schedule_at(SimTime::from_seconds(when(rng)),
                                  [&trace, &s, i] { trace.emplace_back(s.now().as_seconds(), i); }));
    }
    for (int i = 0; i < 200; ++i) {
      s.cancel(ids[rng() % ids.size()]);
    }
    s.run_until(SimTime::from_seconds(100.0));
    return std::pair{trace, s.executed_events()};
  };
  const auto a = run_trace(42);
  const auto b = run_trace(42);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_FALSE(a.first.empty());
  const auto c = run_trace(7);
  EXPECT_NE(a.first, c.first);  // different seed actually changes the workload
}

TEST(Simulator, TwoPeriodicsInterleaveDeterministically) {
  Simulator s;
  std::vector<char> order;
  s.add_periodic(Duration::seconds(2.0), [&](SimTime) { order.push_back('a'); });
  s.add_periodic(Duration::seconds(3.0), [&](SimTime) { order.push_back('b'); });
  s.run_until(SimTime::from_seconds(6.0));
  // t=0: a,b ; t=2: a ; t=3: b ; t=4: a ; t=6: b,a (b's firing was
  // enqueued at t=3, before a's at t=4 — FIFO among equal timestamps).
  EXPECT_EQ(order, (std::vector<char>{'a', 'b', 'a', 'b', 'a', 'b', 'a'}));
}

}  // namespace
}  // namespace slices::sim
