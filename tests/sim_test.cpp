// Unit tests for the discrete-event simulation kernel.

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace slices::sim {
namespace {

TEST(Simulator, StartsAtOrigin) {
  Simulator s;
  EXPECT_EQ(s.now(), SimTime::origin());
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(SimTime::from_seconds(3.0), [&] { order.push_back(3); });
  s.schedule_at(SimTime::from_seconds(1.0), [&] { order.push_back(1); });
  s.schedule_at(SimTime::from_seconds(2.0), [&] { order.push_back(2); });
  s.run_until(SimTime::from_seconds(10.0));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), SimTime::from_seconds(10.0));
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(SimTime::from_seconds(1.0), [&order, i] { order.push_back(i); });
  }
  s.run_until(SimTime::from_seconds(1.0));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, RunUntilOnlyRunsDueEvents) {
  Simulator s;
  int fired = 0;
  s.schedule_at(SimTime::from_seconds(1.0), [&] { ++fired; });
  s.schedule_at(SimTime::from_seconds(5.0), [&] { ++fired; });
  EXPECT_EQ(s.run_until(SimTime::from_seconds(2.0)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.pending_events(), 1u);
  EXPECT_EQ(s.now(), SimTime::from_seconds(2.0));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  SimTime fired_at;
  s.schedule_at(SimTime::from_seconds(2.0), [&] {
    s.schedule_after(Duration::seconds(3.0), [&] { fired_at = s.now(); });
  });
  s.run_until(SimTime::from_seconds(10.0));
  EXPECT_EQ(fired_at, SimTime::from_seconds(5.0));
}

TEST(Simulator, PastScheduleClampsToNow) {
  Simulator s;
  s.run_until(SimTime::from_seconds(5.0));
  bool fired = false;
  s.schedule_at(SimTime::from_seconds(1.0), [&] { fired = true; });
  s.run_until(SimTime::from_seconds(5.0));
  EXPECT_TRUE(fired);
  EXPECT_EQ(s.now(), SimTime::from_seconds(5.0));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule_at(SimTime::from_seconds(1.0), [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // double-cancel reports false
  s.run_until(SimTime::from_seconds(2.0));
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator s;
  const EventId id = s.schedule_at(SimTime::from_seconds(1.0), [] {});
  s.run_until(SimTime::from_seconds(2.0));
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator s;
  int fired = 0;
  s.schedule_at(SimTime::from_seconds(1.0), [&] { ++fired; });
  s.schedule_at(SimTime::from_seconds(2.0), [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), SimTime::from_seconds(1.0));
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) s.schedule_after(Duration::seconds(1.0), chain);
  };
  s.schedule_after(Duration::seconds(1.0), chain);
  s.run_until(SimTime::from_seconds(100.0));
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(s.executed_events(), 10u);
}

TEST(Simulator, PeriodicFiresAtPeriod) {
  Simulator s;
  std::vector<double> times;
  s.add_periodic(Duration::seconds(10.0),
                 [&](SimTime t) { times.push_back(t.as_seconds()); });
  s.run_until(SimTime::from_seconds(35.0));
  EXPECT_EQ(times, (std::vector<double>{0.0, 10.0, 20.0, 30.0}));
}

TEST(Simulator, PeriodicWithOffset) {
  Simulator s;
  std::vector<double> times;
  s.add_periodic(Duration::seconds(10.0),
                 [&](SimTime t) { times.push_back(t.as_seconds()); },
                 Duration::seconds(5.0));
  s.run_until(SimTime::from_seconds(26.0));
  EXPECT_EQ(times, (std::vector<double>{5.0, 15.0, 25.0}));
}

TEST(Simulator, RemovePeriodicStopsFirings) {
  Simulator s;
  int fired = 0;
  const PeriodicId id = s.add_periodic(Duration::seconds(1.0), [&](SimTime) { ++fired; });
  s.run_until(SimTime::from_seconds(2.5));
  EXPECT_EQ(fired, 3);  // t=0,1,2
  EXPECT_TRUE(s.remove_periodic(id));
  EXPECT_FALSE(s.remove_periodic(id));
  s.run_until(SimTime::from_seconds(10.0));
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, PeriodicCanRemoveItself) {
  Simulator s;
  int fired = 0;
  PeriodicId id{};
  id = s.add_periodic(Duration::seconds(1.0), [&](SimTime) {
    if (++fired == 3) s.remove_periodic(id);
  });
  s.run_until(SimTime::from_seconds(10.0));
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, TwoPeriodicsInterleaveDeterministically) {
  Simulator s;
  std::vector<char> order;
  s.add_periodic(Duration::seconds(2.0), [&](SimTime) { order.push_back('a'); });
  s.add_periodic(Duration::seconds(3.0), [&](SimTime) { order.push_back('b'); });
  s.run_until(SimTime::from_seconds(6.0));
  // t=0: a,b ; t=2: a ; t=3: b ; t=4: a ; t=6: b,a (b's firing was
  // enqueued at t=3, before a's at t=4 — FIFO among equal timestamps).
  EXPECT_EQ(order, (std::vector<char>{'a', 'b', 'a', 'b', 'a', 'b', 'a'}));
}

}  // namespace
}  // namespace slices::sim
