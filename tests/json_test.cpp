// Unit tests for the JSON document model, parser and serializer.

#include <gtest/gtest.h>

#include <string>

#include "json/value.hpp"

namespace slices::json {
namespace {

TEST(JsonValue, TypesAndAccessors) {
  EXPECT_TRUE(Value(nullptr).is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(1.5).is_number());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_TRUE(Value(Array{}).is_array());
  EXPECT_TRUE(Value(Object{}).is_object());

  EXPECT_EQ(Value(true).as_bool(), true);
  EXPECT_DOUBLE_EQ(Value(2.5).as_number(), 2.5);
  EXPECT_EQ(Value(7).as_int(), 7);
  EXPECT_EQ(Value("x").as_string(), "x");
}

TEST(JsonValue, ObjectIndexCreatesMembers) {
  Value v;
  v["a"] = 1;
  v["b"] = "two";
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("a")->as_int(), 1);
  EXPECT_EQ(v.find("b")->as_string(), "two");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonValue, TypedGettersReportErrors) {
  Value v;
  v["rate"] = 12.5;
  v["name"] = "s1";
  EXPECT_TRUE(v.get_number("rate").ok());
  EXPECT_DOUBLE_EQ(v.get_number("rate").value(), 12.5);
  EXPECT_FALSE(v.get_number("name").ok());
  EXPECT_FALSE(v.get_number("absent").ok());
  EXPECT_EQ(v.get_number("absent").error().code, Errc::protocol_error);
  EXPECT_EQ(v.get_string("name").value(), "s1");
  EXPECT_FALSE(v.get_bool("rate").ok());
}

TEST(JsonSerialize, Scalars) {
  EXPECT_EQ(serialize(Value(nullptr)), "null");
  EXPECT_EQ(serialize(Value(true)), "true");
  EXPECT_EQ(serialize(Value(false)), "false");
  EXPECT_EQ(serialize(Value(42)), "42");
  EXPECT_EQ(serialize(Value(-1.5)), "-1.5");
  EXPECT_EQ(serialize(Value("hi")), "\"hi\"");
}

TEST(JsonSerialize, IntegersPrintWithoutFraction) {
  EXPECT_EQ(serialize(Value(1000000.0)), "1000000");
  EXPECT_EQ(serialize(Value(-7.0)), "-7");
}

TEST(JsonSerialize, EscapesControlAndQuotes) {
  EXPECT_EQ(serialize(Value("a\"b")), "\"a\\\"b\"");
  EXPECT_EQ(serialize(Value("a\\b")), "\"a\\\\b\"");
  EXPECT_EQ(serialize(Value("line\nbreak\ttab")), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(serialize(Value(std::string("\x01", 1))), "\"\\u0001\"");
}

TEST(JsonSerialize, ObjectKeysSorted) {
  Value v;
  v["zeta"] = 1;
  v["alpha"] = 2;
  EXPECT_EQ(serialize(v), "{\"alpha\":2,\"zeta\":1}");
}

TEST(JsonSerialize, PrettyIndents) {
  Value v;
  v["a"] = Array{Value(1), Value(2)};
  const std::string pretty = serialize_pretty(v);
  EXPECT_NE(pretty.find("{\n  \"a\": [\n    1,\n    2\n  ]\n}"), std::string::npos);
}

TEST(JsonParse, RoundTripsComplexDocument) {
  const std::string doc =
      R"({"slices":[{"id":1,"rate":12.5,"active":true},{"id":2,"rate":0.25,"active":false}],"name":"testbed","empty":{},"nothing":null})";
  const Result<Value> parsed = parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(serialize(parsed.value()),
            R"({"empty":{},"name":"testbed","nothing":null,"slices":[{"active":true,"id":1,"rate":12.5},{"active":false,"id":2,"rate":0.25}]})");
}

TEST(JsonParse, WhitespaceTolerant) {
  const Result<Value> v = parse("  {\n\t\"a\" :\r [ 1 , 2 ]\n} ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().find("a")->as_array().size(), 2u);
}

TEST(JsonParse, UnicodeEscapes) {
  const Result<Value> v = parse(R"("Aé€")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().as_string(), "A\xC3\xA9\xE2\x82\xAC");  // A, é, €
}

TEST(JsonParse, NumbersWithExponents) {
  const Result<Value> v = parse("[1e3, -2.5E-2, 0.125]");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v.value().as_array()[0].as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(v.value().as_array()[1].as_number(), -0.025);
  EXPECT_DOUBLE_EQ(v.value().as_array()[2].as_number(), 0.125);
}

TEST(JsonParse, DeepNestingWithinLimitOk) {
  std::string doc;
  for (int i = 0; i < 200; ++i) doc += "[";
  doc += "1";
  for (int i = 0; i < 200; ++i) doc += "]";
  EXPECT_TRUE(parse(doc).ok());
}

TEST(JsonParse, RejectsExcessiveNesting) {
  std::string doc;
  for (int i = 0; i < 400; ++i) doc += "[";
  doc += "1";
  for (int i = 0; i < 400; ++i) doc += "]";
  const Result<Value> v = parse(doc);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.error().code, Errc::protocol_error);
}

TEST(JsonParse, DuplicateKeysLastWins) {
  const Result<Value> v = parse(R"({"a":1,"a":2})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().find("a")->as_int(), 2);
}

// Parameterized sweep over malformed documents: all must fail with
// protocol_error and never crash.
class JsonRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRejects, MalformedInput) {
  const Result<Value> v = parse(GetParam());
  ASSERT_FALSE(v.ok()) << "accepted: " << GetParam();
  EXPECT_EQ(v.error().code, Errc::protocol_error);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, JsonRejects,
    ::testing::Values(
        "", "   ", "{", "}", "[", "]", "{]", "[}",
        "tru", "truex", "nul", "falsey",
        "\"unterminated", "\"bad\\escape\"", "\"\\u12g4\"", "\"\\u12\"",
        "\"\\ud800\"",                       // surrogate
        "01a",                               // trailing garbage in number
        "1 2",                               // two documents
        "[1,]",                              // dangling comma... (see below)
        "[1 2]", "{\"a\":1,}", "{\"a\" 1}", "{a:1}", "{\"a\":}",
        "[1,2,",                             // unterminated
        "nan", "inf", "-", "+", "0x10",
        "\"tab\tinside\""));                 // raw control char

TEST(JsonParse, ErrorsIncludeByteOffset) {
  const Result<Value> v = parse("{\"a\": !}");
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.error().message.find("byte"), std::string::npos);
}

}  // namespace
}  // namespace slices::json
