// Unit tests for time series, statistics and the monitor registry.

#include <gtest/gtest.h>

#include "json/value.hpp"
#include "telemetry/csv.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/stats.hpp"
#include "telemetry/timeseries.hpp"

namespace slices::telemetry {
namespace {

SimTime at(double s) { return SimTime::from_seconds(s); }

// --- TimeSeries ---------------------------------------------------------------

TEST(TimeSeries, AppendsAndReads) {
  TimeSeries ts(8);
  EXPECT_TRUE(ts.empty());
  ts.append(at(1.0), 10.0);
  ts.append(at(2.0), 20.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts.at(0).value, 10.0);
  EXPECT_DOUBLE_EQ(ts.back().value, 20.0);
  EXPECT_DOUBLE_EQ(ts.latest_or(-1.0), 20.0);
}

TEST(TimeSeries, LatestOrFallback) {
  TimeSeries ts(4);
  EXPECT_DOUBLE_EQ(ts.latest_or(-1.0), -1.0);
}

TEST(TimeSeries, EvictsOldestWhenFull) {
  TimeSeries ts(3);
  for (int i = 0; i < 5; ++i) ts.append(at(i), static_cast<double>(i));
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.at(0).value, 2.0);
  EXPECT_DOUBLE_EQ(ts.at(1).value, 3.0);
  EXPECT_DOUBLE_EQ(ts.at(2).value, 4.0);
}

TEST(TimeSeries, WrapAroundKeepsChronologicalOrder) {
  TimeSeries ts(4);
  for (int i = 0; i < 11; ++i) ts.append(at(i), static_cast<double>(i * i));
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    EXPECT_LT(ts.at(i).time, ts.at(i + 1).time);
  }
  EXPECT_DOUBLE_EQ(ts.back().value, 100.0);
}

TEST(TimeSeries, LastValuesAndWindows) {
  TimeSeries ts(16);
  for (int i = 1; i <= 10; ++i) ts.append(at(i), static_cast<double>(i));
  EXPECT_EQ(ts.last_values(3), (std::vector<double>{8.0, 9.0, 10.0}));
  EXPECT_EQ(ts.last_values(100).size(), 10u);
  EXPECT_DOUBLE_EQ(*ts.mean_last(4), 8.5);
  EXPECT_DOUBLE_EQ(*ts.max_last(5), 10.0);
  EXPECT_FALSE(TimeSeries(4).mean_last(3).has_value());
}

TEST(TimeSeries, SinceFiltersbyTime) {
  TimeSeries ts(16);
  for (int i = 0; i < 10; ++i) ts.append(at(i), static_cast<double>(i));
  const std::vector<Sample> recent = ts.since(at(7.0));
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_DOUBLE_EQ(recent.front().value, 7.0);
}

// --- RunningStats -----------------------------------------------------------------

TEST(RunningStats, MatchesClosedForm) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.minimum(), 2.0);
  EXPECT_DOUBLE_EQ(stats.maximum(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats stats;
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
}

TEST(RunningStats, StableUnderLargeOffsets) {
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) stats.add(1e9 + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(stats.variance(), 1.0, 1e-6);
}

// --- quantile / error metrics ---------------------------------------------------

TEST(Quantile, InterpolatesOrderStatistics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.1), 1.4);
}

TEST(Quantile, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.99), 7.0);
}

TEST(ErrorMetrics, MaeAndRmse) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(mean_absolute_error(a, b), 1.0);
  EXPECT_NEAR(root_mean_square_error(a, b), std::sqrt(5.0 / 3.0), 1e-12);
}

// --- MonitorRegistry ---------------------------------------------------------------

TEST(MonitorRegistry, CountersAndGauges) {
  MonitorRegistry reg;
  reg.counter("requests").increment();
  reg.counter("requests").increment(4);
  reg.gauge("load").set(0.7);
  reg.gauge("load").add(0.1);
  EXPECT_EQ(reg.find_counter("requests")->value(), 5u);
  EXPECT_NEAR(reg.find_gauge("load")->value(), 0.8, 1e-12);
  EXPECT_EQ(reg.find_counter("ghost"), nullptr);
  EXPECT_EQ(reg.find_gauge("ghost"), nullptr);
}

TEST(MonitorRegistry, ObserveMirrorsSeriesToGauge) {
  MonitorRegistry reg;
  reg.observe("cell.prb", at(1.0), 40.0);
  reg.observe("cell.prb", at(2.0), 60.0);
  EXPECT_DOUBLE_EQ(reg.find_gauge("cell.prb")->value(), 60.0);
  ASSERT_NE(reg.find_series("cell.prb"), nullptr);
  EXPECT_EQ(reg.find_series("cell.prb")->size(), 2u);
}

TEST(MonitorRegistry, SnapshotIsWellFormedJson) {
  MonitorRegistry reg;
  reg.counter("a").increment(2);
  reg.gauge("b").set(1.5);
  reg.observe("c", at(3.0), 9.0);

  const json::Value snap = reg.snapshot();
  const std::string text = json::serialize(snap);
  const Result<json::Value> reparsed = json::parse(text);
  ASSERT_TRUE(reparsed.ok());

  EXPECT_DOUBLE_EQ(snap.find("counters")->find("a")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(snap.find("gauges")->find("b")->as_number(), 1.5);
  const json::Value* series = snap.find("series")->find("c");
  ASSERT_NE(series, nullptr);
  EXPECT_DOUBLE_EQ(series->find("latest")->as_number(), 9.0);
  EXPECT_DOUBLE_EQ(series->find("latest_t")->as_number(), 3.0);
}

TEST(MonitorRegistry, SnapshotPrefixFiltersEveryInstrumentKind) {
  MonitorRegistry reg;
  reg.counter("ran.attach").increment(3);
  reg.counter("transport.reroutes").increment(1);
  reg.gauge("ran.util").set(0.5);
  reg.gauge("cloud.cpu").set(0.9);
  reg.observe("ran.cell.1.prb", at(1.0), 10.0);
  reg.observe("transport.path.1.mbps", at(1.0), 40.0);

  const json::Value ran = reg.snapshot("ran.");
  EXPECT_NE(ran.find("counters")->find("ran.attach"), nullptr);
  EXPECT_EQ(ran.find("counters")->find("transport.reroutes"), nullptr);
  EXPECT_NE(ran.find("gauges")->find("ran.util"), nullptr);
  EXPECT_EQ(ran.find("gauges")->find("cloud.cpu"), nullptr);
  EXPECT_NE(ran.find("series")->find("ran.cell.1.prb"), nullptr);
  EXPECT_EQ(ran.find("series")->find("transport.path.1.mbps"), nullptr);

  // Empty prefix keeps the everything-snapshot.
  const json::Value all = reg.snapshot();
  EXPECT_NE(all.find("series")->find("transport.path.1.mbps"), nullptr);
}

TEST(MonitorRegistry, MetricsBodyMatchesDomSerialization) {
  MonitorRegistry reg;
  reg.counter("ran.attach").increment(7);
  reg.counter("transport.reroutes").increment(2);
  reg.gauge("ran.util").set(0.375);
  reg.observe("ran.cell.1.prb", at(1.0), 10.0);
  reg.observe("ran.cell.1.prb", at(2.0), 12.5);
  reg.observe("transport.path.1.mbps", at(2.0), 41.830000000000005);
  (void)reg.series("ran.empty");  // series with no points

  std::string direct;
  for (const std::string prefix : {"", "ran.", "transport.", "ghost."}) {
    reg.metrics_body(direct, prefix);
    EXPECT_EQ(direct, json::serialize(reg.snapshot(prefix))) << "prefix=" << prefix;
    EXPECT_TRUE(json::parse(direct).ok()) << "prefix=" << prefix;
  }

  // Buffer reuse: a second call overwrites, not appends.
  reg.metrics_body(direct, "ran.");
  const std::string once = direct;
  reg.metrics_body(direct, "ran.");
  EXPECT_EQ(direct, once);
}

TEST(MonitorRegistry, SeriesWindowReturnsRecentPoints) {
  MonitorRegistry reg;
  for (int i = 0; i < 10; ++i) reg.observe("x", at(i), static_cast<double>(i));
  const json::Value window = reg.series_window("x", 3);
  ASSERT_TRUE(window.is_array());
  ASSERT_EQ(window.as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(window.as_array()[0].find("v")->as_number(), 7.0);
  EXPECT_DOUBLE_EQ(window.as_array()[2].find("v")->as_number(), 9.0);
  EXPECT_TRUE(reg.series_window("ghost", 5).as_array().empty());
}

// --- CSV export -------------------------------------------------------------------

TEST(CsvExport, EscapeQuotesAndSeparators) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvExport, LongFormatOneRowPerSample) {
  MonitorRegistry reg;
  reg.observe("a", at(1.0), 10.0);
  reg.observe("a", at(2.0), 20.0);
  reg.observe("b", at(1.0), 0.5);
  const std::string csv = export_long_csv(reg, {"a", "b"});
  EXPECT_EQ(csv,
            "series,t_seconds,value\n"
            "a,1,10\n"
            "a,2,20\n"
            "b,1,0.5\n");
}

TEST(CsvExport, LongFormatSkipsUnknownSeries) {
  MonitorRegistry reg;
  reg.observe("a", at(1.0), 1.0);
  const std::string csv = export_long_csv(reg, {"ghost", "a"});
  EXPECT_EQ(csv, "series,t_seconds,value\na,1,1\n");
}

TEST(CsvExport, WideFormatAlignsByTimestamp) {
  MonitorRegistry reg;
  reg.observe("x", at(1.0), 1.0);
  reg.observe("x", at(2.0), 2.0);
  reg.observe("y", at(2.0), 20.0);
  reg.observe("y", at(3.0), 30.0);
  const std::string csv = export_wide_csv(reg, {"x", "y"});
  EXPECT_EQ(csv,
            "t_seconds,x,y\n"
            "1,1,\n"
            "2,2,20\n"
            "3,,30\n");
}

TEST(CsvExport, WideFormatEmptyRegistry) {
  MonitorRegistry reg;
  EXPECT_EQ(export_wide_csv(reg, {"none"}), "t_seconds,none\n");
}

}  // namespace
}  // namespace slices::telemetry
