// Unit tests for time series, statistics and the monitor registry.

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "common/rng.hpp"
#include "json/value.hpp"
#include "telemetry/csv.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/stats.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/trace.hpp"

namespace slices::telemetry {
namespace {

SimTime at(double s) { return SimTime::from_seconds(s); }

// --- TimeSeries ---------------------------------------------------------------

TEST(TimeSeries, AppendsAndReads) {
  TimeSeries ts(8);
  EXPECT_TRUE(ts.empty());
  ts.append(at(1.0), 10.0);
  ts.append(at(2.0), 20.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts.at(0).value, 10.0);
  EXPECT_DOUBLE_EQ(ts.back().value, 20.0);
  EXPECT_DOUBLE_EQ(ts.latest_or(-1.0), 20.0);
}

TEST(TimeSeries, LatestOrFallback) {
  TimeSeries ts(4);
  EXPECT_DOUBLE_EQ(ts.latest_or(-1.0), -1.0);
}

TEST(TimeSeries, EvictsOldestWhenFull) {
  TimeSeries ts(3);
  for (int i = 0; i < 5; ++i) ts.append(at(i), static_cast<double>(i));
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.at(0).value, 2.0);
  EXPECT_DOUBLE_EQ(ts.at(1).value, 3.0);
  EXPECT_DOUBLE_EQ(ts.at(2).value, 4.0);
}

TEST(TimeSeries, WrapAroundKeepsChronologicalOrder) {
  TimeSeries ts(4);
  for (int i = 0; i < 11; ++i) ts.append(at(i), static_cast<double>(i * i));
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    EXPECT_LT(ts.at(i).time, ts.at(i + 1).time);
  }
  EXPECT_DOUBLE_EQ(ts.back().value, 100.0);
}

TEST(TimeSeries, LastValuesAndWindows) {
  TimeSeries ts(16);
  for (int i = 1; i <= 10; ++i) ts.append(at(i), static_cast<double>(i));
  EXPECT_EQ(ts.last_values(3), (std::vector<double>{8.0, 9.0, 10.0}));
  EXPECT_EQ(ts.last_values(100).size(), 10u);
  EXPECT_DOUBLE_EQ(*ts.mean_last(4), 8.5);
  EXPECT_DOUBLE_EQ(*ts.max_last(5), 10.0);
  EXPECT_FALSE(TimeSeries(4).mean_last(3).has_value());
}

TEST(TimeSeries, SinceFiltersbyTime) {
  TimeSeries ts(16);
  for (int i = 0; i < 10; ++i) ts.append(at(i), static_cast<double>(i));
  const std::vector<Sample> recent = ts.since(at(7.0));
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_DOUBLE_EQ(recent.front().value, 7.0);
}

// --- RunningStats -----------------------------------------------------------------

TEST(RunningStats, MatchesClosedForm) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.minimum(), 2.0);
  EXPECT_DOUBLE_EQ(stats.maximum(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats stats;
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
}

TEST(RunningStats, StableUnderLargeOffsets) {
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) stats.add(1e9 + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(stats.variance(), 1.0, 1e-6);
}

// --- quantile / error metrics ---------------------------------------------------

TEST(Quantile, InterpolatesOrderStatistics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.1), 1.4);
}

TEST(Quantile, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.99), 7.0);
}

TEST(Quantile, InplaceMatchesSortingVariant) {
  // quantile() is now a thin wrapper over quantile_inplace; pin that the
  // nth_element fast path agrees with the documented interpolation on
  // unsorted input, including the pinned 0.1 -> 1.4 case above.
  std::vector<double> v{5.0, 1.0, 4.0, 2.0, 3.0};
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    std::vector<double> scratch = v;
    EXPECT_DOUBLE_EQ(quantile_inplace(scratch, q), quantile(v, q)) << "q=" << q;
  }
  std::vector<double> scratch = v;
  EXPECT_DOUBLE_EQ(quantile_inplace(scratch, 0.1), 1.4);
}

TEST(Quantile, InplacePermutesButKeepsElements) {
  std::vector<double> v{9.0, 7.0, 8.0, 1.0, 3.0};
  (void)quantile_inplace(v, 0.5);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<double>{1.0, 3.0, 7.0, 8.0, 9.0}));
}

// --- Histogram --------------------------------------------------------------------

TEST(Histogram, ExactBelowSubBucketRange) {
  // Values below kSubBuckets map to identity buckets: no resolution loss.
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_lower(v), v);
    EXPECT_EQ(Histogram::bucket_upper(v), v);
  }
}

TEST(Histogram, BucketBoundariesAreContinuous) {
  // lower(i+1) == upper(i) + 1 for a long prefix, and every value maps
  // into a bucket whose [lower, upper] range contains it.
  for (std::size_t i = 0; i < 512; ++i) {
    EXPECT_EQ(Histogram::bucket_lower(i + 1), Histogram::bucket_upper(i) + 1) << "i=" << i;
  }
  for (const std::uint64_t v :
       {std::uint64_t{15}, std::uint64_t{16}, std::uint64_t{17}, std::uint64_t{31},
        std::uint64_t{32}, std::uint64_t{1023}, std::uint64_t{1024}, std::uint64_t{1025},
        std::uint64_t{1} << 40, (std::uint64_t{1} << 40) + 12345}) {
    const std::size_t i = Histogram::bucket_index(v);
    EXPECT_LE(Histogram::bucket_lower(i), v) << "v=" << v;
    EXPECT_GE(Histogram::bucket_upper(i), v) << "v=" << v;
  }
}

TEST(Histogram, BucketRelativeErrorBound) {
  // Bucket width over bucket lower bound is the worst-case relative
  // quantile error: bounded by 1/kSubBuckets.
  for (std::size_t i = Histogram::kSubBuckets; i < 512; ++i) {
    const double lo = static_cast<double>(Histogram::bucket_lower(i));
    const double width = static_cast<double>(Histogram::bucket_upper(i)) - lo + 1.0;
    EXPECT_LE(width / lo, 1.0 / static_cast<double>(Histogram::kSubBuckets) + 1e-12)
        << "i=" << i;
  }
}

TEST(Histogram, QuantilesOnSmallExactValues) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 5; ++v) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 15u);
  EXPECT_EQ(h.minimum(), 1u);
  EXPECT_EQ(h.maximum(), 5u);
  // Values 1..5 sit in exact buckets; quantiles interpolate like the
  // order-statistics quantile() above.
  EXPECT_DOUBLE_EQ(h.value_at_quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.value_at_quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.value_at_quantile(1.0), 5.0);
}

TEST(Histogram, QuantileClampedToObservedRange) {
  Histogram h;
  h.record(1000);  // one sample: every quantile is that sample
  EXPECT_DOUBLE_EQ(h.value_at_quantile(0.0), 1000.0);
  EXPECT_DOUBLE_EQ(h.value_at_quantile(0.999), 1000.0);
  EXPECT_DOUBLE_EQ(h.value_at_quantile(1.0), 1000.0);
}

TEST(Histogram, QuantileWithinRelativeErrorOfExact) {
  Histogram h;
  std::vector<double> exact;
  std::uint64_t x = 88172645463325252ull;  // xorshift, deterministic
  for (int i = 0; i < 2000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::uint64_t v = x % 1000000;  // up to 1s in µs
    h.record(v);
    exact.push_back(static_cast<double>(v));
  }
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double approx = h.value_at_quantile(q);
    const double truth = quantile(exact, q);
    EXPECT_NEAR(approx, truth, truth / static_cast<double>(Histogram::kSubBuckets) + 1.0)
        << "q=" << q;
  }
}

TEST(Histogram, MergeIsAssociativeAndOrderInsensitive) {
  const auto fill = [](Histogram& h, std::uint64_t seed, int n) {
    std::uint64_t x = seed;
    for (int i = 0; i < n; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      h.record(x % 100000);
    }
  };
  Histogram a, b, c;
  fill(a, 1, 300);
  fill(b, 2, 500);
  fill(c, 3, 700);

  Histogram ab_c;  // (a + b) + c
  ab_c.merge(a);
  ab_c.merge(b);
  ab_c.merge(c);
  Histogram bc;  // a + (b + c), built in a different order
  bc.merge(c);
  bc.merge(b);
  Histogram a_bc;
  a_bc.merge(bc);
  a_bc.merge(a);

  EXPECT_EQ(ab_c.count(), a_bc.count());
  EXPECT_EQ(ab_c.sum(), a_bc.sum());
  EXPECT_EQ(ab_c.minimum(), a_bc.minimum());
  EXPECT_EQ(ab_c.maximum(), a_bc.maximum());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(ab_c.value_at_quantile(q), a_bc.value_at_quantile(q)) << "q=" << q;
  }
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  Histogram a, empty;
  a.record(5);
  a.record(500);
  const std::uint64_t count = a.count();
  a.merge(empty);
  EXPECT_EQ(a.count(), count);
  EXPECT_EQ(a.minimum(), 5u);
  EXPECT_EQ(a.maximum(), 500u);

  Histogram b;
  b.merge(a);  // merge into a fresh histogram adopts min/max
  EXPECT_EQ(b.minimum(), 5u);
  EXPECT_EQ(b.maximum(), 500u);
  EXPECT_EQ(b.count(), count);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(42);
  h.reset();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.value_at_quantile(0.5), 0.0);
}

TEST(ErrorMetrics, MaeAndRmse) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(mean_absolute_error(a, b), 1.0);
  EXPECT_NEAR(root_mean_square_error(a, b), std::sqrt(5.0 / 3.0), 1e-12);
}

// --- MonitorRegistry ---------------------------------------------------------------

TEST(MonitorRegistry, CountersAndGauges) {
  MonitorRegistry reg;
  reg.counter("requests").increment();
  reg.counter("requests").increment(4);
  reg.gauge("load").set(0.7);
  reg.gauge("load").add(0.1);
  EXPECT_EQ(reg.find_counter("requests")->value(), 5u);
  EXPECT_NEAR(reg.find_gauge("load")->value(), 0.8, 1e-12);
  EXPECT_EQ(reg.find_counter("ghost"), nullptr);
  EXPECT_EQ(reg.find_gauge("ghost"), nullptr);
}

TEST(MonitorRegistry, ObserveMirrorsSeriesToGauge) {
  MonitorRegistry reg;
  reg.observe("cell.prb", at(1.0), 40.0);
  reg.observe("cell.prb", at(2.0), 60.0);
  EXPECT_DOUBLE_EQ(reg.find_gauge("cell.prb")->value(), 60.0);
  ASSERT_NE(reg.find_series("cell.prb"), nullptr);
  EXPECT_EQ(reg.find_series("cell.prb")->size(), 2u);
}

TEST(MonitorRegistry, SnapshotIsWellFormedJson) {
  MonitorRegistry reg;
  reg.counter("a").increment(2);
  reg.gauge("b").set(1.5);
  reg.observe("c", at(3.0), 9.0);

  const json::Value snap = reg.snapshot();
  const std::string text = json::serialize(snap);
  const Result<json::Value> reparsed = json::parse(text);
  ASSERT_TRUE(reparsed.ok());

  EXPECT_DOUBLE_EQ(snap.find("counters")->find("a")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(snap.find("gauges")->find("b")->as_number(), 1.5);
  const json::Value* series = snap.find("series")->find("c");
  ASSERT_NE(series, nullptr);
  EXPECT_DOUBLE_EQ(series->find("latest")->as_number(), 9.0);
  EXPECT_DOUBLE_EQ(series->find("latest_t")->as_number(), 3.0);
}

TEST(MonitorRegistry, SnapshotPrefixFiltersEveryInstrumentKind) {
  MonitorRegistry reg;
  reg.counter("ran.attach").increment(3);
  reg.counter("transport.reroutes").increment(1);
  reg.gauge("ran.util").set(0.5);
  reg.gauge("cloud.cpu").set(0.9);
  reg.observe("ran.cell.1.prb", at(1.0), 10.0);
  reg.observe("transport.path.1.mbps", at(1.0), 40.0);

  const json::Value ran = reg.snapshot("ran.");
  EXPECT_NE(ran.find("counters")->find("ran.attach"), nullptr);
  EXPECT_EQ(ran.find("counters")->find("transport.reroutes"), nullptr);
  EXPECT_NE(ran.find("gauges")->find("ran.util"), nullptr);
  EXPECT_EQ(ran.find("gauges")->find("cloud.cpu"), nullptr);
  EXPECT_NE(ran.find("series")->find("ran.cell.1.prb"), nullptr);
  EXPECT_EQ(ran.find("series")->find("transport.path.1.mbps"), nullptr);

  // Empty prefix keeps the everything-snapshot.
  const json::Value all = reg.snapshot();
  EXPECT_NE(all.find("series")->find("transport.path.1.mbps"), nullptr);
}

TEST(MonitorRegistry, MetricsBodyMatchesDomSerialization) {
  MonitorRegistry reg;
  reg.counter("ran.attach").increment(7);
  reg.counter("transport.reroutes").increment(2);
  reg.gauge("ran.util").set(0.375);
  reg.observe("ran.cell.1.prb", at(1.0), 10.0);
  reg.observe("ran.cell.1.prb", at(2.0), 12.5);
  reg.observe("transport.path.1.mbps", at(2.0), 41.830000000000005);
  (void)reg.series("ran.empty");  // series with no points

  std::string direct;
  for (const std::string prefix : {"", "ran.", "transport.", "ghost."}) {
    reg.metrics_body(direct, prefix);
    EXPECT_EQ(direct, json::serialize(reg.snapshot(prefix))) << "prefix=" << prefix;
    EXPECT_TRUE(json::parse(direct).ok()) << "prefix=" << prefix;
  }

  // Buffer reuse: a second call overwrites, not appends.
  reg.metrics_body(direct, "ran.");
  const std::string once = direct;
  reg.metrics_body(direct, "ran.");
  EXPECT_EQ(direct, once);
}

TEST(MonitorRegistry, HistogramSnapshotShape) {
  MonitorRegistry reg;
  Histogram& h = reg.histogram("orch.epoch_us");
  (void)reg.histogram("orch.empty");  // registered but never recorded
  for (std::uint64_t v = 1; v <= 5; ++v) h.record(v * 100);

  const json::Value snap = reg.snapshot();
  const json::Value* hist = snap.find("histograms");
  ASSERT_NE(hist, nullptr);
  const json::Value* full = hist->find("orch.epoch_us");
  ASSERT_NE(full, nullptr);
  EXPECT_DOUBLE_EQ(full->find("count")->as_number(), 5.0);
  EXPECT_DOUBLE_EQ(full->find("sum")->as_number(), 1500.0);
  EXPECT_DOUBLE_EQ(full->find("min")->as_number(), 100.0);
  EXPECT_DOUBLE_EQ(full->find("max")->as_number(), 500.0);
  EXPECT_NE(full->find("p50"), nullptr);
  EXPECT_NE(full->find("p999"), nullptr);

  // Empty histograms serialize as {"count":0} so the instrument set is
  // visible without implying fake quantiles.
  const json::Value* empty = hist->find("orch.empty");
  ASSERT_NE(empty, nullptr);
  EXPECT_DOUBLE_EQ(empty->find("count")->as_number(), 0.0);
  EXPECT_EQ(empty->find("p50"), nullptr);

  EXPECT_EQ(reg.find_histogram("ghost"), nullptr);
  EXPECT_EQ(reg.find_histogram("orch.epoch_us"), &h);
}

TEST(MonitorRegistry, MetricsBodyMatchesDomWithHistograms) {
  // Byte-identity of the DOM-free serializer must hold with histogram
  // data present (populated, empty, and prefix-filtered).
  MonitorRegistry reg;
  reg.counter("ran.attach").increment(3);
  reg.gauge("ran.util").set(0.25);
  reg.observe("ran.cell.1.prb", at(1.0), 10.0);
  Histogram& h = reg.histogram("orch.epoch_us");
  for (std::uint64_t v : {7u, 19u, 23u, 101u, 4099u}) h.record(v);
  (void)reg.histogram("ran.empty_hist");

  std::string direct;
  for (const std::string prefix : {"", "orch.", "ran.", "ghost."}) {
    reg.metrics_body(direct, prefix);
    EXPECT_EQ(direct, json::serialize(reg.snapshot(prefix))) << "prefix=" << prefix;
    EXPECT_TRUE(json::parse(direct).ok()) << "prefix=" << prefix;
  }
}

TEST(MonitorRegistry, SeriesWindowReturnsRecentPoints) {
  MonitorRegistry reg;
  for (int i = 0; i < 10; ++i) reg.observe("x", at(i), static_cast<double>(i));
  const json::Value window = reg.series_window("x", 3);
  ASSERT_TRUE(window.is_array());
  ASSERT_EQ(window.as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(window.as_array()[0].find("v")->as_number(), 7.0);
  EXPECT_DOUBLE_EQ(window.as_array()[2].find("v")->as_number(), 9.0);
  EXPECT_TRUE(reg.series_window("ghost", 5).as_array().empty());
}

// --- CSV export -------------------------------------------------------------------

TEST(CsvExport, EscapeQuotesAndSeparators) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvExport, LongFormatOneRowPerSample) {
  MonitorRegistry reg;
  reg.observe("a", at(1.0), 10.0);
  reg.observe("a", at(2.0), 20.0);
  reg.observe("b", at(1.0), 0.5);
  const std::string csv = export_long_csv(reg, {"a", "b"});
  EXPECT_EQ(csv,
            "series,t_seconds,value\n"
            "a,1,10\n"
            "a,2,20\n"
            "b,1,0.5\n");
}

TEST(CsvExport, LongFormatSkipsUnknownSeries) {
  MonitorRegistry reg;
  reg.observe("a", at(1.0), 1.0);
  const std::string csv = export_long_csv(reg, {"ghost", "a"});
  EXPECT_EQ(csv, "series,t_seconds,value\na,1,1\n");
}

TEST(CsvExport, WideFormatAlignsByTimestamp) {
  MonitorRegistry reg;
  reg.observe("x", at(1.0), 1.0);
  reg.observe("x", at(2.0), 2.0);
  reg.observe("y", at(2.0), 20.0);
  reg.observe("y", at(3.0), 30.0);
  const std::string csv = export_wide_csv(reg, {"x", "y"});
  EXPECT_EQ(csv,
            "t_seconds,x,y\n"
            "1,1,\n"
            "2,2,20\n"
            "3,,30\n");
}

TEST(CsvExport, WideFormatEmptyRegistry) {
  MonitorRegistry reg;
  EXPECT_EQ(export_wide_csv(reg, {"none"}), "t_seconds,none\n");
}

// --- Trace ------------------------------------------------------------------------

// The tracer is a process-wide singleton; each test starts from a clean,
// disabled state and restores it.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::set_enabled(false);
    trace::set_wall_clock(false);
    trace::clear();
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::set_wall_clock(false);
    trace::clear();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  { TRACE_SCOPE("noop"); }
  EXPECT_EQ(trace::Tracer::instance().span_count(), 0u);
}

TEST_F(TraceTest, ScopesRecordNestedSpans) {
  trace::set_enabled(true);
  trace::set_sim_now(1500);
  {
    TRACE_SCOPE("outer");
    TRACE_SCOPE("inner");
  }
  EXPECT_EQ(trace::Tracer::instance().span_count(), 2u);

  std::string out;
  trace::Tracer::instance().export_chrome_json(out);
  const Result<json::Value> doc = json::parse(out);
  ASSERT_TRUE(doc.ok());
  const json::Value* events = doc.value().find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->as_array().size(), 2u);
  // Scopes record at exit, so the inner span lands first and carries
  // depth 1; both stamp the published sim clock.
  const json::Value& inner = events->as_array()[0];
  const json::Value& outer = events->as_array()[1];
  EXPECT_EQ(inner.find("name")->as_string(), "inner");
  EXPECT_DOUBLE_EQ(inner.find("args")->find("depth")->as_number(), 1.0);
  EXPECT_EQ(outer.find("name")->as_string(), "outer");
  EXPECT_DOUBLE_EQ(outer.find("args")->find("depth")->as_number(), 0.0);
  EXPECT_DOUBLE_EQ(outer.find("ts")->as_number(), 1500.0);
  EXPECT_DOUBLE_EQ(outer.find("dur")->as_number(), 0.0);  // wall clock off
}

TEST_F(TraceTest, ExportIsDeterministicWithWallClockOff) {
  trace::set_enabled(true);
  const auto run = [] {
    trace::clear();
    trace::set_sim_now(10);
    { TRACE_SCOPE("a"); }
    trace::set_sim_now(20);
    { TRACE_SCOPE("b"); }
    std::string out;
    trace::Tracer::instance().export_chrome_json(out);
    return out;
  };
  EXPECT_EQ(run(), run());
}

TEST_F(TraceTest, WallClockAddsDurations) {
  trace::set_enabled(true);
  trace::set_wall_clock(true);
  { TRACE_SCOPE("timed"); }
  std::string out;
  trace::Tracer::instance().export_chrome_json(out);
  const Result<json::Value> doc = json::parse(out);
  ASSERT_TRUE(doc.ok());
  bool found = false;
  for (const json::Value& event : doc.value().find("traceEvents")->as_array()) {
    if (event.find("name")->as_string() != "timed") continue;
    found = true;
    EXPECT_GE(event.find("dur")->as_number(), 0.0);
  }
  EXPECT_TRUE(found);
}

TEST_F(TraceTest, FullLaneOverwritesOldestAndCountsDrops) {
  trace::Tracer& tracer = trace::Tracer::instance();
  trace::set_enabled(true);
  tracer.set_lane_capacity(4);
  // Lane capacity applies to lanes created after the call, so record
  // from a fresh thread (which gets a fresh lane).
  std::thread worker([] {
    for (int i = 0; i < 10; ++i) {
      TRACE_SCOPE("spin");
    }
  });
  worker.join();
  tracer.set_lane_capacity(trace::Tracer::kDefaultLaneCapacity);
  EXPECT_EQ(tracer.span_count(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);

  std::string out;
  tracer.export_chrome_json(out);
  const Result<json::Value> doc = json::parse(out);
  ASSERT_TRUE(doc.ok());
  // Oldest-first: the retained spans are the last four recorded.
  const auto& events = doc.value().find("traceEvents")->as_array();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events.front().find("args")->find("seq")->as_number(), 6.0);
  EXPECT_DOUBLE_EQ(events.back().find("args")->find("seq")->as_number(), 9.0);
}

TEST(Histogram, JsonRoundTripIsLossless) {
  Histogram h;
  for (std::uint64_t v : {0u, 1u, 15u, 16u, 17u, 1000u, 123456u}) h.record(v);
  Histogram rebuilt;
  rebuilt.merge_json(h.to_json());
  EXPECT_EQ(json::serialize(rebuilt.to_json()), json::serialize(h.to_json()));
  EXPECT_EQ(rebuilt.count(), h.count());
  EXPECT_EQ(rebuilt.sum(), h.sum());
  EXPECT_EQ(rebuilt.minimum(), h.minimum());
  EXPECT_EQ(rebuilt.maximum(), h.maximum());
}

TEST(Histogram, JsonMergeIsAssociativeAndCommutative) {
  // Property check over seeded pseudo-random sample sets: bucket counts
  // are plain sums, so any merge order/grouping must give the same
  // to_json() bytes.
  Rng rng(20260808);
  std::vector<Histogram> parts(3);
  for (Histogram& h : parts) {
    const int samples = rng.uniform_int(1, 64);
    for (int i = 0; i < samples; ++i) {
      h.record(static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20)));
    }
  }
  const auto merged_json = [](const Histogram& x, const Histogram& y) {
    Histogram out;
    out.merge_json(x.to_json());
    out.merge_json(y.to_json());
    return out;
  };
  // Commutativity: A+B == B+A.
  EXPECT_EQ(json::serialize(merged_json(parts[0], parts[1]).to_json()),
            json::serialize(merged_json(parts[1], parts[0]).to_json()));
  // Associativity: (A+B)+C == A+(B+C).
  Histogram left = merged_json(parts[0], parts[1]);
  left.merge_json(parts[2].to_json());
  Histogram right = merged_json(parts[1], parts[2]);
  Histogram a_first;
  a_first.merge_json(parts[0].to_json());
  a_first.merge_json(right.to_json());
  EXPECT_EQ(json::serialize(left.to_json()), json::serialize(a_first.to_json()));
}

TEST(Histogram, CrossProcessJsonMergeMatchesSingleHistogram) {
  // The broker-side aggregation path: two "edge" histograms cross a
  // process boundary as to_json() documents and are merged; the result
  // must be bit-identical to one histogram that saw every sample.
  Rng rng(42);
  Histogram edge_a;
  Histogram edge_b;
  Histogram single;
  for (int i = 0; i < 500; ++i) {
    const auto v = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 16));
    (i % 2 == 0 ? edge_a : edge_b).record(v);
    single.record(v);
  }
  Histogram broker;
  broker.merge_json(json::parse(json::serialize(edge_a.to_json())).value());
  broker.merge_json(json::parse(json::serialize(edge_b.to_json())).value());
  EXPECT_EQ(json::serialize(broker.to_json()), json::serialize(single.to_json()));
  EXPECT_DOUBLE_EQ(broker.value_at_quantile(0.5), single.value_at_quantile(0.5));
}

TEST(Histogram, MergeJsonIgnoresMalformedDocuments) {
  Histogram h;
  h.record(7);
  const std::string before = json::serialize(h.to_json());
  h.merge_json(json::Value(nullptr));
  h.merge_json(json::Value(3.0));
  h.merge_json(json::parse(R"({"count": 2})").value());          // missing fields
  h.merge_json(json::parse(R"({"buckets": [], "count": 0, "max": 0, "min": 0, "sum": 0})")
                   .value());  // empty merge is identity
  EXPECT_EQ(json::serialize(h.to_json()), before);
}

TEST(MonitorRegistry, ExportJsonExcludesSeriesAndKeepsRawBuckets) {
  MonitorRegistry registry;
  registry.counter("requests").increment(3);
  registry.gauge("load").set(0.5);
  registry.histogram("latency_us").record(1000);
  registry.observe("demand", at(1.0), 12.0);

  const json::Value doc = registry.export_json();
  EXPECT_EQ(doc.find("series"), nullptr) << "series are per-process windows, not mergeable";
  EXPECT_DOUBLE_EQ(doc.find("counters")->find("requests")->as_number(), 3.0);
  // observe() mirrors into a gauge, which the export does carry.
  EXPECT_DOUBLE_EQ(doc.find("gauges")->find("demand")->as_number(), 12.0);
  const json::Value* hist = doc.find("histograms")->find("latency_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_NE(hist->find("buckets"), nullptr) << "export must be raw buckets, not quantiles";
  EXPECT_EQ(hist->find("p50"), nullptr);
}

TEST(MonitorRegistry, MergeFromAddsCountersGaugesAndHistograms) {
  MonitorRegistry a;
  a.counter("admitted").increment(2);
  a.gauge("reserved_mbps").set(100.0);
  a.histogram("headroom").record(10);

  MonitorRegistry b;
  b.counter("admitted").increment(5);
  b.counter("only_b").increment(1);
  b.gauge("reserved_mbps").set(50.0);
  b.histogram("headroom").record(20);

  a.merge_from(b.export_json());
  EXPECT_EQ(a.find_counter("admitted")->value(), 7u);
  EXPECT_EQ(a.find_counter("only_b")->value(), 1u);
  // Merged gauges read as the sum across sources (documented semantics).
  EXPECT_DOUBLE_EQ(a.find_gauge("reserved_mbps")->value(), 150.0);
  EXPECT_EQ(a.find_histogram("headroom")->count(), 2u);
  EXPECT_EQ(a.find_histogram("headroom")->minimum(), 10u);
  EXPECT_EQ(a.find_histogram("headroom")->maximum(), 20u);
}

TEST(MonitorRegistry, CrossRegistryMergeMatchesSingleRegistry) {
  // Registry-level analog of the cross-process histogram parity: two
  // half registries merged through their JSON exports must serialize
  // exactly like one registry that recorded everything.
  Rng rng(7);
  MonitorRegistry half_a;
  MonitorRegistry half_b;
  MonitorRegistry whole;
  for (int i = 0; i < 200; ++i) {
    const auto v = static_cast<std::uint64_t>(rng.uniform_int(0, 4096));
    MonitorRegistry& half = i % 2 == 0 ? half_a : half_b;
    half.histogram("epoch_us").record(v);
    whole.histogram("epoch_us").record(v);
    half.counter("epochs").increment();
    whole.counter("epochs").increment();
  }
  MonitorRegistry merged;
  merged.merge_from(json::parse(json::serialize(half_a.export_json())).value());
  merged.merge_from(json::parse(json::serialize(half_b.export_json())).value());
  EXPECT_EQ(json::serialize(merged.export_json()), json::serialize(whole.export_json()));
}

TEST_F(TraceTest, ClearResetsSpansAndTimeline) {
  trace::set_enabled(true);
  trace::set_sim_now(999);
  { TRACE_SCOPE("x"); }
  trace::clear();
  EXPECT_EQ(trace::Tracer::instance().span_count(), 0u);
  EXPECT_EQ(trace::Tracer::instance().sim_now(), 0);

  const json::Value status = trace::Tracer::instance().status_json();
  EXPECT_TRUE(status.find("enabled")->as_bool());
  EXPECT_DOUBLE_EQ(status.find("spans")->as_number(), 0.0);
}

TEST_F(TraceTest, LaneCapacityAppliesToExistingLanesAtClear) {
  trace::Tracer& tracer = trace::Tracer::instance();
  trace::set_enabled(true);
  { TRACE_SCOPE("warm"); }  // this thread's lane now exists at the default capacity
  trace::clear();

  // A live ring is never resized in place: the shrink stays pending...
  tracer.set_lane_capacity(2);
  for (int i = 0; i < 5; ++i) {
    TRACE_SCOPE("pre");
  }
  EXPECT_EQ(tracer.span_count(), 5u);
  EXPECT_EQ(tracer.dropped(), 0u);

  // ...and takes effect at the next clear(), where the spans were being
  // dropped anyway.
  trace::clear();
  for (int i = 0; i < 5; ++i) {
    TRACE_SCOPE("post");
  }
  EXPECT_EQ(tracer.span_count(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);

  const json::Value status = tracer.status_json();
  bool saw_lane = false;
  for (const json::Value& lane : status.find("lane_detail")->as_array()) {
    if (lane.find("spans")->as_number() != 2.0) continue;
    saw_lane = true;
    EXPECT_DOUBLE_EQ(lane.find("capacity")->as_number(), 2.0);
    EXPECT_DOUBLE_EQ(lane.find("dropped")->as_number(), 3.0);
  }
  EXPECT_TRUE(saw_lane);
  tracer.set_lane_capacity(trace::Tracer::kDefaultLaneCapacity);
}

TEST_F(TraceTest, ContextHeaderRoundTrips) {
  trace::Context ctx;
  ctx.trace = 3;
  ctx.parent = (0xabcdefull << trace::Tracer::kComponentShift) | 17u;
  ctx.depth = 4;
  ctx.sim_us = 1234567;
  std::string wire;
  trace::encode_context(ctx, wire);
  const trace::Context back = trace::parse_context(wire);
  EXPECT_TRUE(back.valid());
  EXPECT_EQ(back.trace, ctx.trace);
  EXPECT_EQ(back.parent, ctx.parent);
  EXPECT_EQ(back.depth, ctx.depth);
  EXPECT_EQ(back.sim_us, ctx.sim_us);

  for (const char* garbage : {"", "1-2-3", "a-b-c-d", "1-2-3-4-5", "0-0-0-0"}) {
    EXPECT_FALSE(trace::parse_context(garbage).valid()) << garbage;
  }
}

TEST_F(TraceTest, ContextScopeParentsSpansAcrossThreads) {
  // The socket-transport shape: a caller records "bus.call" and stamps
  // its context; the handler thread adopts it and records "handler".
  // The handler span must parent the caller span exactly as a nested
  // in-process scope would.
  trace::set_enabled(true);
  trace::set_sim_now(50);
  trace::Context carried;
  {
    TRACE_SCOPE("bus.call");
    carried = trace::Tracer::instance().current_context();
  }
  ASSERT_TRUE(carried.valid());
  EXPECT_EQ(carried.depth, 1u);

  std::thread server([&carried] {
    trace::ContextScope adopt(carried);
    TRACE_SCOPE("handler");
  });
  server.join();

  std::string out;
  trace::Tracer::instance().export_chrome_json(out);
  const Result<json::Value> doc = json::parse(out);
  ASSERT_TRUE(doc.ok());
  const json::Value* caller = nullptr;
  const json::Value* handler = nullptr;
  for (const json::Value& event : doc.value().find("traceEvents")->as_array()) {
    if (event.find("name")->as_string() == "bus.call") caller = &event;
    if (event.find("name")->as_string() == "handler") handler = &event;
  }
  ASSERT_NE(caller, nullptr);
  ASSERT_NE(handler, nullptr);
  EXPECT_EQ(handler->find("args")->find("parent")->as_string(),
            caller->find("args")->find("span")->as_string());
  EXPECT_EQ(handler->find("args")->find("trace")->as_string(),
            caller->find("args")->find("trace")->as_string());
  EXPECT_DOUBLE_EQ(handler->find("args")->find("depth")->as_number(), 1.0);
  // The adopted sim clock slaves the handler's timestamp to the caller.
  EXPECT_DOUBLE_EQ(handler->find("ts")->as_number(), 50.0);
}

TEST_F(TraceTest, ComponentScopeKeysSpanIdsByComponent) {
  trace::Tracer& tracer = trace::Tracer::instance();
  trace::set_enabled(true);
  const trace::ComponentRef edge = tracer.intern_component("edge.r0");
  ASSERT_NE(edge.ptr, nullptr);
  EXPECT_NE(edge.index, 0u);
  // Interning is idempotent.
  EXPECT_EQ(tracer.intern_component("edge.r0").index, edge.index);

  {
    trace::ComponentScope scope(edge);
    TRACE_SCOPE("edge.work");
  }
  { TRACE_SCOPE("broker.work"); }

  std::string edge_spans;
  tracer.export_component_spans_json(edge.index, edge_spans);
  const Result<json::Value> edge_doc = json::parse(edge_spans);
  ASSERT_TRUE(edge_doc.ok());
  ASSERT_EQ(edge_doc.value().as_array().size(), 1u);
  const json::Value& span = edge_doc.value().as_array()[0];
  EXPECT_EQ(span.find("name")->as_string(), "edge.work");
  // Span ids are decimal strings carrying (component key << 40) | seq.
  const std::uint64_t id = std::strtoull(span.find("span")->as_string().c_str(), nullptr, 10);
  EXPECT_EQ(id >> trace::Tracer::kComponentShift, edge.ptr->key);
  EXPECT_EQ(id & ((1ull << trace::Tracer::kComponentShift) - 1), 1u);

  std::string broker_spans;
  tracer.export_component_spans_json(0, broker_spans);
  const Result<json::Value> broker_doc = json::parse(broker_spans);
  ASSERT_TRUE(broker_doc.ok());
  ASSERT_EQ(broker_doc.value().as_array().size(), 1u);
  const std::uint64_t broker_id = std::strtoull(
      broker_doc.value().as_array()[0].find("span")->as_string().c_str(), nullptr, 10);
  EXPECT_EQ(broker_id >> trace::Tracer::kComponentShift, 0u)
      << "the default component keys ids with 0 (broker / control plane)";
}

}  // namespace
}  // namespace slices::telemetry
