// Tests for the session-level UE population process.

#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "core/ue_population.hpp"

namespace slices::core {
namespace {

struct Fixture {
  std::unique_ptr<Testbed> tb = make_testbed(71);
  const SliceRecord* record = nullptr;

  Fixture() {
    const RequestId request = tb->orchestrator->submit(SliceSpec::from_profile(
        traffic::profile_for(traffic::Vertical::embb_video), Duration::hours(48.0)));
    record = tb->orchestrator->find_by_request(request);
    tb->simulator.run_for(Duration::seconds(30.0));  // activate
  }

  UePopulationConfig config(double arrivals_per_hour = 60.0) const {
    UePopulationConfig c;
    c.arrivals_per_hour = arrivals_per_hour;
    c.mean_holding = Duration::minutes(30.0);
    return c;
  }
};

TEST(UePopulation, ReachesOfferedLoadEquilibrium) {
  Fixture f;
  // 60/h x 0.5h holding => ~30 UEs in steady state (M/M/inf).
  UePopulation population(&f.tb->simulator, &f.tb->ran, f.tb->epc.get(), f.record->id,
                          f.record->embedding.plmn, f.config(), Rng(5));
  population.start();
  f.tb->simulator.run_for(Duration::hours(8.0));
  EXPECT_GT(population.total_arrivals(), 400u);
  EXPECT_EQ(population.total_blocked(), 0u);
  EXPECT_NEAR(static_cast<double>(population.active_ues()), 30.0, 12.0);
  EXPECT_EQ(f.tb->ran.attached_ues(f.record->embedding.plmn), population.active_ues());
  EXPECT_EQ(f.tb->epc->find(f.record->id)->attached_ues, population.active_ues());
}

TEST(UePopulation, BlockedWhileEpcDeploying) {
  auto tb = make_testbed(72);
  const RequestId request = tb->orchestrator->submit(SliceSpec::from_profile(
      traffic::profile_for(traffic::Vertical::embb_video), Duration::hours(48.0)));
  const SliceRecord* record = tb->orchestrator->find_by_request(request);
  ASSERT_EQ(record->state, SliceState::installing);

  // A very eager population that starts during the install window.
  UePopulationConfig config;
  config.arrivals_per_hour = 3600.0;  // one per second
  UePopulation population(&tb->simulator, &tb->ran, tb->epc.get(), record->id,
                          record->embedding.plmn, config, Rng(9));
  population.start();
  // The install timeline runs ~11 s; stay safely inside it while giving
  // the 1-per-second arrival stream time to hit the deploying EPC.
  const Duration install = tb->orchestrator->last_install_timeline().total();
  tb->simulator.run_for(install - Duration::seconds(2.0));
  EXPECT_GT(population.total_blocked(), 0u);
  EXPECT_EQ(population.active_ues(), 0u);

  tb->simulator.run_for(Duration::minutes(2.0));  // now active
  EXPECT_GT(population.active_ues(), 0u);
  population.stop();
}

TEST(UePopulation, StopDetachesEveryone) {
  Fixture f;
  UePopulation population(&f.tb->simulator, &f.tb->ran, f.tb->epc.get(), f.record->id,
                          f.record->embedding.plmn, f.config(), Rng(11));
  population.start();
  f.tb->simulator.run_for(Duration::hours(2.0));
  ASSERT_GT(population.active_ues(), 0u);

  population.stop();
  EXPECT_EQ(population.active_ues(), 0u);
  EXPECT_EQ(f.tb->ran.attached_ues(f.record->embedding.plmn), 0u);
  EXPECT_EQ(f.tb->epc->find(f.record->id)->attached_ues, 0u);

  // No further arrivals after stop.
  const std::uint64_t arrivals = population.total_arrivals();
  f.tb->simulator.run_for(Duration::hours(1.0));
  EXPECT_EQ(population.total_arrivals(), arrivals);
}

TEST(UePopulation, DeterministicForSameSeed) {
  const auto run = [] {
    Fixture f;
    UePopulation population(&f.tb->simulator, &f.tb->ran, f.tb->epc.get(), f.record->id,
                            f.record->embedding.plmn, f.config(), Rng(13));
    population.start();
    f.tb->simulator.run_for(Duration::hours(4.0));
    return std::tuple{population.total_arrivals(), population.total_departures(),
                      population.active_ues()};
  };
  EXPECT_EQ(run(), run());
}

TEST(UePopulation, StartIsIdempotent) {
  Fixture f;
  UePopulation population(&f.tb->simulator, &f.tb->ran, f.tb->epc.get(), f.record->id,
                          f.record->embedding.plmn, f.config(), Rng(15));
  population.start();
  population.start();  // must not double-schedule arrivals
  f.tb->simulator.run_for(Duration::hours(1.0));
  // ~60 arrivals expected for one stream; a double stream would be ~120.
  EXPECT_NEAR(static_cast<double>(population.total_arrivals()), 60.0, 30.0);
}

}  // namespace
}  // namespace slices::core
