// Unit tests for the slice model, lifecycle FSM and revenue ledger.

#include <gtest/gtest.h>

#include "core/revenue.hpp"
#include "core/slice.hpp"

namespace slices::core {
namespace {

TEST(SliceSpec, FromProfileCopiesSlaTerms) {
  const traffic::VerticalProfile profile = traffic::profile_for(traffic::Vertical::automotive);
  const SliceSpec spec = SliceSpec::from_profile(profile, Duration::hours(6.0));
  EXPECT_EQ(spec.vertical, traffic::Vertical::automotive);
  EXPECT_EQ(spec.duration, Duration::hours(6.0));
  EXPECT_DOUBLE_EQ(spec.expected_throughput.as_mbps(), profile.expected_throughput_mbps);
  EXPECT_EQ(spec.max_latency, profile.max_latency);
  EXPECT_EQ(spec.price_per_hour, Money::units(profile.price_per_hour));
  EXPECT_TRUE(spec.needs_edge);
}

TEST(SliceSpec, GrossRevenueIsPriceTimesHours) {
  SliceSpec spec;
  spec.price_per_hour = Money::units(30.0);
  spec.duration = Duration::hours(24.0);
  EXPECT_EQ(spec.gross_revenue(), Money::units(720.0));
}

TEST(SliceState, NamesAreStable) {
  EXPECT_EQ(to_string(SliceState::pending), "pending");
  EXPECT_EQ(to_string(SliceState::installing), "installing");
  EXPECT_EQ(to_string(SliceState::active), "active");
  EXPECT_EQ(to_string(SliceState::expired), "expired");
}

TEST(SliceFsm, LegalTransitions) {
  EXPECT_TRUE(can_transition(SliceState::pending, SliceState::rejected));
  EXPECT_TRUE(can_transition(SliceState::pending, SliceState::installing));
  EXPECT_TRUE(can_transition(SliceState::installing, SliceState::active));
  EXPECT_TRUE(can_transition(SliceState::installing, SliceState::terminated));
  EXPECT_TRUE(can_transition(SliceState::active, SliceState::expired));
  EXPECT_TRUE(can_transition(SliceState::active, SliceState::terminated));
}

TEST(SliceFsm, TerminalStatesHaveNoExits) {
  for (const SliceState terminal :
       {SliceState::rejected, SliceState::expired, SliceState::terminated}) {
    for (const SliceState to :
         {SliceState::pending, SliceState::rejected, SliceState::installing,
          SliceState::active, SliceState::expired, SliceState::terminated}) {
      EXPECT_FALSE(can_transition(terminal, to));
    }
  }
}

TEST(SliceFsm, NoSkippingInstall) {
  EXPECT_FALSE(can_transition(SliceState::pending, SliceState::active));
  EXPECT_FALSE(can_transition(SliceState::pending, SliceState::expired));
  EXPECT_FALSE(can_transition(SliceState::installing, SliceState::expired));
  EXPECT_FALSE(can_transition(SliceState::active, SliceState::installing));
}

TEST(RevenueLedger, AccruesPerSlice) {
  RevenueLedger ledger;
  ledger.accrue(SliceId{1}, Money::units(40.0), Duration::minutes(30.0));
  ledger.accrue(SliceId{1}, Money::units(40.0), Duration::minutes(30.0));
  ledger.accrue(SliceId{2}, Money::units(10.0), Duration::hours(1.0));
  EXPECT_EQ(ledger.find(SliceId{1})->earned, Money::units(40.0));
  EXPECT_EQ(ledger.find(SliceId{2})->earned, Money::units(10.0));
  EXPECT_EQ(ledger.total_earned(), Money::units(50.0));
  EXPECT_EQ(ledger.find(SliceId{3}), nullptr);
}

TEST(RevenueLedger, PenaltiesReduceNet) {
  RevenueLedger ledger;
  ledger.accrue(SliceId{1}, Money::units(100.0), Duration::hours(1.0));
  ledger.charge_violation(SliceId{1}, Money::units(15.0));
  ledger.charge_violation(SliceId{1}, Money::units(15.0));
  EXPECT_EQ(ledger.find(SliceId{1})->violation_epochs, 2u);
  EXPECT_EQ(ledger.find(SliceId{1})->net(), Money::units(70.0));
  EXPECT_EQ(ledger.total_penalties(), Money::units(30.0));
  EXPECT_EQ(ledger.net_revenue(), Money::units(70.0));
  EXPECT_EQ(ledger.total_violation_epochs(), 2u);
}

TEST(SliceRecord, IsLiveOnlyWhileInstallingOrActive) {
  SliceRecord record;
  for (const auto& [state, live] :
       {std::pair{SliceState::pending, false}, {SliceState::rejected, false},
        {SliceState::installing, true}, {SliceState::active, true},
        {SliceState::expired, false}, {SliceState::terminated, false}}) {
    record.state = state;
    EXPECT_EQ(record.is_live(), live) << to_string(state);
  }
}

}  // namespace
}  // namespace slices::core
