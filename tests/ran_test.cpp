// Unit tests for the RAN substrate: PHY tables, MOCN cells, the
// multi-PLMN scheduler, and the RAN controller incl. its REST facade.

#include <gtest/gtest.h>

#include <algorithm>

#include "net/rest_bus.hpp"
#include "ran/cell.hpp"
#include "ran/controller.hpp"
#include "ran/phy.hpp"
#include "ran/scheduler.hpp"

namespace slices::ran {
namespace {

// --- PHY -------------------------------------------------------------------

TEST(Phy, BandwidthToPrbTable) {
  EXPECT_EQ(prbs_for(Bandwidth::mhz1_4).value, 6);
  EXPECT_EQ(prbs_for(Bandwidth::mhz3).value, 15);
  EXPECT_EQ(prbs_for(Bandwidth::mhz5).value, 25);
  EXPECT_EQ(prbs_for(Bandwidth::mhz10).value, 50);
  EXPECT_EQ(prbs_for(Bandwidth::mhz15).value, 75);
  EXPECT_EQ(prbs_for(Bandwidth::mhz20).value, 100);
}

TEST(Phy, SpectralEfficiencyMonotoneInCqi) {
  for (int cqi = 2; cqi <= 15; ++cqi) {
    EXPECT_GT(spectral_efficiency(Cqi{cqi}), spectral_efficiency(Cqi{cqi - 1}));
  }
}

TEST(Phy, FullCellThroughputIsLtePlausible) {
  // 100 PRB at CQI 15 with 0.75 data fraction ≈ 70 Mb/s — the right
  // order of magnitude for 20 MHz SISO LTE.
  const DataRate full = throughput_of(PrbCount{100}, Cqi{15});
  EXPECT_GT(full.as_mbps(), 50.0);
  EXPECT_LT(full.as_mbps(), 110.0);
}

TEST(Phy, PrbsNeededInvertsThroughput) {
  for (const int cqi : {3, 7, 11, 15}) {
    const DataRate rate = DataRate::mbps(12.0);
    const PrbCount needed = prbs_needed(rate, Cqi{cqi});
    EXPECT_GE(throughput_of(needed, Cqi{cqi}), rate);
    if (needed.value > 0) {
      EXPECT_LT(throughput_of(needed - PrbCount{1}, Cqi{cqi}), rate);
    }
  }
}

TEST(Phy, ZeroRateNeedsZeroPrbs) {
  EXPECT_EQ(prbs_needed(DataRate::zero(), Cqi{7}).value, 0);
}

// Regression: demand that is an exact multiple of the per-PRB rate must
// need exactly n PRBs. The old std::ceil(rate / per_prb) returned n+1
// whenever the FP quotient landed one ulp above the integer.
TEST(Phy, PrbsNeededExactMultiplesDoNotRoundUp) {
  for (int cqi = 1; cqi <= 15; ++cqi) {
    const DataRate per_prb = prb_throughput(Cqi{cqi});
    for (const int n : {1, 2, 3, 7, 25, 100, 4096}) {
      const DataRate rate = per_prb * static_cast<double>(n);
      EXPECT_EQ(prbs_needed(rate, Cqi{cqi}).value, n)
          << "cqi=" << cqi << " n=" << n;
    }
  }
}

// A hair above an exact multiple still rounds up to n+1: the slack
// only absorbs representation error, not real extra demand.
TEST(Phy, PrbsNeededJustAboveMultipleRoundsUp) {
  const DataRate per_prb = prb_throughput(Cqi{10});
  const DataRate rate = per_prb * 10.0 + DataRate::bps(1000.0);
  EXPECT_EQ(prbs_needed(rate, Cqi{10}).value, 11);
}

TEST(Phy, PhyTablesMatchScalarPath) {
  for (int cqi = 1; cqi <= 15; ++cqi) {
    EXPECT_EQ(kPhyTables.prb_bps[static_cast<std::size_t>(cqi)],
              prb_throughput(Cqi{cqi}).bits_per_second());
  }
}

// --- scheduler --------------------------------------------------------------

TEST(Scheduler, ReservationsServeFirst) {
  const std::vector<PlmnLoad> loads = {
      {PlmnId{1}, PrbCount{50}, DataRate::mbps(10.0), Cqi{10}},
      {PlmnId{2}, PrbCount{50}, DataRate::mbps(10.0), Cqi{10}},
  };
  const auto grants = schedule_epoch(PrbCount{100}, loads, SharingPolicy::strict);
  ASSERT_EQ(grants.size(), 2u);
  for (const PlmnGrant& g : grants) {
    EXPECT_DOUBLE_EQ(g.served.as_mbps(), 10.0);
    EXPECT_DOUBLE_EQ(g.unserved.as_mbps(), 0.0);
    EXPECT_LE(g.granted.value, 50);
  }
}

TEST(Scheduler, StrictIsolationWastesIdleReservedPrbs) {
  // PLMN 1 reserved 80 but idle; PLMN 2 wants far more than its 20.
  const std::vector<PlmnLoad> loads = {
      {PlmnId{1}, PrbCount{80}, DataRate::zero(), Cqi{10}},
      {PlmnId{2}, PrbCount{20}, DataRate::mbps(60.0), Cqi{10}},
  };
  const auto strict = schedule_epoch(PrbCount{100}, loads, SharingPolicy::strict);
  // No common pool (all reserved): PLMN 2 capped at its 20 PRBs.
  EXPECT_EQ(strict[1].granted.value, 20);
  EXPECT_GT(strict[1].unserved.as_mbps(), 0.0);

  const auto pooled = schedule_epoch(PrbCount{100}, loads, SharingPolicy::pooled);
  EXPECT_GT(pooled[1].granted.value, 20);
  EXPECT_GT(pooled[1].served, strict[1].served);
}

TEST(Scheduler, PoolSplitsFairlyAmongEqualClaims) {
  const std::vector<PlmnLoad> loads = {
      {PlmnId{1}, PrbCount{0}, DataRate::mbps(50.0), Cqi{10}},
      {PlmnId{2}, PrbCount{0}, DataRate::mbps(50.0), Cqi{10}},
  };
  const auto grants = schedule_epoch(PrbCount{60}, loads, SharingPolicy::strict);
  EXPECT_EQ(grants[0].granted.value, 30);
  EXPECT_EQ(grants[1].granted.value, 30);
}

TEST(Scheduler, PoolWeightsBiasContendedSharing) {
  // Equal demands, no reservations: weight 3 vs 1 splits the pool 3:1.
  const std::vector<PlmnLoad> loads = {
      {PlmnId{1}, PrbCount{0}, DataRate::mbps(50.0), Cqi{10}, 3},
      {PlmnId{2}, PrbCount{0}, DataRate::mbps(50.0), Cqi{10}, 1},
  };
  const auto grants = schedule_epoch(PrbCount{80}, loads, SharingPolicy::strict);
  EXPECT_EQ(grants[0].granted.value, 60);
  EXPECT_EQ(grants[1].granted.value, 20);
}

TEST(Scheduler, PoolWeightsDoNotTouchReservations) {
  // PLMN 2 has everything it needs reserved; weights only shape the pool.
  const std::vector<PlmnLoad> loads = {
      {PlmnId{1}, PrbCount{0}, DataRate::mbps(50.0), Cqi{10}, 1},
      {PlmnId{2}, PrbCount{40}, DataRate::mbps(10.0), Cqi{10}, 5},
  };
  const auto grants = schedule_epoch(PrbCount{100}, loads, SharingPolicy::strict);
  // PLMN 2 needs ~30 PRBs, covered by its 40 reserved; the 60-PRB pool
  // goes entirely to PLMN 1 regardless of weights.
  EXPECT_NEAR(grants[1].served.as_mbps(), 10.0, 1e-9);
  EXPECT_EQ(grants[0].granted.value, 60);
}

TEST(Scheduler, ZeroWeightTreatedAsOne) {
  const std::vector<PlmnLoad> loads = {
      {PlmnId{1}, PrbCount{0}, DataRate::mbps(50.0), Cqi{10}, 0},
      {PlmnId{2}, PrbCount{0}, DataRate::mbps(50.0), Cqi{10}, 1},
  };
  const auto grants = schedule_epoch(PrbCount{40}, loads, SharingPolicy::strict);
  EXPECT_EQ(grants[0].granted.value, 20);
  EXPECT_EQ(grants[1].granted.value, 20);
}

TEST(Scheduler, NeverGrantsMoreThanTotal) {
  const std::vector<PlmnLoad> loads = {
      {PlmnId{1}, PrbCount{40}, DataRate::mbps(100.0), Cqi{8}},
      {PlmnId{2}, PrbCount{30}, DataRate::mbps(100.0), Cqi{5}},
      {PlmnId{3}, PrbCount{0}, DataRate::mbps(100.0), Cqi{12}},
  };
  for (const SharingPolicy policy : {SharingPolicy::strict, SharingPolicy::pooled}) {
    const auto grants = schedule_epoch(PrbCount{100}, loads, policy);
    int total = 0;
    for (const PlmnGrant& g : grants) total += g.granted.value;
    EXPECT_LE(total, 100);
  }
}

TEST(Scheduler, ServedNeverExceedsDemand) {
  const std::vector<PlmnLoad> loads = {
      {PlmnId{1}, PrbCount{90}, DataRate::mbps(1.0), Cqi{15}},
  };
  const auto grants = schedule_epoch(PrbCount{100}, loads, SharingPolicy::pooled);
  EXPECT_DOUBLE_EQ(grants[0].served.as_mbps(), 1.0);
}

// --- Cell ----------------------------------------------------------------------

Cell make_cell() {
  return Cell(CellId{1}, "test-cell", Bandwidth::mhz20, SharingPolicy::pooled);
}

TEST(Cell, BroadcastLifecycle) {
  Cell cell = make_cell();
  EXPECT_TRUE(cell.broadcast_plmn(PlmnId{10}).ok());
  EXPECT_TRUE(cell.broadcasts(PlmnId{10}));
  EXPECT_EQ(cell.broadcast_plmn(PlmnId{10}).error().code, Errc::conflict);
  EXPECT_TRUE(cell.withdraw_plmn(PlmnId{10}).ok());
  EXPECT_FALSE(cell.broadcasts(PlmnId{10}));
  EXPECT_EQ(cell.withdraw_plmn(PlmnId{10}).error().code, Errc::not_found);
}

TEST(Cell, BroadcastListBounded) {
  Cell cell = make_cell();
  for (std::uint64_t i = 1; i <= kMaxBroadcastPlmns; ++i) {
    EXPECT_TRUE(cell.broadcast_plmn(PlmnId{i}).ok());
  }
  EXPECT_EQ(cell.broadcast_plmn(PlmnId{99}).error().code, Errc::insufficient_capacity);
}

TEST(Cell, ReservationRespectsCapacity) {
  Cell cell = make_cell();
  ASSERT_TRUE(cell.broadcast_plmn(PlmnId{1}).ok());
  ASSERT_TRUE(cell.broadcast_plmn(PlmnId{2}).ok());
  EXPECT_TRUE(cell.set_reservation(PlmnId{1}, PrbCount{60}).ok());
  EXPECT_EQ(cell.set_reservation(PlmnId{2}, PrbCount{50}).error().code,
            Errc::insufficient_capacity);
  EXPECT_TRUE(cell.set_reservation(PlmnId{2}, PrbCount{40}).ok());
  EXPECT_EQ(cell.reserved_prbs().value, 100);
  EXPECT_EQ(cell.unreserved_prbs().value, 0);
}

TEST(Cell, ReservationResizeIsPutSemantics) {
  Cell cell = make_cell();
  ASSERT_TRUE(cell.broadcast_plmn(PlmnId{1}).ok());
  ASSERT_TRUE(cell.set_reservation(PlmnId{1}, PrbCount{80}).ok());
  // Shrink and re-grow within own footprint always works.
  EXPECT_TRUE(cell.set_reservation(PlmnId{1}, PrbCount{20}).ok());
  EXPECT_EQ(cell.reservation_of(PlmnId{1}).value, 20);
  EXPECT_TRUE(cell.set_reservation(PlmnId{1}, PrbCount{100}).ok());
}

TEST(Cell, ReservationErrors) {
  Cell cell = make_cell();
  EXPECT_EQ(cell.set_reservation(PlmnId{1}, PrbCount{10}).error().code, Errc::not_found);
  ASSERT_TRUE(cell.broadcast_plmn(PlmnId{1}).ok());
  EXPECT_EQ(cell.set_reservation(PlmnId{1}, PrbCount{-5}).error().code,
            Errc::invalid_argument);
}

TEST(Cell, WithdrawBlockedByReservationAndUes) {
  Cell cell = make_cell();
  ASSERT_TRUE(cell.broadcast_plmn(PlmnId{1}).ok());
  ASSERT_TRUE(cell.set_reservation(PlmnId{1}, PrbCount{10}).ok());
  EXPECT_EQ(cell.withdraw_plmn(PlmnId{1}).error().code, Errc::conflict);
  cell.clear_reservation(PlmnId{1});
  ASSERT_TRUE(cell.attach_ue(UeId{5}, PlmnId{1}, Cqi{9}).ok());
  EXPECT_EQ(cell.withdraw_plmn(PlmnId{1}).error().code, Errc::conflict);
  ASSERT_TRUE(cell.detach_ue(UeId{5}).ok());
  EXPECT_TRUE(cell.withdraw_plmn(PlmnId{1}).ok());
}

TEST(Cell, UeAttachRequiresBroadcast) {
  Cell cell = make_cell();
  EXPECT_EQ(cell.attach_ue(UeId{1}, PlmnId{7}, Cqi{10}).error().code, Errc::not_found);
  ASSERT_TRUE(cell.broadcast_plmn(PlmnId{7}).ok());
  EXPECT_TRUE(cell.attach_ue(UeId{1}, PlmnId{7}, Cqi{10}).ok());
  EXPECT_EQ(cell.attach_ue(UeId{1}, PlmnId{7}, Cqi{10}).error().code, Errc::conflict);
  EXPECT_EQ(cell.attached_count(PlmnId{7}), 1u);
}

TEST(Cell, MeanCqiAveragesAttachedUes) {
  Cell cell = make_cell();
  ASSERT_TRUE(cell.broadcast_plmn(PlmnId{1}).ok());
  EXPECT_EQ(cell.mean_cqi(PlmnId{1}, Cqi{9}), Cqi{9});  // fallback
  ASSERT_TRUE(cell.attach_ue(UeId{1}, PlmnId{1}, Cqi{6}).ok());
  ASSERT_TRUE(cell.attach_ue(UeId{2}, PlmnId{1}, Cqi{12}).ok());
  EXPECT_EQ(cell.mean_cqi(PlmnId{1}, Cqi{9}), Cqi{9});  // (6+12)/2
}

TEST(Cell, UeCqiUpdateAndQuery) {
  Cell cell = make_cell();
  ASSERT_TRUE(cell.broadcast_plmn(PlmnId{1}).ok());
  ASSERT_TRUE(cell.attach_ue(UeId{1}, PlmnId{1}, Cqi{7}).ok());
  EXPECT_EQ(cell.ue_cqi(UeId{1}), Cqi{7});
  EXPECT_TRUE(cell.update_ue_cqi(UeId{1}, Cqi{12}).ok());
  EXPECT_EQ(cell.ue_cqi(UeId{1}), Cqi{12});
  EXPECT_EQ(cell.update_ue_cqi(UeId{9}, Cqi{5}).error().code, Errc::not_found);
  EXPECT_EQ(cell.ue_cqi(UeId{9}), std::nullopt);
}

TEST(Cell, CqiWanderStaysInRange) {
  Cell cell = make_cell();
  ASSERT_TRUE(cell.broadcast_plmn(PlmnId{1}).ok());
  ASSERT_TRUE(cell.attach_ue(UeId{1}, PlmnId{1}, Cqi{1}).ok());
  ASSERT_TRUE(cell.attach_ue(UeId{2}, PlmnId{1}, Cqi{15}).ok());
  Rng rng(3);
  bool moved = false;
  for (int i = 0; i < 500; ++i) {
    cell.wander_cqis(rng, 0.5);
    for (const UeId ue : {UeId{1}, UeId{2}}) {
      const std::optional<Cqi> cqi = cell.ue_cqi(ue);
      ASSERT_TRUE(cqi.has_value());
      EXPECT_GE(cqi->index(), 1);
      EXPECT_LE(cqi->index(), 15);
      if (*cqi != Cqi{1} && *cqi != Cqi{15}) moved = true;
    }
  }
  EXPECT_TRUE(moved);
}

// Distribution parity between the batched wander kernel and the retained
// legacy walk: same step probability, symmetric sign, same bounds. The two
// consume the RNG differently, so this is a statistical check, not a
// bit-compare.
TEST(Cell, WanderStepRateMatchesLegacyDistribution) {
  constexpr std::size_t kUes = 2048;
  constexpr int kRounds = 20;
  constexpr double kP = 0.3;
  const auto step_rate = [&](bool legacy) {
    Cell cell = make_cell();
    EXPECT_TRUE(cell.broadcast_plmn(PlmnId{1}).ok());
    std::vector<UeId> ues;
    for (std::size_t i = 0; i < kUes; ++i) {
      const UeId ue{i + 1};
      EXPECT_TRUE(cell.attach_ue(ue, PlmnId{1}, Cqi{8}).ok());
      ues.push_back(ue);
    }
    Rng rng(19);
    std::vector<int> before(kUes);
    std::int64_t moved = 0;
    std::int64_t trials = 0;
    for (int round = 0; round < kRounds; ++round) {
      for (std::size_t i = 0; i < kUes; ++i) before[i] = cell.ue_cqi(ues[i])->index();
      if (legacy) {
        cell.wander_cqis_legacy(rng, kP);
      } else {
        cell.wander_cqis(rng, kP);
      }
      for (std::size_t i = 0; i < kUes; ++i) {
        const int after = cell.ue_cqi(ues[i])->index();
        EXPECT_GE(after, 1);
        EXPECT_LE(after, 15);
        if (after != before[i]) ++moved;
        ++trials;
      }
    }
    return static_cast<double>(moved) / static_cast<double>(trials);
  };
  const double vectorized = step_rate(false);
  const double legacy = step_rate(true);
  // Clamping at the band edges hides the odd step, so the observed rate
  // sits a hair below p; both kernels must sit there together.
  EXPECT_NEAR(vectorized, kP, 0.02);
  EXPECT_NEAR(legacy, kP, 0.02);
  EXPECT_NEAR(vectorized, legacy, 0.015);
}

// The batched kernel masks detached rows with the live column and folds
// per-PLMN CQI deltas once per block: after wandering across holes, the
// cached mean must equal a recomputation from the surviving UEs.
TEST(Cell, WanderSkipsHolesAndKeepsCqiSumsConsistent) {
  Cell cell = make_cell();
  ASSERT_TRUE(cell.broadcast_plmn(PlmnId{1}).ok());
  ASSERT_TRUE(cell.broadcast_plmn(PlmnId{2}).ok());
  std::vector<UeId> live;
  for (std::size_t i = 0; i < 64; ++i) {
    const UeId ue{i + 1};
    const PlmnId plmn{1 + i % 2};
    ASSERT_TRUE(cell.attach_ue(ue, plmn, Cqi{static_cast<int>(1 + i % 15)}).ok());
    live.push_back(ue);
  }
  // Punch holes in the middle of the columns.
  for (std::size_t i = 0; i < 64; i += 3) {
    ASSERT_TRUE(cell.detach_ue(UeId{i + 1}).ok());
    live.erase(std::find(live.begin(), live.end(), UeId{i + 1}));
  }
  Rng rng(23);
  for (int round = 0; round < 50; ++round) cell.wander_cqis(rng, 0.5);

  for (const PlmnId plmn : {PlmnId{1}, PlmnId{2}}) {
    std::int64_t sum = 0;
    std::int64_t count = 0;
    for (const UeId ue : live) {
      // ue_cqi is hole-aware; only UEs of this PLMN contribute.
      if ((ue.value() - 1) % 2 != plmn.value() - 1) continue;
      const std::optional<Cqi> cqi = cell.ue_cqi(ue);
      ASSERT_TRUE(cqi.has_value());
      sum += cqi->index();
      ++count;
    }
    ASSERT_GT(count, 0);
    const int expected_mean =
        std::clamp(static_cast<int>(sum / count), 1, 15);  // mirror of mean_cqi_at
    EXPECT_EQ(cell.mean_cqi(plmn, Cqi{7}).index(), expected_mean) << "plmn " << plmn.value();
  }
  // Detached rows stay detached.
  EXPECT_EQ(cell.ue_cqi(UeId{1}), std::nullopt);
}

TEST(Cell, ServeEpochUsesReservations) {
  Cell cell = make_cell();
  ASSERT_TRUE(cell.broadcast_plmn(PlmnId{1}).ok());
  ASSERT_TRUE(cell.set_reservation(PlmnId{1}, PrbCount{50}).ok());
  const std::vector<std::pair<PlmnId, DataRate>> demands = {{PlmnId{1}, DataRate::mbps(5.0)}};
  const auto grants = cell.serve_epoch(demands);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_DOUBLE_EQ(grants[0].served.as_mbps(), 5.0);
}

// --- RanController ----------------------------------------------------------------

RanController make_controller(telemetry::MonitorRegistry* reg = nullptr) {
  RanController controller(reg);
  controller.add_cell(Cell(CellId{1}, "a", Bandwidth::mhz20, SharingPolicy::pooled));
  controller.add_cell(Cell(CellId{2}, "b", Bandwidth::mhz20, SharingPolicy::pooled));
  return controller;
}

TEST(RanController, PlmnInstallIsNetworkWide) {
  RanController controller = make_controller();
  ASSERT_TRUE(controller.install_plmn(PlmnId{100}).ok());
  EXPECT_TRUE(controller.find_cell(CellId{1})->broadcasts(PlmnId{100}));
  EXPECT_TRUE(controller.find_cell(CellId{2})->broadcasts(PlmnId{100}));
  EXPECT_EQ(controller.install_plmn(PlmnId{100}).error().code, Errc::conflict);
}

TEST(RanController, RemovePlmnBlockedByAllocation) {
  RanController controller = make_controller();
  ASSERT_TRUE(controller.install_plmn(PlmnId{100}).ok());
  ASSERT_TRUE(controller.set_allocation(PlmnId{100}, DataRate::mbps(20.0)).ok());
  EXPECT_EQ(controller.remove_plmn(PlmnId{100}).error().code, Errc::conflict);
  controller.release_allocation(PlmnId{100});
  EXPECT_TRUE(controller.remove_plmn(PlmnId{100}).ok());
}

TEST(RanController, AllocationGuaranteesRate) {
  RanController controller = make_controller();
  ASSERT_TRUE(controller.install_plmn(PlmnId{100}).ok());
  const Result<RanAllocation> alloc =
      controller.set_allocation(PlmnId{100}, DataRate::mbps(30.0), Cqi{10});
  ASSERT_TRUE(alloc.ok());
  DataRate capacity = DataRate::zero();
  for (const auto& [cell, prbs] : alloc.value().per_cell) {
    capacity += throughput_of(prbs, Cqi{10});
  }
  EXPECT_GE(capacity, DataRate::mbps(30.0));
}

TEST(RanController, AllocationSpansCellsWhenOneIsFull) {
  RanController controller = make_controller();
  ASSERT_TRUE(controller.install_plmn(PlmnId{100}).ok());
  // One 20 MHz cell at CQI 10 carries ~41 Mb/s; ask for more.
  const double one_cell = throughput_of(PrbCount{100}, Cqi{10}).as_mbps();
  const Result<RanAllocation> alloc =
      controller.set_allocation(PlmnId{100}, DataRate::mbps(one_cell * 1.5), Cqi{10});
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc.value().per_cell.size(), 2u);
}

TEST(RanController, AllocationFailsAtomicallyBeyondCapacity) {
  RanController controller = make_controller();
  ASSERT_TRUE(controller.install_plmn(PlmnId{100}).ok());
  const double total = controller.total_capacity(Cqi{10}).as_mbps();
  const Result<RanAllocation> too_big =
      controller.set_allocation(PlmnId{100}, DataRate::mbps(total * 1.2), Cqi{10});
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.error().code, Errc::insufficient_capacity);
  // Nothing must remain reserved after the failure.
  EXPECT_EQ(controller.find_cell(CellId{1})->reserved_prbs().value, 0);
  EXPECT_EQ(controller.find_cell(CellId{2})->reserved_prbs().value, 0);
  EXPECT_EQ(controller.find_allocation(PlmnId{100}), nullptr);
}

TEST(RanController, ResizePreservesOtherAllocations) {
  RanController controller = make_controller();
  ASSERT_TRUE(controller.install_plmn(PlmnId{1}).ok());
  ASSERT_TRUE(controller.install_plmn(PlmnId{2}).ok());
  ASSERT_TRUE(controller.set_allocation(PlmnId{1}, DataRate::mbps(30.0)).ok());
  ASSERT_TRUE(controller.set_allocation(PlmnId{2}, DataRate::mbps(25.0)).ok());
  ASSERT_TRUE(controller.set_allocation(PlmnId{1}, DataRate::mbps(5.0)).ok());  // shrink
  ASSERT_NE(controller.find_allocation(PlmnId{2}), nullptr);
  EXPECT_DOUBLE_EQ(controller.find_allocation(PlmnId{2})->rate.as_mbps(), 25.0);
  EXPECT_DOUBLE_EQ(controller.find_allocation(PlmnId{1})->rate.as_mbps(), 5.0);
}

TEST(RanController, AvailableCapacityShrinksWithAllocations) {
  RanController controller = make_controller();
  ASSERT_TRUE(controller.install_plmn(PlmnId{1}).ok());
  const DataRate before = controller.available_capacity();
  ASSERT_TRUE(controller.set_allocation(PlmnId{1}, DataRate::mbps(20.0)).ok());
  const DataRate after = controller.available_capacity();
  EXPECT_LT(after, before);
  EXPECT_GE(before - after, DataRate::mbps(20.0) * 0.99);
}

TEST(RanController, UeAttachGatedOnPlmnInstall) {
  RanController controller = make_controller();
  EXPECT_EQ(controller.attach_ue(PlmnId{5}, Cqi{10}).error().code, Errc::not_found);
  ASSERT_TRUE(controller.install_plmn(PlmnId{5}).ok());
  const Result<UeId> ue = controller.attach_ue(PlmnId{5}, Cqi{10});
  ASSERT_TRUE(ue.ok());
  EXPECT_EQ(controller.attached_ues(PlmnId{5}), 1u);
  EXPECT_TRUE(controller.detach_ue(ue.value()).ok());
  EXPECT_EQ(controller.detach_ue(ue.value()).error().code, Errc::not_found);
}

TEST(RanController, UesBalanceAcrossCells) {
  RanController controller = make_controller();
  ASSERT_TRUE(controller.install_plmn(PlmnId{5}).ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(controller.attach_ue(PlmnId{5}, Cqi{10}).ok());
  EXPECT_EQ(controller.find_cell(CellId{1})->attached_total(), 5u);
  EXPECT_EQ(controller.find_cell(CellId{2})->attached_total(), 5u);
}

TEST(RanController, HandoverMovesUePreservingState) {
  RanController controller = make_controller();
  ASSERT_TRUE(controller.install_plmn(PlmnId{5}).ok());
  const Result<UeId> ue = controller.attach_ue(PlmnId{5}, Cqi{12});
  ASSERT_TRUE(ue.ok());
  // Least-loaded attach put it on cell 1.
  ASSERT_EQ(controller.find_cell(CellId{1})->attached_total(), 1u);

  ASSERT_TRUE(controller.handover_ue(ue.value(), CellId{2}).ok());
  EXPECT_EQ(controller.find_cell(CellId{1})->attached_total(), 0u);
  EXPECT_EQ(controller.find_cell(CellId{2})->attached_total(), 1u);
  EXPECT_EQ(controller.find_cell(CellId{2})->ue_cqi(ue.value()), Cqi{12});
  EXPECT_EQ(controller.attached_ues(PlmnId{5}), 1u);

  // Errors: same cell, unknown ue/cell, inactive target.
  EXPECT_EQ(controller.handover_ue(ue.value(), CellId{2}).error().code, Errc::conflict);
  EXPECT_EQ(controller.handover_ue(UeId{999}, CellId{1}).error().code, Errc::not_found);
  EXPECT_EQ(controller.handover_ue(ue.value(), CellId{9}).error().code, Errc::not_found);
  ASSERT_TRUE(controller.set_cell_active(CellId{1}, false).ok());
  EXPECT_EQ(controller.handover_ue(ue.value(), CellId{1}).error().code, Errc::conflict);
}

TEST(RanController, RebalanceEvensOutLoad) {
  RanController controller = make_controller();
  ASSERT_TRUE(controller.install_plmn(PlmnId{5}).ok());
  // Pile 6 UEs onto cell 1 by deactivating cell 2 during attach.
  ASSERT_TRUE(controller.set_cell_active(CellId{2}, false).ok());
  std::vector<UeId> ues;
  for (int i = 0; i < 6; ++i) {
    // attach_ue load-balances over all cells incl. inactive; pin to
    // cell 1 via handover after reactivation instead.
    const Result<UeId> ue = controller.attach_ue(PlmnId{5}, Cqi{10});
    ASSERT_TRUE(ue.ok());
    ues.push_back(ue.value());
  }
  ASSERT_TRUE(controller.set_cell_active(CellId{2}, true).ok());
  // Force the imbalance deterministically.
  for (const UeId ue : ues) {
    (void)controller.handover_ue(ue, CellId{1});
  }
  ASSERT_EQ(controller.find_cell(CellId{1})->attached_total(), 6u);

  const std::size_t moves = controller.rebalance_ues();
  EXPECT_GE(moves, 2u);
  const std::size_t a = controller.find_cell(CellId{1})->attached_total();
  const std::size_t b = controller.find_cell(CellId{2})->attached_total();
  EXPECT_LE(a > b ? a - b : b - a, 1u);
  EXPECT_EQ(a + b, 6u);
  // Idempotent once balanced.
  EXPECT_EQ(controller.rebalance_ues(), 0u);
}

TEST(RanController, ServeEpochAggregatesAndPublishesTelemetry) {
  telemetry::MonitorRegistry registry;
  RanController controller = make_controller(&registry);
  ASSERT_TRUE(controller.install_plmn(PlmnId{7}).ok());
  ASSERT_TRUE(controller.set_allocation(PlmnId{7}, DataRate::mbps(20.0)).ok());
  const std::vector<std::pair<PlmnId, DataRate>> demands = {{PlmnId{7}, DataRate::mbps(10.0)}};
  const auto reports = controller.serve_epoch(demands, SimTime::from_seconds(60.0));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_NEAR(reports[0].served.as_mbps(), 10.0, 0.3);
  EXPECT_NE(registry.find_series("ran.plmn.7.served_mbps"), nullptr);
  EXPECT_NE(registry.find_series("ran.cell.1.utilization"), nullptr);
}

TEST(RanController, RestApiDrivesFullLifecycle) {
  RanController controller = make_controller();
  net::RestBus bus;
  bus.register_service("ran", controller.make_router());

  // Install PLMN.
  json::Value install;
  install["plmn"] = 31337;
  ASSERT_TRUE(bus.call_json("ran", net::Method::post, "/plmns", install).ok());
  EXPECT_TRUE(controller.plmn_installed(PlmnId{31337}));

  // Allocate.
  json::Value alloc;
  alloc["rate_mbps"] = 25.0;
  const Result<json::Value> alloc_resp =
      bus.call_json("ran", net::Method::put, "/allocations/31337", alloc);
  ASSERT_TRUE(alloc_resp.ok()) << alloc_resp.error().message;
  EXPECT_GT(alloc_resp.value().find("total_prb")->as_int(), 0);

  // Capacity reflects the reservation.
  const Result<json::Value> cap = bus.get_json("ran", "/capacity");
  ASSERT_TRUE(cap.ok());
  EXPECT_LT(cap.value().find("available_mbps")->as_number(),
            cap.value().find("total_mbps")->as_number());

  // Attach a UE over REST.
  json::Value ue;
  ue["plmn"] = 31337;
  ue["cqi"] = 12;
  const Result<json::Value> ue_resp = bus.call_json("ran", net::Method::post, "/ues", ue);
  ASSERT_TRUE(ue_resp.ok());

  // Release + remove.
  ASSERT_TRUE(bus.call_json("ran", net::Method::del,
                            "/allocations/31337", json::Value(nullptr)).ok());
  const Result<json::Value> bad_remove =
      bus.call_json("ran", net::Method::del, "/plmns/31337", json::Value(nullptr));
  EXPECT_FALSE(bad_remove.ok());  // UE still attached
}

TEST(RanController, RestApiRejectsGarbage) {
  RanController controller = make_controller();
  net::RestBus bus;
  bus.register_service("ran", controller.make_router());

  net::Request bad;
  bad.method = net::Method::post;
  bad.target = "/plmns";
  bad.body = "not json";
  const Result<net::Response> resp = bus.call("ran", bad);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().status, net::Status::bad_request);

  json::Value ue;
  ue["plmn"] = 1;
  ue["cqi"] = 99;  // out of range
  EXPECT_FALSE(bus.call_json("ran", net::Method::post, "/ues", ue).ok());
}

}  // namespace
}  // namespace slices::ran
