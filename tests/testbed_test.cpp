// Tests that make_testbed() wires the exact Fig. 2 deployment: the RAN,
// the wireless+wired transport, the two datacenters, the REST services
// and the orchestrator's attachment points.

#include <gtest/gtest.h>

#include "core/testbed.hpp"

namespace slices::core {
namespace {

TEST(Testbed, TwoTwentyMhzMocnCells) {
  auto tb = make_testbed(1);
  ASSERT_EQ(tb->ran.cell_count(), 2u);
  for (const CellId id : {tb->cell_a, tb->cell_b}) {
    const ran::Cell* cell = tb->ran.find_cell(id);
    ASSERT_NE(cell, nullptr);
    EXPECT_EQ(cell->total_prbs().value, 100);  // 20 MHz
    EXPECT_EQ(cell->sharing_policy(), ran::SharingPolicy::pooled);
    EXPECT_TRUE(cell->broadcast_list().empty());  // no slices yet
  }
}

TEST(Testbed, TransportMatchesFigureTwo) {
  auto tb = make_testbed(2);
  const transport::Topology& topo = tb->transport->topology();
  EXPECT_EQ(topo.node_count(), 4u);
  EXPECT_EQ(topo.link_count(), 10u);  // 5 bidirectional pairs

  const transport::Node* ran_gw = topo.find_node(tb->ran_gateway);
  const transport::Node* sw = topo.find_node(tb->switch_node);
  ASSERT_NE(ran_gw, nullptr);
  ASSERT_NE(sw, nullptr);
  EXPECT_EQ(ran_gw->kind, transport::NodeKind::enb_gateway);
  EXPECT_EQ(sw->kind, transport::NodeKind::openflow_switch);

  // The two wireless uplinks: fast mmWave + steadier µwave.
  const transport::Link* mm = topo.find_link(tb->mmwave_uplink);
  const transport::Link* uw = topo.find_link(tb->uwave_uplink);
  ASSERT_NE(mm, nullptr);
  ASSERT_NE(uw, nullptr);
  EXPECT_EQ(mm->technology, transport::LinkTechnology::mmwave);
  EXPECT_EQ(uw->technology, transport::LinkTechnology::uwave);
  EXPECT_GT(mm->nominal_capacity, uw->nominal_capacity);
  EXPECT_LT(mm->delay, uw->delay);
  // Both leave the RAN gateway toward the switch.
  EXPECT_EQ(mm->from, tb->ran_gateway);
  EXPECT_EQ(mm->to, tb->switch_node);

  // Wireless links fade; the wired tails do not.
  EXPECT_EQ(tb->transport->fading().tracked_links(), 4u);  // 2 pairs
}

TEST(Testbed, EdgeAndCoreDatacenters) {
  auto tb = make_testbed(3);
  const cloud::Datacenter* edge = tb->cloud.find_datacenter(tb->edge_dc);
  const cloud::Datacenter* cloud_core = tb->cloud.find_datacenter(tb->core_dc);
  ASSERT_NE(edge, nullptr);
  ASSERT_NE(cloud_core, nullptr);
  EXPECT_EQ(edge->kind(), cloud::DatacenterKind::edge);
  EXPECT_EQ(cloud_core->kind(), cloud::DatacenterKind::core);
  // The core cloud is much larger than the scarce edge.
  EXPECT_GT(cloud_core->total_capacity().vcpus, edge->total_capacity().vcpus * 3.0);
  EXPECT_TRUE(tb->cloud.finalized());
}

TEST(Testbed, AllRestServicesRegistered) {
  auto tb = make_testbed(4);
  for (const char* service : {"ran", "transport", "cloud", "orchestrator"}) {
    EXPECT_TRUE(tb->bus.has_service(service)) << service;
  }
  // Every controller answers its /metrics (or /report) immediately.
  EXPECT_TRUE(tb->bus.get_json("ran", "/metrics").ok());
  EXPECT_TRUE(tb->bus.get_json("transport", "/metrics").ok());
  EXPECT_TRUE(tb->bus.get_json("cloud", "/metrics").ok());
  EXPECT_TRUE(tb->bus.get_json("orchestrator", "/report").ok());
}

TEST(Testbed, OrchestratorLoopIsArmed) {
  auto tb = make_testbed(5);
  // The periodic monitoring loop must be scheduled: running one period
  // executes at least one event and publishes the summary gauge.
  EXPECT_GT(tb->simulator.pending_events(), 0u);
  tb->simulator.run_for(tb->orchestrator->config().monitoring_period);
  EXPECT_NE(tb->registry.find_gauge("orchestrator.multiplexing_gain"), nullptr);
}

TEST(Testbed, SeedsProduceIndependentFading) {
  auto a = make_testbed(100);
  auto b = make_testbed(101);
  // Advance both transports and compare mmWave factors: different seeds
  // must diverge.
  bool diverged = false;
  for (int i = 0; i < 50 && !diverged; ++i) {
    (void)a->transport->serve_epoch({}, SimTime::from_seconds(i * 900.0));
    (void)b->transport->serve_epoch({}, SimTime::from_seconds(i * 900.0));
    const transport::Link* link_a = a->transport->topology().find_link(a->mmwave_uplink);
    const transport::Link* link_b = b->transport->topology().find_link(b->mmwave_uplink);
    if (a->transport->fading().factor(link_a->id) !=
        b->transport->fading().factor(link_b->id)) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace slices::core
