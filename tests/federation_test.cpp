// Federation subsystem tests: fabric generation invariants, the metro
// scenario grammar, the remote RestBus backend, and the determinism
// bar — byte-identical federated scorecards across thread counts and
// across transports — plus broker failover semantics (re-placement
// away from a failed region, deferred admission during a restart).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>

#include "federation/broker.hpp"
#include "federation/edge.hpp"
#include "federation/fabric.hpp"
#include "federation/runner.hpp"
#include "json/value.hpp"
#include "net/http_server.hpp"
#include "net/rest_bus.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "telemetry/trace.hpp"

namespace slices {
namespace {

using federation::FederatedRunner;
using federation::FederatedRunOptions;
using federation::FederatedScorecard;
using federation::make_metro_fabric;
using federation::MetroFabric;

// ---------------------------------------------------------------- fabric

TEST(MetroFabric, GeneratesRegionsPricesAndBackbone) {
  scenario::FederationSpec spec;
  spec.regions = 4;
  spec.cells_per_region = 8;
  spec.backbone = "ring";
  const Result<MetroFabric> fabric = make_metro_fabric(spec, 42);
  ASSERT_TRUE(fabric.ok());

  ASSERT_EQ(fabric.value().regions.size(), 4u);
  ASSERT_EQ(fabric.value().border_nodes.size(), 4u);
  EXPECT_EQ(fabric.value().total_cells(), 32u);
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 4; ++i) {
    const federation::RegionPlan& plan = fabric.value().regions[i];
    EXPECT_EQ(plan.name, "r" + std::to_string(i));
    EXPECT_EQ(plan.index, i);
    EXPECT_GE(plan.price_factor, 0.85);
    EXPECT_LE(plan.price_factor, 1.15);
    seeds.insert(plan.seed);
  }
  EXPECT_EQ(seeds.size(), 4u) << "regions must draw distinct RNG streams";
  // A 4-region ring: 4 legs, each a bidirectional pair.
  EXPECT_EQ(fabric.value().backbone.links().size(), 8u);
}

TEST(MetroFabric, MeshAndDegenerateRingShapes) {
  scenario::FederationSpec spec;
  spec.regions = 4;
  spec.backbone = "mesh";
  const Result<MetroFabric> mesh = make_metro_fabric(spec, 1);
  ASSERT_TRUE(mesh.ok());
  EXPECT_EQ(mesh.value().backbone.links().size(), 12u);  // C(4,2) pairs

  spec.regions = 2;
  spec.backbone = "ring";
  const Result<MetroFabric> pair = make_metro_fabric(spec, 1);
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair.value().backbone.links().size(), 2u) << "2-ring is one bidirectional pair";

  spec.regions = 1;
  const Result<MetroFabric> single = make_metro_fabric(spec, 1);
  ASSERT_TRUE(single.ok());
  EXPECT_TRUE(single.value().backbone.links().empty());
}

TEST(MetroFabric, DeterministicInSeed) {
  scenario::FederationSpec spec;
  const Result<MetroFabric> a = make_metro_fabric(spec, 7);
  const Result<MetroFabric> b = make_metro_fabric(spec, 7);
  const Result<MetroFabric> c = make_metro_fabric(spec, 8);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  for (std::size_t i = 0; i < spec.regions; ++i) {
    EXPECT_EQ(a.value().regions[i].price_factor, b.value().regions[i].price_factor);
    EXPECT_EQ(a.value().regions[i].seed, b.value().regions[i].seed);
    EXPECT_NE(a.value().regions[i].seed, c.value().regions[i].seed);
  }
}

// ----------------------------------------------------------- metro DSL

constexpr const char* kMetroDoc = R"({
  "name": "metro_mini",
  "seed": 5,
  "duration_hours": 6,
  "topology": "metro",
  "federation": {"regions": 2, "cells_per_region": 4, "hosts_per_dc": 1},
  "orchestrator": {"monitoring_period_minutes": 5},
  "workload": {"arrivals_per_hour": 3, "min_duration_hours": 1, "max_duration_hours": 3},
  "events": [
    {"kind": "cell_down", "at_hours": 1, "region": "r0", "cell": "c2", "duration_hours": 1},
    {"kind": "controller_restart", "at_hours": 2, "region": "r1", "duration_minutes": 10}
  ]
})";

TEST(MetroScenarioDsl, ParsesRegionScopedEvents) {
  const Result<scenario::Scenario> parsed = scenario::parse_scenario(kMetroDoc);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const scenario::Scenario& s = parsed.value();
  EXPECT_EQ(s.topology, "metro");
  EXPECT_EQ(s.federation.regions, 2u);
  EXPECT_EQ(s.federation.cells_per_region, 4u);
  ASSERT_EQ(s.events.size(), 2u);
  EXPECT_EQ(s.events[0].region, "r0");
  EXPECT_EQ(s.events[0].target, "c2");
  EXPECT_EQ(s.events[1].region, "r1");
}

TEST(MetroScenarioDsl, RoundTripsThroughCanonicalJson) {
  const Result<scenario::Scenario> parsed = scenario::parse_scenario(kMetroDoc);
  ASSERT_TRUE(parsed.ok());
  const std::string canonical = scenario::serialize_scenario(parsed.value());
  const Result<scenario::Scenario> reparsed = scenario::parse_scenario(canonical);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
  EXPECT_EQ(scenario::serialize_scenario(reparsed.value()), canonical);
  EXPECT_NE(canonical.find("\"federation\""), std::string::npos);
}

TEST(MetroScenarioDsl, RejectsBadMetroDocuments) {
  const auto rejects = [](const std::string& doc, const std::string& needle) {
    const Result<scenario::Scenario> parsed = scenario::parse_scenario(doc);
    ASSERT_FALSE(parsed.ok()) << "should reject: " << doc;
    EXPECT_NE(parsed.error().message.find(needle), std::string::npos)
        << parsed.error().message;
  };
  // Events must name a region.
  rejects(R"({"name":"x","topology":"metro","workload":{"arrivals_per_hour":1,
    "min_duration_hours":1,"max_duration_hours":2},
    "events":[{"kind":"cell_down","at_hours":1,"cell":"c0"}]})",
          "region");
  // link faults are a fig2 concept.
  rejects(R"({"name":"x","topology":"metro","workload":{"arrivals_per_hour":1,
    "min_duration_hours":1,"max_duration_hours":2},
    "events":[{"kind":"link_down","at_hours":1,"region":"r0","link":"mmwave"}]})",
          "not supported on the metro topology");
  // Region must exist in the federation.
  rejects(R"({"name":"x","topology":"metro","federation":{"regions":2},
    "workload":{"arrivals_per_hour":1,"min_duration_hours":1,"max_duration_hours":2},
    "events":[{"kind":"cell_down","at_hours":1,"region":"r7","cell":"c0"}]})",
          "r7");
  // "federation" is metro-only.
  rejects(R"({"name":"x","topology":"fig2","federation":{"regions":2},
    "workload":{"arrivals_per_hour":1,"min_duration_hours":1,"max_duration_hours":2}})",
          "federation");
}

TEST(MetroScenarioDsl, Fig2DocumentsKeepTheirByteLayout) {
  // A fig2 scenario must serialize without any federation/region keys,
  // so pre-federation golden files stay byte-identical.
  scenario::Scenario s;
  s.name = "plain";
  s.workload.arrivals_per_hour = 1.0;
  s.workload.min_duration = Duration::hours(1.0);
  s.workload.max_duration = Duration::hours(2.0);
  scenario::ScenarioEvent event;
  event.kind = scenario::EventKind::cell_down;
  event.at = Duration::hours(1.0);
  event.target = "a";
  s.events.push_back(event);
  const std::string serialized = scenario::serialize_scenario(s);
  EXPECT_EQ(serialized.find("federation"), std::string::npos);
  EXPECT_EQ(serialized.find("region"), std::string::npos);
}

TEST(MetroScenarioDsl, Fig2RunnerRefusesMetroScenarios) {
  Result<scenario::Scenario> parsed = scenario::parse_scenario(kMetroDoc);
  ASSERT_TRUE(parsed.ok());
  scenario::ScenarioRunner runner(std::move(parsed.value()));
  const auto card = runner.run();
  ASSERT_FALSE(card.ok());
  EXPECT_NE(card.error().message.find("FederatedRunner"), std::string::npos);
}

// ----------------------------------------------------------- remote bus

TEST(RestBusRemote, RoutesCallsOverALoopbackSocket) {
  auto router = std::make_shared<net::Router>();
  router->add(net::Method::get, "/ping", [](const net::RouteContext&) {
    return net::Response::json(net::Status::ok, R"({"pong":true})");
  });
  Result<std::unique_ptr<net::HttpServer>> server = net::HttpServer::bind(router);
  ASSERT_TRUE(server.ok());
  std::thread serving([&server] { server.value()->run(); });

  net::RestBus bus;
  bus.register_remote("echo", server.value()->port());
  EXPECT_TRUE(bus.has_service("echo"));

  const Result<json::Value> doc = bus.get_json("echo", "/ping");
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  EXPECT_TRUE(doc.value().find("pong")->as_bool());

  const auto stats = bus.stats();
  EXPECT_EQ(stats.at("echo").responses_ok, 1u);
  EXPECT_GT(stats.at("echo").bytes_rx, 0u);

  bus.unregister_service("echo");
  EXPECT_FALSE(bus.has_service("echo"));

  server.value()->stop();
  serving.join();
}

// -------------------------------------------------------- determinism

scenario::Scenario metro_scenario() {
  const Result<scenario::Scenario> parsed = scenario::parse_scenario(kMetroDoc);
  EXPECT_TRUE(parsed.ok());
  return parsed.value();
}

std::string run_federated(FederatedRunOptions options) {
  FederatedRunner runner(metro_scenario(), options);
  const Result<FederatedScorecard> card = runner.run();
  EXPECT_TRUE(card.ok()) << (card.ok() ? "" : card.error().message);
  return card.ok() ? card.value().serialize() : std::string();
}

TEST(FederationDeterminism, ThreadCountDoesNotChangeTheScorecard) {
  FederatedRunOptions one;
  one.epoch_threads = 1;
  FederatedRunOptions four;
  four.epoch_threads = 4;
  EXPECT_EQ(run_federated(one), run_federated(four));
}

TEST(FederationDeterminism, SocketTransportMatchesInProcessDispatch) {
  FederatedRunOptions inproc;
  FederatedRunOptions socket;
  socket.socket_transport = true;
  EXPECT_EQ(run_federated(inproc), run_federated(socket));
}

TEST(FederationDeterminism, RepeatedRunIsBitStable) {
  EXPECT_EQ(run_federated({}), run_federated({}));
}

// ------------------------------------------------------------ failover

TEST(BrokerFailover, RegionOutageRePlacesIntoSurvivingRegions) {
  scenario::Scenario s = metro_scenario();
  // Kill both of r0's datacenters for the whole back half of the run:
  // every later arrival must land in r1.
  s.events.clear();
  scenario::ScenarioEvent down;
  down.kind = scenario::EventKind::dc_down;
  down.at = Duration::hours(3.0);
  down.region = "r0";
  down.target = "core";
  s.events.push_back(down);
  down.target = "edge0";
  s.events.push_back(down);

  FederatedRunner runner(std::move(s), {});
  const Result<FederatedScorecard> card = runner.run();
  ASSERT_TRUE(card.ok()) << card.error().message;

  const json::Value placements = runner.broker()->placements_json();
  const std::int64_t outage_us = Duration::hours(3.0).as_micros();
  bool placed_after_outage = false;
  for (const json::Value& p : placements.find("placements")->as_array()) {
    const std::string outcome = p.find("outcome")->as_string();
    if (outcome != "local" && outcome != "remote") continue;
    if (static_cast<std::int64_t>(p.find("t_us")->as_number()) < outage_us) continue;
    placed_after_outage = true;
    EXPECT_EQ(p.find("placed")->as_string(), "r1")
        << "placement into a region with no datacenters";
  }
  EXPECT_TRUE(placed_after_outage) << "outage window saw no placements at all";
}

TEST(BrokerFailover, RestartingLoneRegionDefersAdmissionUntilResume) {
  // One region, so a controller restart leaves the broker no candidate:
  // requests queue in the deferred lane and land when the edge resumes.
  const Result<scenario::Scenario> parsed = scenario::parse_scenario(R"({
    "name": "defer",
    "seed": 9,
    "duration_hours": 4,
    "topology": "metro",
    "federation": {"regions": 1, "cells_per_region": 4, "hosts_per_dc": 1},
    "orchestrator": {"monitoring_period_minutes": 5},
    "workload": {"arrivals_per_hour": 0, "min_duration_hours": 1, "max_duration_hours": 2},
    "events": [
      {"kind": "controller_restart", "at_hours": 1, "region": "r0", "duration_minutes": 12}
    ],
    "requests": [
      {"at_hours": 1.05, "vertical": "automotive", "duration_hours": 1, "region": "r0"}
    ]
  })");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;

  FederatedRunner runner(parsed.value(), {});
  const Result<FederatedScorecard> card = runner.run();
  ASSERT_TRUE(card.ok()) << card.error().message;

  EXPECT_GE(card.value().deferred_total, 1u) << "request during restart must defer";
  EXPECT_EQ(card.value().deferred_unplaced, 0u) << "deferred request never landed";
  EXPECT_EQ(card.value().admitted, 1u);
  EXPECT_EQ(card.value().placed_local, 1u);
}

// ------------------------------------------------------- observability

/// Run the metro scenario with deterministic tracing on and return the
/// broker's merged federated trace (and, when asked, the merged
/// federation metrics document). Restores the tracer's default state.
std::string run_traced(FederatedRunOptions options, std::string* metrics = nullptr) {
  telemetry::trace::Tracer& tracer = telemetry::trace::Tracer::instance();
  tracer.set_lane_capacity(1u << 16);
  telemetry::trace::set_wall_clock(false);
  telemetry::trace::set_enabled(true);
  telemetry::trace::clear();

  scenario::Scenario scenario = metro_scenario();
  const std::int64_t end_us = (SimTime::origin() + scenario.duration).as_micros();
  FederatedRunner runner(std::move(scenario), options);
  const Result<FederatedScorecard> card = runner.run();
  EXPECT_TRUE(card.ok()) << (card.ok() ? "" : card.error().message);

  std::string trace;
  runner.broker()->export_federated_trace(trace);
  if (metrics != nullptr) {
    *metrics = json::serialize(runner.broker()->federation_metrics_json(end_us));
  }

  telemetry::trace::set_enabled(false);
  tracer.set_lane_capacity(telemetry::trace::Tracer::kDefaultLaneCapacity);
  telemetry::trace::clear();
  EXPECT_EQ(tracer.dropped(), 0u) << "ring overwrote spans; the parity check is meaningless";
  return trace;
}

TEST(FederationObservability, MergedTraceIsTransportInvariant) {
  FederatedRunOptions inproc;
  FederatedRunOptions socket;
  socket.socket_transport = true;
  const std::string a = run_traced(inproc);
  const std::string b = run_traced(socket);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "merged federated trace must not depend on the transport";
}

TEST(FederationObservability, FederationMetricsAreTransportInvariant) {
  std::string inproc_metrics;
  std::string socket_metrics;
  FederatedRunOptions socket;
  socket.socket_transport = true;
  (void)run_traced({}, &inproc_metrics);
  (void)run_traced(socket, &socket_metrics);
  ASSERT_FALSE(inproc_metrics.empty());
  EXPECT_EQ(inproc_metrics, socket_metrics)
      << "merged /federation/metrics must not depend on the transport";

  // The merged document really carries the full-fidelity SLO exports.
  const Result<json::Value> doc = json::parse(inproc_metrics);
  ASSERT_TRUE(doc.ok());
  const json::Value* merged = doc.value().find("merged");
  ASSERT_NE(merged, nullptr);
  const json::Value* headroom =
      merged->find("histograms")->find("orchestrator.slo.admission_headroom_mbps");
  ASSERT_NE(headroom, nullptr);
  EXPECT_GT(headroom->find("count")->as_number(), 0.0);
  const json::Value* broker = doc.value().find("broker");
  ASSERT_NE(broker, nullptr);
  EXPECT_GT(broker->find("gauges")->find("federation.submitted")->as_number(), 0.0);
}

TEST(FederationObservability, BrokerSpansParentEdgeSpansInTheMergedTrace) {
  const std::string trace = run_traced({});
  const Result<json::Value> doc = json::parse(trace);
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  const json::Value* events = doc.value().find("traceEvents");
  ASSERT_NE(events, nullptr);

  // Lane 0 is the broker; resolve the edge lanes from the metadata.
  std::set<double> edge_tids;
  std::set<std::string> broker_span_ids;
  for (const json::Value& event : events->as_array()) {
    const json::Value* ph = event.find("ph");
    if (ph != nullptr && ph->is_string() && ph->as_string() == "M") {
      const json::Value* lane_name = event.find("args")->find("name");
      if (lane_name != nullptr && lane_name->as_string().starts_with("edge.")) {
        edge_tids.insert(event.find("tid")->as_number());
      }
      continue;
    }
    if (event.find("tid")->as_number() == 0.0) {
      broker_span_ids.insert(event.find("args")->find("span")->as_string());
    }
  }
  ASSERT_EQ(edge_tids.size(), 2u);
  ASSERT_FALSE(broker_span_ids.empty());

  // The acceptance shape: an edge-side admission span whose parent is a
  // broker-side span (the bus.call that delegated the admission).
  bool admission_parented_by_broker = false;
  for (const json::Value& event : events->as_array()) {
    const json::Value* ph = event.find("ph");
    if (ph != nullptr && ph->is_string() && ph->as_string() == "M") continue;
    if (!edge_tids.contains(event.find("tid")->as_number())) continue;
    if (event.find("name")->as_string() != "orch.admit.decide") continue;
    EXPECT_GT(event.find("args")->find("depth")->as_number(), 0.0);
    if (broker_span_ids.contains(event.find("args")->find("parent")->as_string())) {
      admission_parented_by_broker = true;
    }
  }
  EXPECT_TRUE(admission_parented_by_broker)
      << "no edge admission span parented by a broker span in the merged trace";
}

TEST(FederationObservability, EdgeMetricsRouteExposesRegistryAndDropCounters) {
  scenario::Scenario scenario = metro_scenario();
  const Result<MetroFabric> fabric = make_metro_fabric(scenario.federation, scenario.seed);
  ASSERT_TRUE(fabric.ok());
  federation::EdgeNode node(fabric.value().regions[0], scenario, 1);

  net::RestBus bus;
  bus.register_service("edge.r0", node.make_router());
  const Result<json::Value> doc = bus.get_json("edge.r0", "/metrics");
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  ASSERT_NE(doc.value().find("metrics"), nullptr);
  const json::Value* trace_status = doc.value().find("trace");
  ASSERT_NE(trace_status, nullptr);
  EXPECT_NE(trace_status->find("dropped"), nullptr);
  EXPECT_NE(trace_status->find("lane_detail"), nullptr);

  const Result<json::Value> fed = bus.get_json("edge.r0", "/federation/metrics");
  ASSERT_TRUE(fed.ok());
  EXPECT_EQ(fed.value().find("region")->as_string(), "r0");
  const json::Value* histograms = fed.value().find("metrics")->find("histograms");
  ASSERT_NE(histograms, nullptr);
  EXPECT_NE(histograms->find("orchestrator.slo.admission_headroom_mbps"), nullptr)
      << "SLO instruments must be interned eagerly, not only after traffic";
}

}  // namespace
}  // namespace slices
