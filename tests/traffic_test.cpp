// Unit + property tests for traffic models and vertical profiles.

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "traffic/model.hpp"
#include "traffic/trace.hpp"
#include "traffic/verticals.hpp"

namespace slices::traffic {
namespace {

SimTime at_hours(double h) { return SimTime::from_seconds(h * 3600.0); }

double empirical_mean(TrafficModel& model, int samples, Duration step) {
  double sum = 0.0;
  SimTime t = SimTime::origin();
  for (int i = 0; i < samples; ++i) {
    sum += model.sample(t);
    t = t + step;
  }
  return sum / samples;
}

TEST(ConstantTraffic, AlwaysTheSame) {
  ConstantTraffic model(7.5);
  EXPECT_DOUBLE_EQ(model.sample(at_hours(0.0)), 7.5);
  EXPECT_DOUBLE_EQ(model.sample(at_hours(13.0)), 7.5);
  EXPECT_DOUBLE_EQ(model.mean_rate(), 7.5);
  EXPECT_DOUBLE_EQ(model.peak_rate(), 7.5);
}

TEST(DiurnalTraffic, OscillatesAroundMean) {
  DiurnalTraffic model(50.0, 30.0, Duration::hours(24.0), Duration::zero(), 0.0, Rng(1));
  // Noise-free: crest at 6h, trough at 18h.
  EXPECT_NEAR(model.sample(at_hours(6.0)), 80.0, 1e-6);
  EXPECT_NEAR(model.sample(at_hours(18.0)), 20.0, 1e-6);
  EXPECT_NEAR(model.sample(at_hours(24.0)), 50.0, 1e-6);
}

TEST(DiurnalTraffic, EmpiricalMeanMatches) {
  DiurnalTraffic model(40.0, 20.0, Duration::hours(24.0), Duration::zero(), 0.05, Rng(2));
  EXPECT_NEAR(empirical_mean(model, 24 * 50, Duration::hours(1.0)), 40.0, 1.5);
}

TEST(DiurnalTraffic, NeverNegativeEvenWithHeavyNoise) {
  DiurnalTraffic model(5.0, 5.0, Duration::hours(24.0), Duration::zero(), 1.0, Rng(3));
  SimTime t = SimTime::origin();
  for (int i = 0; i < 5000; ++i) {
    EXPECT_GE(model.sample(t), 0.0);
    t = t + Duration::minutes(15.0);
  }
}

TEST(SessionTraffic, MeanMatchesOfferedLoad) {
  // 100 arrivals/h x 0.5h holding x 1 Mb/s = 50 Mb/s mean.
  SessionTraffic model(100.0, Duration::minutes(30.0), 1.0, 0.0, Rng(4));
  EXPECT_DOUBLE_EQ(model.mean_rate(), 50.0);
  EXPECT_NEAR(empirical_mean(model, 5000, Duration::minutes(15.0)), 50.0, 1.0);
}

TEST(SessionTraffic, PeakAboveMeanWithDiurnalDepth) {
  SessionTraffic model(100.0, Duration::minutes(30.0), 1.0, 0.5, Rng(5));
  EXPECT_GT(model.peak_rate(), model.mean_rate());
}

TEST(OnOffTraffic, DutyCycleSetsMean) {
  // p_off_on = p_on_off => 50% duty.
  OnOffTraffic model(2.0, 10.0, 0.2, 0.2, Rng(6));
  EXPECT_DOUBLE_EQ(model.mean_rate(), 7.0);
  EXPECT_DOUBLE_EQ(model.peak_rate(), 12.0);
  EXPECT_NEAR(empirical_mean(model, 20000, Duration::minutes(15.0)), 7.0, 0.3);
}

TEST(OnOffTraffic, OnlyTwoLevels) {
  OnOffTraffic model(1.0, 4.0, 0.3, 0.3, Rng(7));
  SimTime t = SimTime::origin();
  for (int i = 0; i < 1000; ++i) {
    const double v = model.sample(t);
    EXPECT_TRUE(v == 1.0 || v == 5.0) << v;
    t = t + Duration::minutes(15.0);
  }
}

TEST(CompositeTraffic, SumsComponents) {
  auto composite = CompositeTraffic(std::make_unique<ConstantTraffic>(3.0),
                                    std::make_unique<ConstantTraffic>(4.0));
  EXPECT_DOUBLE_EQ(composite.sample(at_hours(1.0)), 7.0);
  EXPECT_DOUBLE_EQ(composite.mean_rate(), 7.0);
  EXPECT_DOUBLE_EQ(composite.peak_rate(), 7.0);
}

TEST(TrafficDeterminism, SameSeedSameTrace) {
  DiurnalTraffic a(30.0, 10.0, Duration::hours(24.0), Duration::zero(), 0.2, Rng(42));
  DiurnalTraffic b(30.0, 10.0, Duration::hours(24.0), Duration::zero(), 0.2, Rng(42));
  SimTime t = SimTime::origin();
  for (int i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(a.sample(t), b.sample(t));
    t = t + Duration::minutes(15.0);
  }
}

// --- trace replay -----------------------------------------------------------

TEST(TraceTraffic, ReplaysAndLoops) {
  TraceTraffic trace({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(trace.sample(at_hours(0.0)), 1.0);
  EXPECT_DOUBLE_EQ(trace.sample(at_hours(1.0)), 2.0);
  EXPECT_DOUBLE_EQ(trace.sample(at_hours(2.0)), 3.0);
  EXPECT_DOUBLE_EQ(trace.sample(at_hours(3.0)), 1.0);  // wrapped
  EXPECT_EQ(trace.position(), 4u);
  EXPECT_DOUBLE_EQ(trace.mean_rate(), 2.0);
  EXPECT_DOUBLE_EQ(trace.peak_rate(), 3.0);
}

TEST(TraceTraffic, HoldsLastWhenNotLooping) {
  TraceTraffic trace({5.0, 7.0}, /*loop=*/false);
  (void)trace.sample(at_hours(0.0));
  (void)trace.sample(at_hours(1.0));
  EXPECT_DOUBLE_EQ(trace.sample(at_hours(2.0)), 7.0);
  EXPECT_DOUBLE_EQ(trace.sample(at_hours(3.0)), 7.0);
}

TEST(TraceCsv, ParsesValueAndTimeValueRows) {
  const Result<std::vector<double>> trace = parse_trace_csv(
      "# demand trace\n"
      "t_seconds,mbps\n"
      "0,10.5\n"
      "900,12\n"
      "\n"
      "25.25\n");
  ASSERT_TRUE(trace.ok()) << trace.error().message;
  EXPECT_EQ(trace.value(), (std::vector<double>{10.5, 12.0, 25.25}));
}

TEST(TraceCsv, HandlesCrlfAndComments) {
  const Result<std::vector<double>> trace = parse_trace_csv("1\r\n# note\r\n2\r\n");
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace.value().size(), 2u);
}

TEST(TraceCsv, RejectsBadRows) {
  EXPECT_FALSE(parse_trace_csv("").ok());
  EXPECT_FALSE(parse_trace_csv("# only comments\n").ok());
  EXPECT_FALSE(parse_trace_csv("1\nbroken\n2\n").ok());  // non-header bad row
  EXPECT_FALSE(parse_trace_csv("1\n-4\n").ok());         // negative demand
}

TEST(TraceCsv, RoundTripsIntoModel) {
  const Result<std::vector<double>> parsed = parse_trace_csv("3\n1\n2\n");
  ASSERT_TRUE(parsed.ok());
  TraceTraffic trace(parsed.value());
  EXPECT_DOUBLE_EQ(trace.sample(at_hours(0.0)), 3.0);
  EXPECT_DOUBLE_EQ(trace.peak_rate(), 3.0);
}

// --- vertical profiles: parameterized over all verticals --------------------

class VerticalSweep : public ::testing::TestWithParam<Vertical> {};

TEST_P(VerticalSweep, ProfileIsSane) {
  const VerticalProfile profile = profile_for(GetParam());
  EXPECT_EQ(profile.vertical, GetParam());
  EXPECT_FALSE(profile.label.empty());
  EXPECT_GT(profile.expected_throughput_mbps, 0.0);
  EXPECT_GT(profile.max_latency, Duration::zero());
  EXPECT_GT(profile.price_per_hour, 0.0);
  EXPECT_GT(profile.penalty_per_violation, 0.0);
  EXPECT_TRUE(profile.edge_compute.non_negative());
}

TEST_P(VerticalSweep, TrafficIsNonNegativeAndBounded) {
  std::unique_ptr<TrafficModel> model = make_traffic(GetParam(), Rng(11));
  const double peak = model->peak_rate();
  SimTime t = SimTime::origin();
  double observed_max = 0.0;
  for (int i = 0; i < 24 * 4 * 14; ++i) {  // two weeks of 15-min samples
    const double v = model->sample(t);
    EXPECT_GE(v, 0.0);
    observed_max = std::max(observed_max, v);
    t = t + Duration::minutes(15.0);
  }
  // Observed traffic should roughly respect the declared plausible peak
  // (generous slack: peaks are statistical, not hard caps).
  EXPECT_LT(observed_max, peak * 1.6) << to_string(GetParam());
  EXPECT_GT(observed_max, 0.0);
}

TEST_P(VerticalSweep, EmpiricalMeanNearDeclaredMean) {
  std::unique_ptr<TrafficModel> model = make_traffic(GetParam(), Rng(13));
  const double declared = model->mean_rate();
  double sum = 0.0;
  const int n = 24 * 4 * 30;
  SimTime t = SimTime::origin();
  for (int i = 0; i < n; ++i) {
    sum += model->sample(t);
    t = t + Duration::minutes(15.0);
  }
  EXPECT_NEAR(sum / n, declared, declared * 0.25 + 0.5) << to_string(GetParam());
}

TEST_P(VerticalSweep, PeakCoversContractedThroughputScale) {
  // The profile's contracted throughput should be in the same ballpark
  // as the traffic model's plausible peak (the demo contracts at peak).
  const VerticalProfile profile = profile_for(GetParam());
  std::unique_ptr<TrafficModel> model = make_traffic(GetParam(), Rng(17));
  EXPECT_GT(profile.expected_throughput_mbps, model->mean_rate() * 0.8);
}

INSTANTIATE_TEST_SUITE_P(AllVerticals, VerticalSweep,
                         ::testing::ValuesIn(all_verticals()),
                         [](const ::testing::TestParamInfo<Vertical>& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Verticals, AllVerticalsEnumerated) {
  EXPECT_EQ(all_verticals().size(), 5u);
}

TEST(Verticals, NamesAreUnique) {
  std::set<std::string_view> names;
  for (const Vertical v : all_verticals()) EXPECT_TRUE(names.insert(to_string(v)).second);
}

}  // namespace
}  // namespace slices::traffic
