// Scenario engine: DSL round-trips, precise parse errors, deterministic
// scored runs (thread-count invariant), record/replay parity, and
// observability of every injected event kind.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/request_generator.hpp"
#include "scenario/recorder.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace slices::scenario {
namespace {

Scenario parse_ok(const std::string& text) {
  Result<Scenario> parsed = parse_scenario(text);
  EXPECT_TRUE(parsed.ok()) << (parsed.ok() ? std::string{} : std::string(parsed.error().message));
  return parsed.ok() ? std::move(parsed.value()) : Scenario{};
}

std::string parse_error(const std::string& text) {
  Result<Scenario> parsed = parse_scenario(text);
  EXPECT_FALSE(parsed.ok()) << "expected a parse error for: " << text;
  return parsed.ok() ? std::string{} : std::string(parsed.error().message);
}

/// A scenario exercising every DSL feature at once.
constexpr const char* kKitchenSink = R"({
  "name": "kitchen_sink",
  "description": "every feature",
  "seed": "18446744073709551615",
  "duration_hours": 12,
  "topology": "fig2",
  "orchestrator": {
    "monitoring_period_minutes": 5,
    "sla_tolerance": 0.1,
    "overbooking": {"enabled": true, "risk_quantile": 0.9}
  },
  "workload": {
    "arrivals_per_hour": 2.0,
    "diurnal_depth": 0.5,
    "diurnal_period_hours": 12,
    "min_duration_hours": 1,
    "max_duration_hours": 6,
    "price_dispersion": 0.3,
    "verticals": ["automotive", "ehealth"]
  },
  "phases": [
    {"name": "warmup", "start_hours": 0, "end_hours": 3},
    {"name": "rush", "start_hours": 3, "end_hours": 6, "arrivals_per_hour": 5.0,
     "demand_scale": 1.5}
  ],
  "events": [
    {"kind": "link_down", "at_hours": 2, "link": "mmwave", "duration_hours": 0.5},
    {"kind": "link_flap", "at_hours": 4, "link": "uwave", "count": 3,
     "period_minutes": 20, "down_minutes": 5},
    {"kind": "cell_down", "at_hours": 5, "cell": "b", "duration_hours": 1},
    {"kind": "dc_down", "at_hours": 6, "dc": "edge", "duration_hours": 1},
    {"kind": "controller_restart", "at_hours": 8, "duration_minutes": 10},
    {"kind": "churn_storm", "at_hours": 9, "duration_minutes": 30,
     "ues_per_hour": 120, "mean_holding_minutes": 4}
  ],
  "requests": [
    {"at_hours": 1, "vertical": "cloud_gaming", "tenant": "arcade",
     "duration_hours": 4, "throughput_mbps": 25, "workload_seed": "9007199254740993"}
  ],
  "targets": {"min_admission_rate": 0.1, "max_violation_rate": 0.9}
})";

TEST(ScenarioDsl, RoundTripIsCanonical) {
  const Scenario first = parse_ok(kKitchenSink);
  EXPECT_EQ(first.name, "kitchen_sink");
  EXPECT_EQ(first.seed, 18446744073709551615ull);
  EXPECT_DOUBLE_EQ(first.duration.as_hours(), 12.0);
  ASSERT_EQ(first.phases.size(), 2u);
  EXPECT_DOUBLE_EQ(first.phases[1].arrivals_per_hour, 5.0);
  EXPECT_DOUBLE_EQ(first.phases[1].demand_scale, 1.5);
  ASSERT_EQ(first.events.size(), 6u);
  EXPECT_EQ(first.events[1].flap_count, 3);
  ASSERT_EQ(first.requests.size(), 1u);
  // Seeds above 2^53 survive (serialized as decimal strings).
  EXPECT_EQ(first.requests[0].workload_seed, 9007199254740993ull);
  EXPECT_EQ(first.requests[0].spec.tenant_name, "arcade");
  EXPECT_TRUE(first.targets.any());

  // serialize -> parse -> serialize is a fixed point: the serialized
  // form is canonical and loses nothing.
  const std::string serialized = serialize_scenario(first);
  const Scenario second = parse_ok(serialized);
  EXPECT_EQ(serialize_scenario(second), serialized);
  EXPECT_EQ(second.seed, first.seed);
  EXPECT_EQ(second.events.size(), first.events.size());
  EXPECT_EQ(second.orchestrator.overbooking.risk_quantile,
            first.orchestrator.overbooking.risk_quantile);
}

TEST(ScenarioDsl, ErrorsNameTheField) {
  // Structural JSON errors carry line/column.
  EXPECT_NE(parse_error("{\n  \"name\": \"x\",,\n}").find("line 2"), std::string::npos);
  // Duplicate keys are rejected, not last-wins.
  EXPECT_NE(parse_error(R"({"name": "x", "name": "y"})").find("duplicate"),
            std::string::npos);
  // Unknown keys name the offending key.
  EXPECT_NE(parse_error(R"({"name": "x", "bogus": 1})").find("bogus"), std::string::npos);
  // Field errors carry the JSON path and the legal domain.
  EXPECT_NE(parse_error(R"({"name": "x", "workload": {"arrivals_per_hour": -2}})")
                .find("workload.arrivals_per_hour"),
            std::string::npos);
  EXPECT_NE(parse_error(R"({"name": "x", "workload": {"arrivals_per_hour": 1e9}})")
                .find("[0, 1e5]"),
            std::string::npos);
  const std::string overlap = parse_error(R"({
    "name": "x", "duration_hours": 10,
    "phases": [
      {"start_hours": 0, "end_hours": 5},
      {"start_hours": 4, "end_hours": 8}
    ]})");
  EXPECT_NE(overlap.find("phases[1]"), std::string::npos);
  EXPECT_NE(overlap.find("overlaps"), std::string::npos);
  EXPECT_NE(parse_error(R"({"name": "x",
    "events": [{"kind": "meteor_strike", "at_hours": 1}]})")
                .find("events[0].kind"),
            std::string::npos);
  EXPECT_NE(parse_error(R"({"name": "x",
    "events": [{"kind": "link_flap", "at_hours": 1, "link": "mmwave",
                "count": 3, "period_minutes": 10, "down_minutes": 10}]})")
                .find("down_minutes"),
            std::string::npos);
  EXPECT_NE(parse_error(R"({"name": "x", "duration_hours": 2,
    "events": [{"kind": "link_up", "at_hours": 3, "link": "mmwave"}]})")
                .find("past the scenario duration"),
            std::string::npos);
  EXPECT_NE(parse_error(R"({"name": "x", "topology": "full_mesh"})").find("topology"),
            std::string::npos);
  EXPECT_NE(parse_error(R"({"description": "nameless"})").find("name"), std::string::npos);
  // Orchestrator-section errors are prefixed so they are attributable.
  EXPECT_NE(parse_error(R"({"name": "x", "orchestrator": {"sla_tolerance": 2}})")
                .find("orchestrator:"),
            std::string::npos);
}

// --- Satellite: time-varying arrival rates stay bit-compatible -------

TEST(RequestGeneratorSchedule, ConstantConfigSameStreamViaBothOverloads) {
  core::RequestGeneratorConfig config;
  config.arrivals_per_hour = 1.5;
  core::RequestGenerator a(config, Rng(7));
  core::RequestGenerator b(config, Rng(7));
  SimTime t = SimTime::origin();
  for (int i = 0; i < 200; ++i) {
    const Duration legacy = a.next_interarrival();
    const Duration timed = b.next_interarrival(t);
    ASSERT_EQ(legacy.as_micros(), timed.as_micros()) << "draw " << i;
    t = t + timed;
  }
}

TEST(RequestGeneratorSchedule, FlatScheduleMatchesConstantRate) {
  core::RequestGeneratorConfig constant;
  constant.arrivals_per_hour = 2.0;
  core::RequestGeneratorConfig stepped = constant;
  stepped.rate_schedule = {{Duration::zero(), 2.0}};
  core::RequestGenerator a(constant, Rng(99));
  core::RequestGenerator b(stepped, Rng(99));
  SimTime t = SimTime::origin();
  for (int i = 0; i < 200; ++i) {
    const Duration gap_a = a.next_interarrival(t);
    const Duration gap_b = b.next_interarrival(t);
    ASSERT_EQ(gap_a.as_micros(), gap_b.as_micros()) << "draw " << i;
    t = t + gap_a;
  }
}

TEST(RequestGeneratorSchedule, RateStepChangesArrivalDensity) {
  core::RequestGeneratorConfig config;
  config.arrivals_per_hour = 1.0;
  config.rate_schedule = {{Duration::hours(10.0), 10.0}};
  core::RequestGenerator generator(config, Rng(5));
  int before = 0;
  int after = 0;
  SimTime t = SimTime::origin();
  const SimTime split = SimTime::origin() + Duration::hours(10.0);
  const SimTime end = SimTime::origin() + Duration::hours(20.0);
  while (t < end) {
    t = t + generator.next_interarrival(t);
    if (t >= end) break;
    (t < split ? before : after)++;
  }
  // ~10 arrivals in the first 10 h, ~100 in the second.
  EXPECT_GT(after, before * 3);
}

// --- Runner determinism and scoring ----------------------------------

/// Small but eventful: phases, a flap, a restart, and a storm in 6 h.
constexpr const char* kEventful = R"({
  "name": "eventful",
  "seed": 11,
  "duration_hours": 6,
  "orchestrator": {"monitoring_period_minutes": 5, "overbooking": {"enabled": true}},
  "workload": {"arrivals_per_hour": 3.0, "min_duration_hours": 1, "max_duration_hours": 4},
  "phases": [
    {"name": "surge", "start_hours": 2, "end_hours": 4, "arrivals_per_hour": 6.0,
     "demand_scale": 1.4}
  ],
  "events": [
    {"kind": "link_flap", "at_hours": 1, "link": "mmwave", "count": 2,
     "period_minutes": 30, "down_minutes": 10},
    {"kind": "controller_restart", "at_hours": 3, "duration_minutes": 10},
    {"kind": "churn_storm", "at_hours": 4, "duration_minutes": 30,
     "ues_per_hour": 200, "mean_holding_minutes": 3}
  ]
})";

Scorecard run_scorecard(const std::string& text, RunOptions options = {}) {
  ScenarioRunner runner(parse_ok(text), options);
  Result<Scorecard> card = runner.run();
  EXPECT_TRUE(card.ok()) << (card.ok() ? "" : card.error().message);
  return card.ok() ? std::move(card.value()) : Scorecard{};
}

TEST(ScenarioRunnerTest, ScorecardIsThreadCountInvariant) {
  RunOptions one;
  one.epoch_threads = 1;
  RunOptions four;
  four.epoch_threads = 4;
  const std::string serial = run_scorecard(kEventful, one).serialize();
  const std::string parallel = run_scorecard(kEventful, four).serialize();
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial, run_scorecard(kEventful, one).serialize()) << "rerun must be identical";
}

TEST(ScenarioRunnerTest, ScorecardCountsTheRun) {
  const Scorecard card = run_scorecard(kEventful);
  EXPECT_GT(card.submitted, 0u);
  EXPECT_EQ(card.admitted + card.rejected, card.submitted);
  EXPECT_EQ(card.epochs, 70u);  // 6 h at 5 min, minus 2 suspended ticks
  // flap(2 down + 2 up) + restart + storm = 6 concrete actions.
  EXPECT_EQ(card.events_injected, 6u);
  EXPECT_GT(card.ue_arrivals, 0u);
  EXPECT_TRUE(card.targets_met);  // no targets declared -> vacuously met
  EXPECT_TRUE(card.target_failures.empty());
}

TEST(ScenarioRunnerTest, RunnerIsSingleUse) {
  ScenarioRunner runner(parse_ok(kEventful));
  ASSERT_TRUE(runner.run().ok());
  const Result<Scorecard> again = runner.run();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, Errc::conflict);
}

TEST(ScenarioRunnerTest, MissedTargetsAreReported) {
  std::string text = kEventful;
  text.insert(text.rfind('}'), R"(, "targets": {"min_multiplexing_gain": 1000})");
  const Scorecard card = run_scorecard(text);
  EXPECT_FALSE(card.targets_met);
  ASSERT_EQ(card.target_failures.size(), 1u);
  EXPECT_NE(card.target_failures[0].find("multiplexing gain"), std::string::npos);
}

// --- Record / replay -------------------------------------------------

TEST(ScenarioRecorderTest, ReplayReproducesTheScorecardExactly) {
  const std::string path = testing::TempDir() + "/scenario_replay.journal";
  std::remove(path.c_str());

  RunOptions recording;
  recording.record_path = path;
  const std::string original = run_scorecard(kEventful, recording).serialize();

  Result<Scenario> replayed = load_recording(path);
  ASSERT_TRUE(replayed.ok()) << replayed.error().message;
  // The recording is self-contained: no generator, explicit requests.
  EXPECT_FALSE(replayed.value().generate_arrivals);
  EXPECT_FALSE(replayed.value().requests.empty());
  EXPECT_FALSE(replayed.value().events.empty());

  ScenarioRunner replay_runner(std::move(replayed.value()));
  Result<Scorecard> replay = replay_runner.run();
  ASSERT_TRUE(replay.ok()) << replay.error().message;
  EXPECT_EQ(replay.value().serialize(), original);

  // ... and at a different thread count too.
  Result<Scenario> again = load_recording(path);
  ASSERT_TRUE(again.ok());
  RunOptions four;
  four.epoch_threads = 4;
  ScenarioRunner threaded(std::move(again.value()), four);
  Result<Scorecard> threaded_card = threaded.run();
  ASSERT_TRUE(threaded_card.ok());
  EXPECT_EQ(threaded_card.value().serialize(), original);
  std::remove(path.c_str());
}

TEST(ScenarioRecorderTest, LoadRejectsGarbage) {
  const std::string path = testing::TempDir() + "/scenario_bogus.journal";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a journal", f);
  std::fclose(f);
  EXPECT_FALSE(load_recording(path).ok());
  EXPECT_FALSE(load_recording(testing::TempDir() + "/does_not_exist.journal").ok());
  std::remove(path.c_str());
}

// --- Every event kind is observable ----------------------------------

/// Runs a 2 h scenario with `events_json` injected and returns the
/// runner (so the testbed outlives the call).
std::unique_ptr<ScenarioRunner> run_with_events(const std::string& events_json) {
  const std::string text = R"({
    "name": "probe", "seed": 3, "duration_hours": 2,
    "orchestrator": {"monitoring_period_minutes": 5},
    "workload": {"arrivals_per_hour": 4.0, "min_duration_hours": 1,
                 "max_duration_hours": 2},
    "events": )" + events_json + "}";
  auto runner = std::make_unique<ScenarioRunner>(parse_ok(text));
  const Result<Scorecard> card = runner->run();
  EXPECT_TRUE(card.ok()) << (card.ok() ? "" : card.error().message);
  return runner;
}

/// fault_injected/fault_cleared audit entries for `component`.
std::pair<int, int> fault_counts(const ScenarioRunner& runner, const std::string& component) {
  int injected = 0;
  int cleared = 0;
  for (const core::Event& event : runner.testbed()->orchestrator->events().since(0)) {
    const auto it = event.fields.find("component");
    if (it == event.fields.end() || !it->second.is_string() ||
        it->second.as_string() != component) {
      continue;
    }
    if (event.kind == core::EventKind::fault_injected) ++injected;
    if (event.kind == core::EventKind::fault_cleared) ++cleared;
  }
  return {injected, cleared};
}

bool health_lists_fault(const ScenarioRunner& runner, const std::string& component) {
  const json::Value health = runner.testbed()->orchestrator->health_json();
  const json::Object& faults = health.as_object().at("faults").as_object();
  return faults.find(component) != faults.end();
}

TEST(ScenarioEventsTest, LinkFaultInjectsAndClears) {
  auto runner = run_with_events(
      R"([{"kind": "link_down", "at_hours": 1, "link": "mmwave", "duration_hours": 0.5}])");
  EXPECT_EQ(fault_counts(*runner, "link.mmwave"), (std::pair<int, int>{1, 1}));
  EXPECT_FALSE(health_lists_fault(*runner, "link.mmwave"));
}

TEST(ScenarioEventsTest, UnrestoredFaultDegradesHealth) {
  auto runner = run_with_events(R"([{"kind": "cell_down", "at_hours": 1, "cell": "a"}])");
  EXPECT_EQ(fault_counts(*runner, "cell.a"), (std::pair<int, int>{1, 0}));
  EXPECT_TRUE(health_lists_fault(*runner, "cell.a"));
  const json::Value health = runner->testbed()->orchestrator->health_json();
  EXPECT_EQ(health.as_object().at("status").as_string(), "degraded");
}

TEST(ScenarioEventsTest, DcOutageTerminatesEmbeddedSlices) {
  // No restore: the DC stays down, so no live slice may reference it.
  auto runner = run_with_events(R"([{"kind": "dc_down", "at_hours": 1, "dc": "edge"}])");
  EXPECT_EQ(fault_counts(*runner, "dc.edge"), (std::pair<int, int>{1, 0}));
  EXPECT_TRUE(health_lists_fault(*runner, "dc.edge"));
  for (const core::SliceRecord* record : runner->testbed()->orchestrator->all_slices()) {
    if (record->is_live()) {
      EXPECT_NE(record->embedding.datacenter, runner->testbed()->edge_dc)
          << "live slice still embedded at the failed DC";
    }
  }
}

TEST(ScenarioEventsTest, ControllerRestartSuspendsAndResumes) {
  auto runner = run_with_events(
      R"([{"kind": "controller_restart", "at_hours": 1, "duration_minutes": 10}])");
  EXPECT_EQ(fault_counts(*runner, "controller"), (std::pair<int, int>{1, 1}));
  EXPECT_FALSE(runner->testbed()->orchestrator->suspended());
}

TEST(ScenarioEventsTest, ChurnStormDrivesUeTraffic) {
  const std::string text = R"({
    "name": "storm_probe", "seed": 3, "duration_hours": 2,
    "orchestrator": {"monitoring_period_minutes": 5},
    "workload": {"arrivals_per_hour": 4.0, "min_duration_hours": 1,
                 "max_duration_hours": 2},
    "events": [{"kind": "churn_storm", "at_hours": 1, "duration_minutes": 30,
                "ues_per_hour": 300, "mean_holding_minutes": 3}]})";
  ScenarioRunner runner(parse_ok(text));
  Result<Scorecard> card = runner.run();
  ASSERT_TRUE(card.ok());
  EXPECT_EQ(fault_counts(runner, "churn"), (std::pair<int, int>{1, 1}));
  EXPECT_GT(card.value().ue_arrivals, 0u);
}

}  // namespace
}  // namespace slices::scenario
