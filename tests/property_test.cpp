// Property-based tests on randomized instances: CSPF correctness over
// random graphs, MOCN scheduler conservation laws, and RAN-controller
// allocation invariants under random churn.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "ran/controller.hpp"
#include "ran/scheduler.hpp"
#include "transport/cspf.hpp"
#include "transport/topology.hpp"

namespace slices {
namespace {

// --- CSPF over random graphs ----------------------------------------------

struct RandomGraph {
  transport::Topology topo;
  std::vector<NodeId> nodes;
};

RandomGraph random_graph(Rng& rng, std::size_t node_count, double edge_probability) {
  RandomGraph g;
  for (std::size_t i = 0; i < node_count; ++i) {
    g.nodes.push_back(
        g.topo.add_node("n" + std::to_string(i), transport::NodeKind::openflow_switch));
  }
  for (std::size_t i = 0; i < node_count; ++i) {
    for (std::size_t j = 0; j < node_count; ++j) {
      if (i == j || !rng.bernoulli(edge_probability)) continue;
      g.topo.add_link(g.nodes[i], g.nodes[j], transport::LinkTechnology::fiber,
                      DataRate::mbps(rng.uniform(10.0, 200.0)),
                      Duration::millis(rng.uniform(0.5, 10.0)));
    }
  }
  return g;
}

class CspfRandomGraphs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CspfRandomGraphs, RoutesAreConnectedFeasibleAndDelayCorrect) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    RandomGraph g = random_graph(rng, 8, 0.3);
    const DataRate demand = DataRate::mbps(rng.uniform(5.0, 100.0));
    const transport::ResidualFn residual = [](const transport::Link& link) {
      return link.nominal_capacity;
    };
    const NodeId src = g.nodes[static_cast<std::size_t>(rng.uniform_int(0, 7))];
    const NodeId dst = g.nodes[static_cast<std::size_t>(rng.uniform_int(0, 7))];
    const auto route = transport::find_route(g.topo, src, dst, demand, residual);
    if (!route) continue;  // disconnection is legitimate

    // The route must be a connected src->dst chain.
    NodeId cursor = src;
    Duration delay_sum = Duration::zero();
    DataRate bottleneck = DataRate::gbps(1e9);
    for (const LinkId link_id : route->links) {
      const transport::Link* link = g.topo.find_link(link_id);
      ASSERT_NE(link, nullptr);
      EXPECT_EQ(link->from, cursor);
      EXPECT_GE(link->nominal_capacity, demand);  // capacity-feasible
      delay_sum += link->delay;
      bottleneck = min(bottleneck, link->nominal_capacity);
      cursor = link->to;
    }
    EXPECT_EQ(cursor, dst);
    EXPECT_EQ(delay_sum, route->total_delay);
    if (!route->links.empty()) {
      EXPECT_EQ(bottleneck, route->bottleneck);
    }
  }
}

TEST_P(CspfRandomGraphs, MinDelayIsActuallyMinimal) {
  // Exhaustive check on small graphs: no simple path can beat CSPF's
  // delay among capacity-feasible paths.
  Rng rng(GetParam() * 31 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    RandomGraph g = random_graph(rng, 6, 0.4);
    const DataRate demand = DataRate::mbps(20.0);
    const transport::ResidualFn residual = [](const transport::Link& link) {
      return link.nominal_capacity;
    };
    const NodeId src = g.nodes[0];
    const NodeId dst = g.nodes[5];
    const auto route = transport::find_route(g.topo, src, dst, demand, residual);

    // DFS over all simple paths.
    std::optional<Duration> best;
    std::vector<NodeId> visited{src};
    std::function<void(NodeId, Duration)> dfs = [&](NodeId at, Duration delay) {
      if (at == dst) {
        if (!best || delay < *best) best = delay;
        return;
      }
      for (const LinkId link_id : g.topo.outgoing(at)) {
        const transport::Link* link = g.topo.find_link(link_id);
        if (link->nominal_capacity < demand) continue;
        bool seen = false;
        for (const NodeId v : visited) {
          if (v == link->to) seen = true;
        }
        if (seen) continue;
        visited.push_back(link->to);
        dfs(link->to, delay + link->delay);
        visited.pop_back();
      }
    };
    dfs(src, Duration::zero());

    ASSERT_EQ(route.has_value(), best.has_value());
    if (route) {
      EXPECT_EQ(route->total_delay, *best);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CspfRandomGraphs, ::testing::Values(1, 2, 3, 4, 5));

// --- MOCN scheduler conservation laws ----------------------------------------

class SchedulerRandomLoads : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerRandomLoads, ConservationAndIsolationHold) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const int total = static_cast<int>(rng.uniform_int(10, 100));
    const std::size_t plmn_count = static_cast<std::size_t>(rng.uniform_int(1, 6));

    // Random reservations that never exceed the cell.
    std::vector<ran::PlmnLoad> loads;
    int reserved_budget = total;
    for (std::size_t i = 0; i < plmn_count; ++i) {
      const int reserved = static_cast<int>(rng.uniform_int(0, reserved_budget / 2));
      reserved_budget -= reserved;
      loads.push_back(ran::PlmnLoad{
          PlmnId{i + 1}, PrbCount{reserved},
          DataRate::mbps(rng.uniform(0.0, 60.0)),
          ran::Cqi{static_cast<int>(rng.uniform_int(1, 15))}});
    }

    for (const ran::SharingPolicy policy :
         {ran::SharingPolicy::strict, ran::SharingPolicy::pooled}) {
      const auto grants = ran::schedule_epoch(PrbCount{total}, loads, policy);
      ASSERT_EQ(grants.size(), loads.size());

      int granted_total = 0;
      for (std::size_t i = 0; i < grants.size(); ++i) {
        granted_total += grants[i].granted.value;
        // Served never exceeds demand, and served+unserved == demand.
        EXPECT_LE(grants[i].served.as_mbps(), loads[i].demand.as_mbps() + 1e-9);
        EXPECT_NEAR(grants[i].served.as_mbps() + grants[i].unserved.as_mbps(),
                    loads[i].demand.as_mbps(), 1e-9);
        // Served never exceeds what the granted PRBs can carry.
        EXPECT_LE(grants[i].served.as_mbps(),
                  ran::throughput_of(grants[i].granted, loads[i].cqi).as_mbps() + 1e-9);
        // A PLMN with demand covered by its own reservation is isolated
        // from others: it must be fully served.
        const PrbCount needed = ran::prbs_needed(loads[i].demand, loads[i].cqi);
        if (needed.value <= loads[i].reserved.value) {
          EXPECT_NEAR(grants[i].served.as_mbps(), loads[i].demand.as_mbps(), 1e-9)
              << "reserved demand must always be served";
        }
      }
      EXPECT_LE(granted_total, total);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerRandomLoads, ::testing::Values(11, 22, 33));

// --- RAN controller churn ------------------------------------------------------

TEST(RanControllerChurn, RandomAllocateResizeReleaseNeverCorruptsState) {
  Rng rng(97);
  ran::RanController controller;
  controller.add_cell(
      ran::Cell(CellId{1}, "a", ran::Bandwidth::mhz20, ran::SharingPolicy::pooled));
  controller.add_cell(
      ran::Cell(CellId{2}, "b", ran::Bandwidth::mhz10, ran::SharingPolicy::pooled));

  std::map<std::uint64_t, bool> installed;  // plmn value -> has allocation
  for (int step = 0; step < 2000; ++step) {
    const PlmnId plmn{static_cast<std::uint64_t>(rng.uniform_int(1, 8))};
    switch (rng.uniform_int(0, 3)) {
      case 0:
        if (controller.install_plmn(plmn).ok()) installed.emplace(plmn.value(), false);
        break;
      case 1: {
        const Result<ran::RanAllocation> r =
            controller.set_allocation(plmn, DataRate::mbps(rng.uniform(0.0, 50.0)));
        if (r.ok()) installed[plmn.value()] = true;
        break;
      }
      case 2:
        controller.release_allocation(plmn);
        if (installed.contains(plmn.value())) installed[plmn.value()] = false;
        break;
      case 3:
        if (controller.remove_plmn(plmn).ok()) installed.erase(plmn.value());
        break;
    }

    // Invariants after every step.
    int reserved = 0;
    for (const CellId cell_id : {CellId{1}, CellId{2}}) {
      const ran::Cell* cell = controller.find_cell(cell_id);
      EXPECT_GE(cell->unreserved_prbs().value, 0);
      EXPECT_LE(cell->reserved_prbs().value, cell->total_prbs().value);
      reserved += cell->reserved_prbs().value;
    }
    // Every remaining reservation belongs to an installed PLMN with a
    // live allocation.
    if (reserved > 0) {
      bool any_allocated = false;
      for (const auto& [plmn_value, has_alloc] : installed) {
        if (has_alloc) any_allocated = true;
      }
      EXPECT_TRUE(any_allocated);
    }
  }
}

}  // namespace
}  // namespace slices
