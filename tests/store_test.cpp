// Durable state store units: journal framing + torn-tail tolerance,
// snapshot atomicity + fallback, StateStore sequencing and the
// corruption edge cases recovery must degrade through gracefully
// (docs/persistence.md).

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "store/crc32.hpp"
#include "store/journal.hpp"
#include "store/snapshot.hpp"
#include "store/store.hpp"

namespace slices::store {
namespace {

namespace fs = std::filesystem;

/// A fresh per-test scratch directory under the system temp dir.
fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("slices_store_test_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void write_file(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void put_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

/// Build one correctly framed journal record.
std::string frame(const std::string& payload) {
  std::string out;
  put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  put_u32le(out, crc32(payload));
  out += payload;
  return out;
}

json::Object event(double n) {
  json::Object e;
  e.emplace("n", n);
  return e;
}

// --- journal ----------------------------------------------------------------

TEST(Journal, AppendScanRoundTrip) {
  const fs::path dir = fresh_dir("journal_roundtrip");
  const std::string path = (dir / "journal.wal").string();

  Journal journal;
  ASSERT_TRUE(journal.open(path, 0).ok());
  for (int i = 0; i < 3; ++i) {
    json::Object e;
    e.emplace("i", static_cast<double>(i));
    ASSERT_TRUE(journal.append(json::serialize(json::Value(std::move(e))), false).ok());
  }
  journal.close();

  const Result<JournalScan> scan = scan_journal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.value().records.size(), 3u);
  EXPECT_FALSE(scan.value().truncated_tail);
  EXPECT_TRUE(scan.value().corruption.empty());
  EXPECT_EQ(scan.value().valid_bytes, scan.value().file_bytes);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(scan.value().records[static_cast<std::size_t>(i)].find("i")->as_number(),
                     static_cast<double>(i));
  }
}

TEST(Journal, MissingFileIsCleanAndEmpty) {
  const fs::path dir = fresh_dir("journal_missing");
  const Result<JournalScan> scan = scan_journal((dir / "nope.wal").string());
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan.value().records.empty());
  EXPECT_FALSE(scan.value().truncated_tail);
  EXPECT_TRUE(scan.value().corruption.empty());
}

TEST(Journal, EmptyFileIsCleanAndEmpty) {
  const fs::path dir = fresh_dir("journal_empty");
  const fs::path path = dir / "journal.wal";
  write_file(path, "");
  const Result<JournalScan> scan = scan_journal(path.string());
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan.value().records.empty());
  EXPECT_TRUE(scan.value().corruption.empty());
}

TEST(Journal, TruncatedTailKeepsValidPrefix) {
  const fs::path dir = fresh_dir("journal_torn");
  const std::string path = (dir / "journal.wal").string();
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path, 0).ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          journal.append(json::serialize(json::Value(event(static_cast<double>(i)))), false)
              .ok());
    }
  }
  // Tear the last record mid-payload, as a crash during write() would.
  std::string bytes = read_file(path);
  write_file(path, bytes.substr(0, bytes.size() - 3));

  const Result<JournalScan> scan = scan_journal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.value().records.size(), 2u);
  EXPECT_TRUE(scan.value().truncated_tail);
  EXPECT_FALSE(scan.value().corruption.empty());
  EXPECT_LT(scan.value().valid_bytes, scan.value().file_bytes);

  // Reopening at the valid prefix drops the garbage; appends continue.
  Journal journal;
  ASSERT_TRUE(journal.open(path, scan.value().valid_bytes).ok());
  ASSERT_TRUE(journal.append(json::serialize(json::Value(event(9.0))), false).ok());
  journal.close();
  const Result<JournalScan> again = scan_journal(path);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again.value().records.size(), 3u);
  EXPECT_TRUE(again.value().corruption.empty());
  EXPECT_DOUBLE_EQ(again.value().records[2].find("n")->as_number(), 9.0);
}

TEST(Journal, FlippedPayloadByteFailsCrcAndStopsScan) {
  const fs::path dir = fresh_dir("journal_crc");
  const fs::path path = dir / "journal.wal";
  {
    Journal journal;
    ASSERT_TRUE(journal.open(path.string(), 0).ok());
    ASSERT_TRUE(journal.append(json::serialize(json::Value(event(1.0))), false).ok());
    ASSERT_TRUE(journal.append(json::serialize(json::Value(event(2.0))), false).ok());
  }
  std::string bytes = read_file(path);
  bytes[bytes.size() - 1] ^= 0x01;  // one bit in the last record's payload
  write_file(path, bytes);

  const Result<JournalScan> scan = scan_journal(path.string());
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.value().records.size(), 1u);
  EXPECT_TRUE(scan.value().truncated_tail);
  EXPECT_NE(scan.value().corruption.find("CRC"), std::string::npos);
}

TEST(Journal, ImplausibleLengthHeaderStopsScan) {
  const fs::path dir = fresh_dir("journal_length");
  const fs::path path = dir / "journal.wal";
  std::string bytes = frame(json::serialize(json::Value(event(1.0))));
  put_u32le(bytes, kMaxRecordBytes + 1);  // absurd length header
  put_u32le(bytes, 0);
  bytes += "xxxx";
  write_file(path, bytes);

  const Result<JournalScan> scan = scan_journal(path.string());
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.value().records.size(), 1u);
  EXPECT_NE(scan.value().corruption.find("length"), std::string::npos);
}

TEST(Journal, ValidCrcButNonJsonPayloadStopsScan) {
  const fs::path dir = fresh_dir("journal_nonjson");
  const fs::path path = dir / "journal.wal";
  write_file(path, frame(json::serialize(json::Value(event(1.0)))) + frame("not json {"));

  const Result<JournalScan> scan = scan_journal(path.string());
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.value().records.size(), 1u);
  EXPECT_NE(scan.value().corruption.find("JSON"), std::string::npos);
}

// --- snapshots --------------------------------------------------------------

json::Value sample_state(double marker) {
  json::Object state;
  state.emplace("marker", marker);
  return json::Value{std::move(state)};
}

TEST(Snapshot, WriteAndLoadLatest) {
  const fs::path dir = fresh_dir("snapshot_latest");
  ASSERT_TRUE(write_snapshot(dir.string(), 5, sample_state(5.0), true).ok());
  ASSERT_TRUE(write_snapshot(dir.string(), 9, sample_state(9.0), true).ok());

  const auto loaded = load_latest_snapshot(dir.string());
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded.value().has_value());
  EXPECT_EQ(loaded.value()->seq, 9u);
  EXPECT_DOUBLE_EQ(loaded.value()->state.find("marker")->as_number(), 9.0);
}

TEST(Snapshot, DamagedNewestFallsBackToOlder) {
  const fs::path dir = fresh_dir("snapshot_fallback");
  ASSERT_TRUE(write_snapshot(dir.string(), 5, sample_state(5.0), true).ok());
  const Result<std::string> newest = write_snapshot(dir.string(), 9, sample_state(9.0), true);
  ASSERT_TRUE(newest.ok());
  std::string bytes = read_file(newest.value());
  bytes[bytes.size() / 2] ^= 0xff;
  write_file(newest.value(), bytes);

  std::vector<std::string> rejected;
  const auto loaded = load_latest_snapshot(dir.string(), &rejected);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded.value().has_value());
  EXPECT_EQ(loaded.value()->seq, 5u);
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(rejected.front(), newest.value());
}

TEST(Snapshot, EmptyDirectoryLoadsNothing) {
  const fs::path dir = fresh_dir("snapshot_none");
  const auto loaded = load_latest_snapshot(dir.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded.value().has_value());
}

TEST(Snapshot, PruneKeepsOnlyNewestValid) {
  const fs::path dir = fresh_dir("snapshot_prune");
  ASSERT_TRUE(write_snapshot(dir.string(), 1, sample_state(1.0), true).ok());
  ASSERT_TRUE(write_snapshot(dir.string(), 2, sample_state(2.0), true).ok());
  ASSERT_TRUE(write_snapshot(dir.string(), 3, sample_state(3.0), true).ok());

  const Result<std::uint64_t> reclaimed = prune_snapshots(dir.string());
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_GT(reclaimed.value(), 0u);
  std::size_t remaining = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++remaining;
  }
  EXPECT_EQ(remaining, 1u);
  const auto loaded = load_latest_snapshot(dir.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()->seq, 3u);
}

// --- StateStore -------------------------------------------------------------

TEST(StateStore, StampsSequencesAndRecoversEventsInOrder) {
  const fs::path dir = fresh_dir("store_seq");
  {
    StateStore store(StoreConfig{.directory = dir.string()});
    ASSERT_TRUE(store.open().ok());
    EXPECT_FALSE(store.recovered().has_snapshot);
    for (int i = 0; i < 4; ++i) {
      const Result<std::uint64_t> seq = store.append(event(static_cast<double>(i)));
      ASSERT_TRUE(seq.ok());
      EXPECT_EQ(seq.value(), static_cast<std::uint64_t>(i + 1));
    }
  }
  StateStore reopened(StoreConfig{.directory = dir.string()});
  ASSERT_TRUE(reopened.open().ok());
  const RecoveredInput& in = reopened.recovered();
  EXPECT_FALSE(in.has_snapshot);
  ASSERT_EQ(in.events.size(), 4u);
  for (std::size_t i = 0; i < in.events.size(); ++i) {
    EXPECT_DOUBLE_EQ(in.events[i].find("seq")->as_number(), static_cast<double>(i + 1));
    EXPECT_DOUBLE_EQ(in.events[i].find("n")->as_number(), static_cast<double>(i));
  }
  EXPECT_EQ(reopened.last_seq(), 4u);
}

TEST(StateStore, SnapshotTruncatesJournalAndReplayResumesAfterIt) {
  const fs::path dir = fresh_dir("store_snapshot");
  {
    StateStore store(StoreConfig{.directory = dir.string()});
    ASSERT_TRUE(store.open().ok());
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(store.append(event(static_cast<double>(i))).ok());
    const Result<std::uint64_t> seq = store.write_snapshot(sample_state(42.0));
    ASSERT_TRUE(seq.ok());
    EXPECT_EQ(seq.value(), 3u);
    EXPECT_EQ(store.journal_bytes(), 0u);  // journal truncated
    ASSERT_TRUE(store.append(event(3.0)).ok());
    ASSERT_TRUE(store.append(event(4.0)).ok());
  }
  StateStore reopened(StoreConfig{.directory = dir.string()});
  ASSERT_TRUE(reopened.open().ok());
  const RecoveredInput& in = reopened.recovered();
  EXPECT_TRUE(in.has_snapshot);
  EXPECT_EQ(in.snapshot_seq, 3u);
  EXPECT_DOUBLE_EQ(in.snapshot_state.find("marker")->as_number(), 42.0);
  ASSERT_EQ(in.events.size(), 2u);
  EXPECT_DOUBLE_EQ(in.events[0].find("seq")->as_number(), 4.0);
  EXPECT_EQ(reopened.last_seq(), 5u);
}

TEST(StateStore, SnapshotNewerThanJournalSkipsStaleRecords) {
  const fs::path dir = fresh_dir("store_stale_journal");
  // Snapshot covers through seq 10, but the journal on disk holds stale
  // records 1..3 (e.g. restored from an older backup of the WAL file).
  ASSERT_TRUE(write_snapshot(dir.string(), 10, sample_state(10.0), true).ok());
  {
    Journal journal;
    ASSERT_TRUE(journal.open((dir / "journal.wal").string(), 0).ok());
    for (int i = 1; i <= 3; ++i) {
      json::Object e = event(static_cast<double>(i));
      e.emplace("seq", static_cast<double>(i));
      ASSERT_TRUE(journal.append(json::serialize(json::Value(std::move(e))), false).ok());
    }
  }
  StateStore store(StoreConfig{.directory = dir.string()});
  ASSERT_TRUE(store.open().ok());
  const RecoveredInput& in = store.recovered();
  EXPECT_TRUE(in.has_snapshot);
  EXPECT_EQ(in.snapshot_seq, 10u);
  EXPECT_TRUE(in.events.empty());
  EXPECT_EQ(in.skipped_events, 3u);
  // New appends continue above everything seen.
  const Result<std::uint64_t> seq = store.append(event(99.0));
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq.value(), 11u);
}

TEST(StateStore, TornJournalTailToleratedOnOpen) {
  const fs::path dir = fresh_dir("store_torn");
  {
    StateStore store(StoreConfig{.directory = dir.string()});
    ASSERT_TRUE(store.open().ok());
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(store.append(event(static_cast<double>(i))).ok());
  }
  // A crash mid-append leaves a partial frame at the tail.
  const fs::path wal = dir / "journal.wal";
  std::ofstream out(wal, std::ios::binary | std::ios::app);
  const char garbage[] = {0x40, 0x00, 0x00};  // half a length header
  out.write(garbage, sizeof(garbage));
  out.close();

  StateStore store(StoreConfig{.directory = dir.string()});
  ASSERT_TRUE(store.open().ok());
  const RecoveredInput& in = store.recovered();
  EXPECT_EQ(in.events.size(), 5u);
  EXPECT_TRUE(in.journal_truncated);
  EXPECT_FALSE(in.journal_corruption.empty());
  // The torn bytes are gone; appending works and survives a re-scan.
  ASSERT_TRUE(store.append(event(5.0)).ok());
  const Result<JournalScan> scan = scan_journal(wal.string());
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.value().records.size(), 6u);
  EXPECT_TRUE(scan.value().corruption.empty());
}

TEST(StateStore, SnapshotCadenceDrivesWantsSnapshot) {
  const fs::path dir = fresh_dir("store_cadence");
  StateStore store(
      StoreConfig{.directory = dir.string(), .snapshot_every_records = 3});
  ASSERT_TRUE(store.open().ok());
  ASSERT_TRUE(store.append(event(0.0)).ok());
  ASSERT_TRUE(store.append(event(1.0)).ok());
  EXPECT_FALSE(store.wants_snapshot());
  ASSERT_TRUE(store.append(event(2.0)).ok());
  EXPECT_TRUE(store.wants_snapshot());
  ASSERT_TRUE(store.write_snapshot(sample_state(1.0)).ok());
  EXPECT_FALSE(store.wants_snapshot());
}

TEST(StateStore, StatusJsonReportsJournalAndSnapshotState) {
  const fs::path dir = fresh_dir("store_status");
  StateStore store(StoreConfig{.directory = dir.string()});
  ASSERT_TRUE(store.open().ok());
  ASSERT_TRUE(store.append(event(1.0)).ok());
  ASSERT_TRUE(store.write_snapshot(sample_state(1.0)).ok());

  const json::Value status = store.status_json();
  EXPECT_TRUE(status.find("open")->as_bool());
  EXPECT_EQ(status.find("directory")->as_string(), dir.string());
  ASSERT_NE(status.find("journal"), nullptr);
  EXPECT_DOUBLE_EQ(status.find("journal")->find("records")->as_number(), 0.0);
  ASSERT_NE(status.find("snapshot"), nullptr);
  EXPECT_DOUBLE_EQ(status.find("snapshot")->find("last_seq")->as_number(), 1.0);
}

}  // namespace
}  // namespace slices::store
